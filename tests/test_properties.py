"""Property-based tests (hypothesis) for the simulator's algebraic cores.

Three families of invariants that example-based tests can only sample:

* wear-leveling remaps stay bijections under *arbitrary* gap movements,
  not just the handful a scripted test drives;
* the endurance model is monotone in write-pulse width for every
  exponent, so a slower write can never look worse for lifetime;
* SECDED ECC round-trips every word, corrects every possible 1-bit
  flip, and detects every possible 2-bit flip.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.endurance.leveling import (
    RotationLeveler,
    SecurityRefreshLeveler,
    StartGapLeveler,
)
from repro.endurance.model import EnduranceModel
from repro.endurance.variability import EnduranceVariability
from repro.faults.ecc import (
    STATUS_CLEAN,
    STATUS_CORRECTED,
    STATUS_DETECTED,
    codeword_length,
    decode,
    encode,
)

# --------------------------------------------------------------------------
# Wear-leveling maps stay bijective under arbitrary write sequences
# --------------------------------------------------------------------------


def _assert_bijective(leveler, num_lines, num_slots):
    images = [leveler.remap(logical) for logical in range(num_lines)]
    assert len(set(images)) == num_lines, "remap collided two lines"
    assert all(0 <= p < num_slots for p in images), "remap out of range"
    return images


@settings(deadline=None)
@given(
    num_lines=st.integers(min_value=1, max_value=200),
    psi=st.integers(min_value=1, max_value=40),
    writes=st.integers(min_value=0, max_value=2000),
)
def test_startgap_remap_is_bijective_under_any_gap_position(
        num_lines, psi, writes):
    leveler = StartGapLeveler(num_lines, psi=psi)
    for _ in range(writes):
        leveler.record_write()
    images = _assert_bijective(leveler, num_lines, num_lines + 1)
    # The gap slot is exactly the one physical slot with no preimage.
    assert leveler._inner.gap not in images


@settings(deadline=None)
@given(
    num_lines=st.integers(min_value=1, max_value=200),
    psi=st.integers(min_value=1, max_value=40),
    writes=st.integers(min_value=0, max_value=2000),
)
def test_rotation_remap_is_bijective(num_lines, psi, writes):
    leveler = RotationLeveler(num_lines, psi=psi)
    for _ in range(writes):
        leveler.record_write()
    _assert_bijective(leveler, num_lines, num_lines)


@settings(deadline=None)
@given(
    lines_log2=st.integers(min_value=0, max_value=8),
    interval=st.integers(min_value=1, max_value=40),
    writes=st.integers(min_value=0, max_value=2000),
)
def test_security_refresh_remap_is_bijective_mid_sweep(
        lines_log2, interval, writes):
    # Bijectivity must hold at every instant, including halfway through
    # an incremental re-keying sweep - the subtle case the swap-based
    # implementation exists to get right.
    leveler = SecurityRefreshLeveler(2 ** lines_log2,
                                     refresh_interval=interval)
    for _ in range(writes):
        leveler.record_write()
    _assert_bijective(leveler, leveler.num_lines, leveler.num_lines)


# --------------------------------------------------------------------------
# Endurance model: monotone in write-pulse width
# --------------------------------------------------------------------------


@given(
    factor_a=st.floats(min_value=0.1, max_value=32.0,
                       allow_nan=False, allow_infinity=False),
    factor_b=st.floats(min_value=0.1, max_value=32.0,
                       allow_nan=False, allow_infinity=False),
    expo=st.floats(min_value=0.0, max_value=4.0,
                   allow_nan=False, allow_infinity=False),
)
def test_endurance_monotone_in_pulse_width(factor_a, factor_b, expo):
    model = EnduranceModel(expo_factor=expo)
    slow, fast = max(factor_a, factor_b), min(factor_a, factor_b)
    # A longer pulse never endures fewer writes, and one of its writes
    # never deposits more damage.
    assert (model.endurance_at_factor(slow)
            >= model.endurance_at_factor(fast))
    assert model.damage_per_write(slow) <= model.damage_per_write(fast)
    # Same statement through the latency-domain entry point.
    t_fast = fast * model.base_latency_ns
    t_slow = slow * model.base_latency_ns
    assert (model.endurance_at_latency(t_slow)
            >= model.endurance_at_latency(t_fast))


@given(
    factor=st.floats(min_value=0.1, max_value=32.0,
                     allow_nan=False, allow_infinity=False),
    expo=st.floats(min_value=0.25, max_value=4.0,
                   allow_nan=False, allow_infinity=False),
)
def test_endurance_inverse_round_trips(factor, expo):
    model = EnduranceModel(expo_factor=expo)
    endurance = model.endurance_at_factor(factor)
    latency = model.latency_for_endurance(endurance)
    assert math.isclose(latency, factor * model.base_latency_ns,
                        rel_tol=1e-9)


@given(
    median=st.floats(min_value=1e3, max_value=1e8,
                     allow_nan=False, allow_infinity=False),
    sigma=st.floats(min_value=0.0, max_value=1.0,
                    allow_nan=False, allow_infinity=False),
    seed=st.integers(min_value=0, max_value=2 ** 31),
    count=st.integers(min_value=1, max_value=64),
)
def test_cell_limit_samples_positive_and_deterministic(
        median, sigma, seed, count):
    import random
    spread = EnduranceVariability(median_endurance=median, sigma=sigma)
    first = spread.sample_cell_limits(random.Random(seed), count)
    again = spread.sample_cell_limits(random.Random(seed), count)
    assert first == again, "same seed must draw the same limits"
    assert len(first) == count
    assert all(limit > 0.0 for limit in first)


# --------------------------------------------------------------------------
# SECDED ECC: round-trip / correct-1 / detect-2, exhaustive over bits
# --------------------------------------------------------------------------

_WORDS = st.integers(min_value=0, max_value=2 ** 64 - 1)
_TOTAL_BITS = codeword_length(64)


@given(data=_WORDS)
def test_ecc_round_trips_clean_words(data):
    outcome = decode(encode(data))
    assert outcome.status == STATUS_CLEAN
    assert outcome.data == data
    assert outcome.corrected_position == -1


@given(data=_WORDS, flip=st.integers(min_value=0,
                                     max_value=_TOTAL_BITS - 1))
def test_ecc_corrects_any_single_bit_flip(data, flip):
    corrupted = encode(data) ^ (1 << flip)
    outcome = decode(corrupted)
    assert outcome.status == STATUS_CORRECTED
    assert outcome.data == data
    assert outcome.corrected_position == flip


@given(
    data=_WORDS,
    flips=st.sets(st.integers(min_value=0, max_value=_TOTAL_BITS - 1),
                  min_size=2, max_size=2),
)
def test_ecc_detects_any_double_bit_flip(data, flips):
    corrupted = encode(data)
    for position in flips:
        corrupted ^= 1 << position
    outcome = decode(corrupted)
    assert outcome.status == STATUS_DETECTED
    assert outcome.data == -1


@given(data=st.integers(min_value=0, max_value=2 ** 16 - 1),
       flip=st.integers(min_value=0, max_value=codeword_length(16) - 1))
def test_ecc_handles_other_word_widths(data, flip):
    corrupted = encode(data, data_bits=16) ^ (1 << flip)
    outcome = decode(corrupted, data_bits=16)
    assert outcome.status == STATUS_CORRECTED
    assert outcome.data == data
