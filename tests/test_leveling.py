"""Tests for the wear-leveling suite and the efficiency evaluator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.endurance.leveling import (
    NoLeveler,
    RotationLeveler,
    SecurityRefreshLeveler,
    StartGapLeveler,
    measure_efficiency,
)


class TestNoLeveler:
    def test_identity(self):
        leveler = NoLeveler(8)
        assert [leveler.remap(i) for i in range(8)] == list(range(8))

    def test_range_check(self):
        with pytest.raises(IndexError):
            NoLeveler(4).remap(4)


class TestRotationLeveler:
    def test_rotation_advances_every_psi(self):
        leveler = RotationLeveler(4, psi=2)
        assert leveler.remap(0) == 0
        leveler.record_write()
        leveler.record_write()
        assert leveler.remap(0) == 1

    def test_wraps(self):
        leveler = RotationLeveler(3, psi=1)
        for _ in range(3):
            leveler.record_write()
        assert leveler.rotation == 0

    def test_bijective(self):
        leveler = RotationLeveler(8, psi=1)
        for _ in range(5):
            leveler.record_write()
        mapped = {leveler.remap(i) for i in range(8)}
        assert mapped == set(range(8))


class TestSecurityRefresh:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            SecurityRefreshLeveler(6)

    def test_initial_mapping_uses_current_key(self):
        leveler = SecurityRefreshLeveler(8, rng=random.Random(1))
        assert [leveler.remap(i) for i in range(8)] == list(range(8))

    def test_sweep_migrates_lines_gradually(self):
        leveler = SecurityRefreshLeveler(8, refresh_interval=1,
                                         rng=random.Random(3))
        next_key = leveler.next_key
        leveler.record_write()      # pointer -> 1: line 0 migrated
        assert leveler.remap(0) == 0 ^ next_key
        mapped = {leveler.remap(i) for i in range(8)}
        assert mapped == set(range(8))   # still a bijection mid-sweep

    def test_full_sweep_installs_new_key(self):
        leveler = SecurityRefreshLeveler(4, refresh_interval=1,
                                         rng=random.Random(5))
        first_next = leveler.next_key
        for _ in range(4):
            leveler.record_write()
        assert leveler.current_key == first_next
        assert leveler.sweep_pointer == 0
        # Every logical line now sits at its new-key location.
        for logical in range(4):
            assert leveler.remap(logical) == logical ^ first_next

    @given(
        writes=st.integers(min_value=0, max_value=200),
        interval=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=50)
    def test_remap_always_bijective(self, writes, interval):
        leveler = SecurityRefreshLeveler(16, refresh_interval=interval,
                                         rng=random.Random(9))
        for _ in range(writes):
            leveler.record_write()
        mapped = {leveler.remap(i) for i in range(16)}
        assert mapped == set(range(16))


class TestEfficiency:
    def test_no_leveling_is_poor_under_hotspot(self):
        eff = measure_efficiency(NoLeveler(64), writes=20_000)
        assert eff < 0.1

    def test_start_gap_is_near_ideal(self):
        """The basis for the package's 0.9 leveling-efficiency credit."""
        eff = measure_efficiency(StartGapLeveler(64, psi=10), writes=100_000)
        # The 64-line microbenchmark under-reads the large-region figure
        # (the Start-Gap paper reports ~0.95 at psi=100 over real banks).
        assert eff > 0.6

    def test_start_gap_beats_no_leveling(self):
        base = measure_efficiency(NoLeveler(64), writes=50_000)
        sg = measure_efficiency(StartGapLeveler(64, psi=10), writes=50_000)
        assert sg > base * 5

    def test_security_refresh_levels_hotspots(self):
        eff = measure_efficiency(
            SecurityRefreshLeveler(64, refresh_interval=10,
                                   rng=random.Random(2)),
            writes=100_000,
        )
        assert eff > 0.5

    def test_rotation_levels_hotspots(self):
        eff = measure_efficiency(RotationLeveler(64, psi=10), writes=100_000)
        assert eff > 0.5

    def test_uniform_traffic_is_already_level(self):
        eff = measure_efficiency(NoLeveler(64), writes=100_000,
                                 hot_fraction=0.0)
        assert eff > 0.8

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            measure_efficiency(NoLeveler(8), hot_fraction=1.5)
        with pytest.raises(ValueError):
            measure_efficiency(NoLeveler(8), hot_lines=9)
