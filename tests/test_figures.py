"""Unit tests for the figure regenerators (tiny scale, two workloads).

These check table *structure* and basic invariants quickly; the benchmark
harness exercises the full-scale versions and their paper-shape
assertions.
"""

import pytest

from repro.analysis.report import render
from repro.experiments import figures
from repro.experiments.runner import Runner


@pytest.fixture(autouse=True)
def tiny_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.05")
    monkeypatch.setenv("REPRO_WORKLOADS", "hmmer,lbm")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


@pytest.fixture(scope="module")
def shared_runner(tmp_path_factory):
    return Runner(cache_dir=tmp_path_factory.mktemp("figcache"))


def test_fig01_structure():
    table = figures.fig01_endurance_model()
    assert table.column("slow_factor")[0] == 1.0
    assert len(table.rows) == 13
    render(table)   # renders without error


def test_fig02_structure(shared_runner):
    table = figures.fig02_static_latency(shared_runner)
    policies = {r[1] for r in table.rows}
    assert policies == {"1.0x", "1.0x+WC", "1.5x", "1.5x+WC",
                        "2.0x", "2.0x+WC", "3.0x", "3.0x+WC"}
    assert {r[0] for r in table.rows} == {"hmmer", "lbm"}


def test_fig03_structure(shared_runner):
    table = figures.fig03_bank_utilization(shared_runner)
    assert len(table.rows) == 2
    assert all(0 <= r[1] <= 1 for r in table.rows)


def test_tab04_structure(shared_runner):
    table = figures.tab04_workload_mpki(shared_runner)
    assert table.column("workload") == ["hmmer", "lbm"]


def test_tab06_needs_no_simulation():
    table = figures.tab06_energy_per_op()
    assert len(table.rows) == 5


def test_fig10_contains_geomean(shared_runner):
    table = figures.fig10_policy_ipc(shared_runner)
    assert "GEOMEAN" in table.column("workload")
    norm_rows = [r for r in table.rows if r[1] == "Norm"]
    assert all(r[3] == pytest.approx(1.0) for r in norm_rows)


def test_fig11_lifetimes_positive(shared_runner):
    table = figures.fig11_policy_lifetime(shared_runner)
    assert all(r[2] > 0 for r in table.rows)


def test_fig12_mean_row(shared_runner):
    table = figures.fig12_policy_utilization(shared_runner)
    assert "MEAN" in table.column("workload")


def test_fig14_norm_has_no_eager(shared_runner):
    table = figures.fig14_llc_requests(shared_runner)
    for row in table.rows:
        if row[1] == "Norm" and row[0] != "GEOMEAN":
            assert row[4] == 0.0


def test_fig17_norm_flat(shared_runner):
    table = figures.fig17_expo_sensitivity(shared_runner)
    norm = [r for r in table.rows if r[0] == "Norm"][0]
    assert all(v == pytest.approx(1.0) for v in norm[1:])


def test_fig18_three_bank_counts(shared_runner):
    table = figures.fig18_bank_sensitivity(shared_runner, workload="lbm")
    assert sorted({r[0] for r in table.rows}) == [4, 8, 16]


def test_fig19_marks_best_static(shared_runner):
    table = figures.fig19_vs_static(shared_runner)
    for workload in ("hmmer", "lbm"):
        marks = [r for r in table.rows if r[0] == workload and r[5]]
        assert len(marks) == 1


def test_all_figures_registry_complete():
    expected = {"fig01", "fig02", "fig03", "tab04", "tab06", "fig10",
                "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
                "fig17", "fig18", "fig19", "figfaults"}
    assert set(figures.ALL_FIGURES) == expected
