"""Tests for the analytic endurance model (Eq. 2, Figure 1, Table II)."""


import pytest
from hypothesis import given, strategies as st

from repro import params
from repro.endurance.model import EnduranceModel


def test_baseline_endurance_at_normal_latency():
    model = EnduranceModel()
    assert model.endurance_at_factor(1.0) == pytest.approx(5.0e6)
    assert model.endurance_at_latency(150.0) == pytest.approx(5.0e6)


def test_table_ii_endurance_ladder_quadratic():
    """Table II: 1.5x -> 1.125e7, 2.0x -> 2.0e7, 3.0x -> 4.5e7 writes."""
    model = EnduranceModel(expo_factor=2.0)
    assert model.endurance_at_factor(1.5) == pytest.approx(1.125e7)
    assert model.endurance_at_factor(2.0) == pytest.approx(2.0e7)
    assert model.endurance_at_factor(3.0) == pytest.approx(4.5e7)


@pytest.mark.parametrize("expo", params.EXPO_FACTORS)
def test_figure1_exponent_sweep(expo):
    model = EnduranceModel(expo_factor=expo)
    assert model.endurance_at_factor(3.0) == pytest.approx(
        5.0e6 * 3.0 ** expo
    )


def test_damage_per_write_normal_is_one():
    assert EnduranceModel().damage_per_write(1.0) == pytest.approx(1.0)


def test_damage_per_write_slow_quadratic():
    model = EnduranceModel(expo_factor=2.0)
    assert model.damage_per_write(3.0) == pytest.approx(1.0 / 9.0)


def test_damage_linear_model():
    model = EnduranceModel(expo_factor=1.0)
    assert model.damage_per_write(3.0) == pytest.approx(1.0 / 3.0)


def test_latency_for_endurance_inverse():
    model = EnduranceModel(expo_factor=2.0)
    latency = model.latency_for_endurance(2.0e7)
    assert latency == pytest.approx(300.0)


def test_curve_rows():
    model = EnduranceModel()
    rows = model.curve([1.0, 2.0])
    assert rows[0] == (1.0, 150.0, pytest.approx(5.0e6))
    assert rows[1][1] == pytest.approx(300.0)


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_invalid_factor_rejected(bad):
    with pytest.raises(ValueError):
        EnduranceModel().endurance_at_factor(bad)


def test_invalid_constructor_args():
    with pytest.raises(ValueError):
        EnduranceModel(base_latency_ns=0)
    with pytest.raises(ValueError):
        EnduranceModel(base_endurance=-5)
    with pytest.raises(ValueError):
        EnduranceModel(expo_factor=-0.5)


@given(
    factor=st.floats(min_value=1.0, max_value=10.0),
    expo=st.floats(min_value=0.5, max_value=3.0),
)
def test_endurance_monotone_in_slowdown(factor, expo):
    """Slower writes never reduce endurance (for positive exponents)."""
    model = EnduranceModel(expo_factor=expo)
    assert model.endurance_at_factor(factor) >= model.endurance_at_factor(1.0) * 0.999999


@given(
    factor=st.floats(min_value=1.0, max_value=10.0),
    expo=st.floats(min_value=0.1, max_value=3.0),
)
def test_inverse_roundtrip(factor, expo):
    model = EnduranceModel(expo_factor=expo)
    endurance = model.endurance_at_factor(factor)
    assert model.latency_for_endurance(endurance) == pytest.approx(
        factor * 150.0, rel=1e-9
    )


@given(
    f1=st.floats(min_value=1.0, max_value=5.0),
    f2=st.floats(min_value=1.0, max_value=5.0),
)
def test_damage_antitone(f1, f2):
    """Slower writes always deposit no more damage than faster ones."""
    model = EnduranceModel(expo_factor=2.0)
    if f1 <= f2:
        assert model.damage_per_write(f1) >= model.damage_per_write(f2)
    else:
        assert model.damage_per_write(f1) <= model.damage_per_write(f2)
