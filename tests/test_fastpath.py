"""A/B equivalence gate: the hot path must be bit-identical to the oracle.

``REPRO_NO_FASTPATH=1`` selects the readable reference implementations
(the pre-optimization code paths kept as the correctness oracle); unset,
the hot-path layer engages - the core's analytic clock advance, the
LLC's inlined tag scan, the compiled trace generators, and the chunked
functional warmup.  None of that is allowed to change a single bit of
observable output: every test here runs the same config both ways and
requires byte-for-byte equality of the serialized results, including a
full telemetry bundle.

The switch is environment-only by design - it must never influence the
result cache key, or a cache populated in one mode would leak results
into the other (which bit-identity makes harmless, but only the tests
here keep that invariant true).
"""
from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.analysis.export import run_result_to_dict
from repro.faults import FaultConfig
from repro.hotpath import FASTPATH_ENV, fastpath_enabled
from repro.lint.sanitize import InvariantViolation
from repro.sim.config import SimConfig
from repro.sim.events import EventQueue
from repro.sim.system import run_simulation

POLICIES = ["Norm", "BE-Mellow+SC", "Slow+SC"]
WORKLOADS = ["hmmer", "lbm"]
SEEDS = [3, 11]


def _set_mode(monkeypatch: pytest.MonkeyPatch, fastpath: bool) -> None:
    if fastpath:
        monkeypatch.delenv(FASTPATH_ENV, raising=False)
    else:
        monkeypatch.setenv(FASTPATH_ENV, "1")


def _run_json(monkeypatch: pytest.MonkeyPatch, config: SimConfig,
              fastpath: bool) -> str:
    _set_mode(monkeypatch, fastpath)
    return json.dumps(run_result_to_dict(run_simulation(config)),
                      sort_keys=True)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("policy", POLICIES)
def test_ab_bit_identity(monkeypatch: pytest.MonkeyPatch, workload: str,
                         policy: str, seed: int) -> None:
    """Hit-heavy and mixed workloads across the policy space."""
    config = SimConfig(workload=workload, policy=policy,
                       seed=seed).scaled(0.05)
    assert (_run_json(monkeypatch, config, fastpath=True)
            == _run_json(monkeypatch, config, fastpath=False))


def test_ab_bit_identity_miss_heavy(
        monkeypatch: pytest.MonkeyPatch) -> None:
    """gups misses almost always: exercises the miss/stall slow path and
    the core's clock-ownership rule (analytic advance is only legal when
    the core owns the outermost event frame)."""
    config = SimConfig(workload="gups", policy="BE-Mellow+SC",
                       seed=3).scaled(0.05)
    assert (_run_json(monkeypatch, config, fastpath=True)
            == _run_json(monkeypatch, config, fastpath=False))


def _random_small_config(rng: "random.Random") -> SimConfig:
    """A seeded random draw over the config space, kept cheap to run."""
    faults = None
    if rng.random() < 0.5:
        faults = FaultConfig(
            wear_acceleration=rng.choice([1e6, 5e6]),
            spare_lines_per_bank=rng.choice([2, 8]),
            max_write_retries=rng.choice([0, 1, 2]),
            stuck_mismatch_probability=rng.choice([0.25, 0.5, 1.0]),
        )
    return SimConfig(
        workload=rng.choice(["hmmer", "lbm", "zeusmp", "gups", "stream"]),
        policy=rng.choice([
            "Norm", "Slow+SC", "B-Mellow+SC", "BE-Mellow+SC+WQ", "E-Norm+NC",
        ]),
        seed=rng.randrange(1, 1000),
        slow_factor=rng.choice([2.0, 3.0]),
        num_banks=rng.choice([4, 8]),
        num_ranks=rng.choice([1, 2]),
        faults=faults,
    ).scaled(rng.choice([0.01, 0.02]))


@pytest.mark.parametrize("index", range(6))
def test_ab_bit_identity_randomized_configs(
        monkeypatch: pytest.MonkeyPatch, index: int) -> None:
    """Differential sweep over seeded-random configs, fault injection
    included: wherever the drawn config lands in the space, both
    implementations must serialize to the same bytes.  The draw is
    seeded per index, so a failure reproduces exactly."""
    config = _random_small_config(random.Random(0xFA57 + index))
    assert (_run_json(monkeypatch, config, fastpath=True)
            == _run_json(monkeypatch, config, fastpath=False))


def test_telemetry_bundle_byte_identity(
        monkeypatch: pytest.MonkeyPatch, tmp_path: Path) -> None:
    """The full telemetry bundle - metric series, event trace, wear
    heatmap, manifest - must be byte-for-byte identical across modes.
    Telemetry timestamps are simulated time, so nothing here may vary."""
    bundles = {}
    for mode, fastpath in (("fast", True), ("ref", False)):
        out = tmp_path / mode
        config = SimConfig(workload="lbm", policy="BE-Mellow+SC+WQ", seed=3,
                           telemetry=True,
                           telemetry_dir=str(out)).scaled(0.05)
        _set_mode(monkeypatch, fastpath)
        run_simulation(config)
        bundles[mode] = {
            path.name: path.read_bytes() for path in sorted(out.iterdir())
        }
    assert bundles["fast"].keys() == bundles["ref"].keys()
    for name, payload in bundles["fast"].items():
        assert payload == bundles["ref"][name], f"{name} diverged"


def test_fastpath_env_not_in_cache_key(
        monkeypatch: pytest.MonkeyPatch) -> None:
    config = SimConfig(workload="lbm", policy="Norm")
    _set_mode(monkeypatch, fastpath=True)
    key = config.cache_key()
    _set_mode(monkeypatch, fastpath=False)
    assert config.cache_key() == key


@pytest.mark.parametrize("value,expected", [
    ("1", False), ("true", False), ("YES", False), (" on ", False),
    ("", True), ("0", True), ("off", True), ("no", True),
])
def test_fastpath_env_parsing(monkeypatch: pytest.MonkeyPatch,
                              value: str, expected: bool) -> None:
    monkeypatch.setenv(FASTPATH_ENV, value)
    assert fastpath_enabled() is expected


def test_fastpath_default_on(monkeypatch: pytest.MonkeyPatch) -> None:
    monkeypatch.delenv(FASTPATH_ENV, raising=False)
    assert fastpath_enabled() is True


# ---------------------------------------------------------------------------
# Adversarial unit tests for the batch-advance seams (EventQueue).  Each
# targets an edge the analytic jump / deferred-event machinery could get
# subtly wrong while still passing the statistical A/B matrix above.
# ---------------------------------------------------------------------------


def test_advance_if_clear_refuses_exact_tie_with_heap_event() -> None:
    """An event due exactly at the jump target must win: the tie has to
    go through the heap so sequence ordering decides, not the jumper."""
    q = EventQueue(sanitize=False)
    q.schedule(10.0, lambda: None)
    assert q.advance_if_clear(10.0) is False
    assert q.now == 0.0   # simlint: ignore[SIM004] -- exact by construction: jump targets are set, not computed
    # Strictly before the pending event the window is quiescent.
    assert q.advance_if_clear(9.0) is True
    assert q.now == 9.0   # simlint: ignore[SIM004] -- exact by construction: jump targets are set, not computed


def test_advance_if_clear_refuses_exact_tie_with_deferred_event() -> None:
    """A deferred event counts as pending even though it is not in the
    heap: jumping over (or onto) it would run the window out of order."""
    q = EventQueue(sanitize=False)
    q.defer(10.0, lambda: None)
    assert q.advance_if_clear(10.0) is False
    assert q.advance_if_clear(11.0) is False
    assert q.advance_if_clear(9.5) is True
    assert q.now == 9.5   # simlint: ignore[SIM004] -- exact by construction: jump targets are set, not computed


def test_run_fast_zero_length_deferred_window_runs_inline() -> None:
    """A deferral at exactly ``now`` (zero-length quiescent window) must
    resolve inline without moving the clock - the degenerate jump."""
    q = EventQueue(sanitize=False)
    q.schedule(5.0, lambda: None)
    assert q.run_fast(budget=1) == 1
    assert q.now == 5.0   # simlint: ignore[SIM004] -- exact by construction: jump targets are set, not computed
    fired = []
    q.defer(5.0, lambda: fired.append(q.now))
    assert q.run_fast(budget=10) == 1
    assert fired == [5.0]
    assert q.now == 5.0   # simlint: ignore[SIM004] -- exact by construction: jump targets are set, not computed
    assert q.deferred_time is None


def test_run_fast_flushes_deferral_on_time_tie_fifo_order() -> None:
    """schedule(t) / defer(t) / schedule(t): all three tie on time, so
    reserved sequence numbers must serialize them in call order."""
    q = EventQueue(sanitize=False)
    order = []
    q.schedule(10.0, lambda: order.append("first-scheduled"))
    q.defer(10.0, lambda: order.append("deferred"))
    q.schedule(10.0, lambda: order.append("last-scheduled"))
    assert q.run_fast(budget=10) == 3
    assert order == ["first-scheduled", "deferred", "last-scheduled"]
    assert q.now == 10.0   # simlint: ignore[SIM004] -- exact by construction: jump targets are set, not computed


def test_run_fast_flushes_deferral_past_earlier_heap_event() -> None:
    """An event scheduled *after* the deferral but due *before* it (the
    epoch-tick-inside-a-quiescent-window shape) must run first; the
    deferral is flushed into the heap and keeps its reserved sequence."""
    q = EventQueue(sanitize=False)
    order = []
    q.defer(50.0, lambda: order.append(("miss-completion", q.now)))
    q.schedule(30.0, lambda: order.append(("epoch-tick", q.now)))
    assert q.run_fast(budget=10) == 2
    assert order == [("epoch-tick", 30.0), ("miss-completion", 50.0)]
    assert q.now == 50.0   # simlint: ignore[SIM004] -- exact by construction: jump targets are set, not computed


def test_run_fast_deferred_seam_with_sanitizer_armed() -> None:
    """The inline-resolution branch has its own monotonicity check; a
    legal window must pass it and an illegal jump must trip it."""
    q = EventQueue(sanitize=True)
    fired = []
    q.defer(20.0, lambda: fired.append(q.now))
    assert q.run_fast(budget=10) == 1
    assert fired == [20.0]
    with pytest.raises(InvariantViolation):
        q.advance_if_clear(5.0)   # behind now=20 with the sanitizer armed


def test_defer_contract() -> None:
    """One deferral at a time, never into the past."""
    q = EventQueue(sanitize=False)
    q.schedule(5.0, lambda: None)
    q.run_fast(budget=1)
    with pytest.raises(ValueError):
        q.defer(4.0, lambda: None)
    q.defer(6.0, lambda: None)
    with pytest.raises(RuntimeError):
        q.defer(7.0, lambda: None)
    q.flush_deferred()
    with pytest.raises(RuntimeError):
        q.flush_deferred()


def test_ab_bit_identity_sanitizer_armed(
        monkeypatch: pytest.MonkeyPatch) -> None:
    """With ``REPRO_SANITIZE=1`` the controller drops to the reference
    spine but the core/LLC/event-queue seams stay engaged - the armed
    monotonicity checks must all pass and the output must still match."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    config = SimConfig(workload="gups", policy="BE-Mellow+SC",
                       seed=3).scaled(0.02)
    assert (_run_json(monkeypatch, config, fastpath=True)
            == _run_json(monkeypatch, config, fastpath=False))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy", ["Norm", "BE-Mellow+SC"])
@pytest.mark.parametrize("workload", ["gups", "lbm", "stream"])
def test_ab_bit_identity_miss_heavy_with_faults(
        monkeypatch: pytest.MonkeyPatch, workload: str, policy: str,
        seed: int) -> None:
    """Miss-heavy workloads with fault injection enabled: faults force
    the controller onto the reference spine while the warmup, trace and
    core seams stay hot, so this pins the boundary between the two."""
    faults = FaultConfig(
        wear_acceleration=5e6,
        spare_lines_per_bank=2,
        max_write_retries=1,
        stuck_mismatch_probability=0.5,
    )
    config = SimConfig(workload=workload, policy=policy, seed=seed,
                       faults=faults).scaled(0.02)
    assert (_run_json(monkeypatch, config, fastpath=True)
            == _run_json(monkeypatch, config, fastpath=False))
