"""Tests for table CSV/JSON export."""

import csv
import io
import json

import pytest

from repro.analysis.export import table_to_csv, table_to_json, write_table
from repro.analysis.report import Table


def sample_table():
    table = Table("Sample", ["name", "value"])
    table.add_row("a", 1.5)
    table.add_row("b", 2)
    table.notes.append("a note")
    return table


def test_csv_roundtrip():
    text = table_to_csv(sample_table())
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["name", "value"]
    assert rows[1] == ["a", "1.5"]
    assert rows[2] == ["b", "2"]


def test_json_structure():
    data = json.loads(table_to_json(sample_table()))
    assert data["title"] == "Sample"
    assert data["rows"][0] == {"name": "a", "value": 1.5}
    assert data["notes"] == ["a note"]


def test_json_handles_inf():
    table = Table("t", ["v"])
    table.add_row(float("inf"))
    data = json.loads(table_to_json(table))
    assert data["rows"][0]["v"] == float("inf")


def test_write_table_csv(tmp_path):
    path = write_table(sample_table(), tmp_path / "out.csv")
    assert path.exists()
    assert "name,value" in path.read_text()


def test_write_table_json(tmp_path):
    path = write_table(sample_table(), tmp_path / "out.json")
    assert json.loads(path.read_text())["title"] == "Sample"


def test_write_table_unknown_format(tmp_path):
    with pytest.raises(ValueError):
        write_table(sample_table(), tmp_path / "out.xlsx")
