"""Runtime invariant sanitizer: violations raise, clean runs stay clean.

Two obligations, both from the "sanitizer is read-only" contract:

* corrupted component state must raise a structured
  :class:`InvariantViolation` naming the broken invariant;
* an uncorrupted run with the sanitizer armed must finish with zero
  violations and produce *bit-identical* statistics to an unsanitized run.
"""

import heapq
from dataclasses import replace

import pytest

from repro.endurance.startgap import StartGap
from repro.endurance.wear import WearTracker
from repro.experiments.runner import result_to_dict
from repro.lint.sanitize import (
    ENV_VAR,
    InvariantViolation,
    check,
    close_enough,
    env_enabled,
    resolve,
)
from repro.memory.queues import Request, RequestQueue, WRITE
from repro.sim.config import SimConfig
from repro.sim.events import EventQueue
from repro.sim.system import System

# Small enough to run in seconds, large enough to exercise every seam
# (writebacks, eager writes, cancellations, wear accounting).
SMOKE_CONFIG = SimConfig(workload="stream", policy="BE-Mellow+SC").scaled(0.02)


def make_request(bank=0, block=None):
    return Request(kind=WRITE, block=block if block is not None else bank,
                   bank=bank, rank=0, row=0, arrival_ns=0.0)


# --------------------------------------------------------------------------
# Arming: env var and config flag
# --------------------------------------------------------------------------

def test_resolve_explicit_flag_wins_over_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "1")
    assert resolve(False) is False
    assert resolve(True) is True
    assert resolve(None) is True

@pytest.mark.parametrize("value,expected", [
    ("1", True), ("true", True), ("YES", True), ("on", True),
    ("0", False), ("", False), ("off", False),
])
def test_env_enabled_truthiness(monkeypatch, value, expected):
    monkeypatch.setenv(ENV_VAR, value)
    assert env_enabled() is expected

def test_env_arms_components(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "1")
    eq = EventQueue()
    heapq.heappush(eq._heap, (-1.0, 0, lambda: None))
    with pytest.raises(InvariantViolation):
        eq.pop_and_run()


# --------------------------------------------------------------------------
# InvariantViolation structure
# --------------------------------------------------------------------------

def test_check_raises_with_invariant_and_state():
    with pytest.raises(InvariantViolation) as excinfo:
        check(False, "example-invariant", "it broke", bank=3, damage=1.5)
    violation = excinfo.value
    assert violation.invariant == "example-invariant"
    assert violation.state == {"bank": 3, "damage": 1.5}
    assert isinstance(violation, AssertionError)
    assert "example-invariant" in str(violation)

def test_check_passes_silently():
    check(True, "example-invariant", "fine")

def test_close_enough_tolerance():
    assert close_enough(1.0, 1.0 + 1e-9)
    assert not close_enough(1.0, 1.01)


# --------------------------------------------------------------------------
# Event-queue time monotonicity
# --------------------------------------------------------------------------

def test_event_queue_detects_time_regression():
    eq = EventQueue(sanitize=True)
    eq.schedule(10.0, lambda: None)
    eq.run_all()
    assert eq.now == 10.0   # simlint: ignore[SIM004] -- exact by construction
    # schedule() refuses past times, so corrupt the heap directly - the
    # sanitizer is the backstop for exactly this kind of internal bug.
    heapq.heappush(eq._heap, (5.0, 999, lambda: None))
    with pytest.raises(InvariantViolation) as excinfo:
        eq.pop_and_run()
    assert excinfo.value.invariant == "event-time-monotonicity"
    assert excinfo.value.state["event_time_ns"] == 5.0

def test_event_queue_clean_when_unsanitized():
    eq = EventQueue(sanitize=False)
    heapq.heappush(eq._heap, (-1.0, 0, lambda: None))
    assert eq.pop_and_run()   # silently accepted: the check is opt-in


# --------------------------------------------------------------------------
# Request-queue occupancy conservation
# --------------------------------------------------------------------------

def test_queue_detects_size_counter_corruption():
    queue = RequestQueue(capacity=4, name="write", sanitize=True)
    queue.push(make_request(bank=0))
    queue._size = 3        # desync the aggregate counter
    with pytest.raises(InvariantViolation) as excinfo:
        queue.push(make_request(bank=1))
    assert excinfo.value.invariant == "queue-occupancy"

def test_queue_detects_size_out_of_bounds():
    queue = RequestQueue(capacity=4, name="write", sanitize=True)
    queue._size = -2
    with pytest.raises(InvariantViolation):
        queue.push(make_request(bank=0))

def test_queue_clean_under_normal_mutation():
    queue = RequestQueue(capacity=4, name="write", sanitize=True)
    for bank in (0, 1, 0):
        queue.push(make_request(bank=bank))
    queue.push_front(make_request(bank=1))
    assert queue.pop_bank(0).bank == 0
    assert queue.pop_bank_row_first(1, open_row=None).bank == 1
    assert len(queue) == 2


# --------------------------------------------------------------------------
# Wear accounting
# --------------------------------------------------------------------------

def test_wear_rejects_out_of_range_bank():
    wear = WearTracker(num_banks=2, blocks_per_bank=64, sanitize=True)
    with pytest.raises(InvariantViolation) as excinfo:
        wear.record_write(5, 1.0)
    assert excinfo.value.invariant == "wear-conservation"

def test_wear_rejects_negative_fraction():
    wear = WearTracker(num_banks=2, blocks_per_bank=64, sanitize=True)
    with pytest.raises(InvariantViolation) as excinfo:
        wear.record_write(0, 1.0, fraction=-0.5)
    assert excinfo.value.invariant == "wear-monotonicity"

def test_wear_rejects_sub_normal_slow_factor():
    wear = WearTracker(num_banks=2, blocks_per_bank=64, sanitize=True)
    with pytest.raises(InvariantViolation):
        wear.record_write(0, 0.5)

def test_wear_detects_damage_regression():
    wear = WearTracker(num_banks=2, blocks_per_bank=64, sanitize=True)
    wear.record_write(0, 1.0)
    wear._damage_watermarks[0] = float("inf")   # fake a higher past damage
    with pytest.raises(InvariantViolation) as excinfo:
        wear.record_write(0, 3.0)
    assert excinfo.value.invariant == "wear-monotonicity"

def test_wear_clean_accounting_is_untouched():
    armed = WearTracker(num_banks=2, blocks_per_bank=64, sanitize=True)
    plain = WearTracker(num_banks=2, blocks_per_bank=64, sanitize=False)
    for tracker in (armed, plain):
        for bank, factor in [(0, 1.0), (1, 3.0), (0, 3.0), (1, 1.0)]:
            tracker.record_write(bank, factor, fraction=0.75)
    assert armed.total_writes() == plain.total_writes()
    assert [r.damage(armed.model) for r in armed.records] == \
        [r.damage(plain.model) for r in plain.records]


# --------------------------------------------------------------------------
# Start-Gap remap bijectivity
# --------------------------------------------------------------------------

def test_startgap_detects_corrupt_start_register():
    gap = StartGap(num_lines=16, psi=1, sanitize=True)
    gap.start = 99                     # out of the logical range
    with pytest.raises(InvariantViolation) as excinfo:
        gap.record_write()             # psi=1: next write moves the gap
    assert excinfo.value.invariant == "startgap-bijectivity"

def test_startgap_detects_corrupt_gap_register():
    gap = StartGap(num_lines=16, psi=1, sanitize=True)
    gap.gap = 40
    with pytest.raises(InvariantViolation):
        gap.record_write()

def test_startgap_clean_through_full_rotation():
    gap = StartGap(num_lines=8, psi=1, sanitize=True)
    for _ in range(3 * (gap.num_slots + 1)):
        gap.record_write()             # several full gap rotations
    mapped = {gap.remap(i) for i in range(gap.num_lines)}
    assert len(mapped) == gap.num_lines
    assert gap.gap not in mapped


# --------------------------------------------------------------------------
# Controller-side wear conservation (the cross-component check)
# --------------------------------------------------------------------------

def test_phantom_wear_write_trips_conservation_check():
    # A wear-tracker write the controller never issued breaks the
    # "controller-issued writes == recorded writes" conservation law at the
    # next real write completion.
    config = replace(SMOKE_CONFIG, warmup_accesses=0, sanitize=True)
    system = System(config)
    system.events.schedule(0.5, lambda: system.wear.record_write(0, 1.0))
    with pytest.raises(InvariantViolation) as excinfo:
        system.run()
    assert excinfo.value.invariant == "wear-conservation"


# --------------------------------------------------------------------------
# Clean runs: zero violations and bit-identical results
# --------------------------------------------------------------------------

def test_sanitized_run_is_clean_and_bit_identical(monkeypatch):
    plain = System(SMOKE_CONFIG).run()
    monkeypatch.setenv(ENV_VAR, "1")
    sanitized_system = System(SMOKE_CONFIG)
    assert sanitized_system.sanitize
    sanitized = sanitized_system.run()
    assert result_to_dict(sanitized) == result_to_dict(plain)

def test_sanitize_flag_run_matches_config_cache_identity():
    armed = replace(SMOKE_CONFIG, sanitize=True)
    # Read-only sanitizer => same results => one shared cache entry.
    assert armed.cache_key() == SMOKE_CONFIG.cache_key()
    assert armed.cache_digest() == SMOKE_CONFIG.cache_digest()
    assert result_to_dict(System(armed).run()) == \
        result_to_dict(System(SMOKE_CONFIG).run())
