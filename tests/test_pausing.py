"""Tests for write pausing (+WP, Qureshi et al. HPCA 2010)."""

import pytest

from repro.core.policies import parse_policy
from repro.endurance.wear import WearTracker
from repro.memory.address import AddressMap
from repro.memory.controller import MemoryController
from repro.sim.events import EventQueue

AMAP = AddressMap(num_banks=4, num_ranks=1, capacity_bytes=64 * 1024 * 1024)


def make_controller(policy="Slow+SC+WP"):
    events = EventQueue()
    ctrl = MemoryController(
        events=events, policy=parse_policy(policy), address_map=AMAP,
        wear=WearTracker(AMAP.num_banks, AMAP.blocks_per_bank),
    )
    return events, ctrl


def block_for_bank(bank, index=0):
    return AMAP.encode(bank, index)


def test_wp_suffix_parses():
    policy = parse_policy("Slow+SC+WP")
    assert policy.pausing and policy.cancel_slow


def test_wp_requires_interruptible_writes():
    with pytest.raises(ValueError):
        parse_policy("Norm+WP")


def test_pause_preserves_progress_in_completion_time():
    """A paused slow write resumes with only the remaining pulse to pay.

    Timeline: the write's pulse starts at 20 ns; a read pauses it at
    170 ns (150 ns of the 450 ns pulse done).  The read occupies the bank
    for 142.5 ns plus the 2.5 ns abort penalty, after which the resumed
    write pays a 20 ns burst plus the remaining 300 ns - finishing far
    sooner than a from-scratch reissue would.
    """
    events, ctrl = make_controller("Slow+SC+WP")
    done = {}
    ctrl.submit_write(block_for_bank(0, 32), lambda t: done.setdefault("w", t))
    events.run_until(170)
    ctrl.submit_read(block_for_bank(0, 0), lambda t: done.setdefault("r", t))
    events.run_all()
    assert ctrl.stats.pauses == 1
    assert ctrl.stats.cancellations == 0
    restart_finish = done["r"] + 2.5 + 20 + 450   # what a full restart costs
    assert done["w"] < restart_finish - 100


def test_pause_total_wear_is_one_write():
    """Pausing splits one pulse across attempts: total wear == 1 write."""
    events, ctrl = make_controller("Slow+SC+WP")
    ctrl.submit_write(block_for_bank(0, 32))
    events.run_until(170)                       # pause 1/3 through the pulse
    ctrl.submit_read(block_for_bank(0, 0))
    events.run_all()
    record = ctrl.wear.records[0]
    assert record.slow_writes_by_factor[3.0] == pytest.approx(1.0)


def test_cancel_total_wear_exceeds_one_write():
    """Cancellation (no +WP) restarts: partial stress + a full pulse."""
    events, ctrl = make_controller("Slow+SC")
    ctrl.submit_write(block_for_bank(0, 32))
    events.run_until(170)
    ctrl.submit_read(block_for_bank(0, 0))
    events.run_all()
    record = ctrl.wear.records[0]
    assert record.slow_writes_by_factor[3.0] == pytest.approx(4.0 / 3.0)


def test_pause_allowed_past_cancel_threshold():
    """Pausing wastes nothing, so it may interrupt near-complete writes."""
    events, ctrl = make_controller("Slow+SC+WP")
    ctrl.submit_write(block_for_bank(0, 32))
    events.run_until(400)                      # 84% through the pulse
    ctrl.submit_read(block_for_bank(0, 0))
    events.run_all()
    assert ctrl.stats.pauses == 1


def test_multiple_pauses_accumulate_progress():
    events, ctrl = make_controller("Slow+SC+WP")
    ctrl.submit_write(block_for_bank(0, 32))
    events.run_until(120)                      # 100 ns of pulse done
    ctrl.submit_read(block_for_bank(0, 0))     # pause 1
    events.run_until(500)                      # resumed write in flight
    ctrl.submit_read(block_for_bank(0, 16))    # pause 2
    events.run_all()
    assert ctrl.stats.pauses == 2
    record = ctrl.wear.records[0]
    assert record.slow_writes_by_factor[3.0] == pytest.approx(1.0)


def test_end_to_end_pausing_beats_cancellation_wear():
    from repro import SimConfig, run_simulation
    fast = dict(workload="GemsFDTD", warmup_accesses=5000,
                measure_accesses=12000, llc_size_bytes=256 * 1024,
                functional_warmup_max=30000)
    cancel = run_simulation(SimConfig(policy="Slow+SC", **fast))
    pause = run_simulation(SimConfig(policy="Slow+SC+WP", **fast))
    # Same write workload, but pausing never re-pays pulse time.
    assert pause.lifetime_years >= cancel.lifetime_years
