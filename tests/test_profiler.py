"""Tests for the LRU-stack-position profiler (Section IV-B1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.profiler import StackProfiler


def test_initially_nothing_useless():
    profiler = StackProfiler(assoc=16)
    assert profiler.eager_position == 16
    assert not profiler.is_useless_position(15)


def test_paper_motivating_example():
    """Figure 7: positions 3-7 accumulate < 1/32 of requests -> useless."""
    profiler = StackProfiler(assoc=8, threshold_ratio=1.0 / 32.0)
    # 3200 total requests; positions 0-2 take nearly all hits.
    for _ in range(2000):
        profiler.record_hit(0)
    for _ in range(800):
        profiler.record_hit(1)
    for _ in range(301):
        profiler.record_hit(2)
    for position in (3, 4, 5, 6, 7):
        for _ in range(back := 19):
            profiler.record_hit(position)
    profiler.record_miss()
    # tail(3..7) = 95 hits < 3200/32 = 100 -> eager position 3.
    assert profiler.compute_eager_position() == 3


def test_tail_must_stay_under_budget():
    profiler = StackProfiler(assoc=4, threshold_ratio=0.25)
    for _ in range(50):
        profiler.record_hit(0)
    for _ in range(30):
        profiler.record_hit(2)
    for _ in range(20):
        profiler.record_hit(3)
    # total 100, budget 25: tail(3)=20 < 25; tail(2..3)=50 >= 25.
    assert profiler.compute_eager_position() == 3


def test_all_hits_at_mru_marks_everything_beyond_it_useless():
    profiler = StackProfiler(assoc=8)
    for _ in range(1000):
        profiler.record_hit(0)
    assert profiler.compute_eager_position() == 1


def test_no_requests_means_nothing_useless():
    profiler = StackProfiler(assoc=8)
    assert profiler.compute_eager_position() == 8


def test_misses_count_toward_total():
    profiler = StackProfiler(assoc=4, threshold_ratio=0.5)
    for _ in range(10):
        profiler.record_hit(3)
    # Without misses: tail(3)=10 vs budget 5 -> position 4.
    assert profiler.compute_eager_position() == 4
    for _ in range(90):
        profiler.record_miss()
    # Now budget = 50 > tail(everything)=10 -> position 0.
    assert profiler.compute_eager_position() == 0


def test_end_sample_period_publishes_and_resets():
    profiler = StackProfiler(assoc=4, threshold_ratio=0.25)
    for _ in range(100):
        profiler.record_hit(0)
    position = profiler.end_sample_period()
    assert position == profiler.eager_position == 1
    assert profiler.total_requests == 0
    assert profiler.samples_taken == 1
    assert profiler.is_useless_position(1)
    assert not profiler.is_useless_position(0)


def test_storage_bits_matches_paper():
    """Section IV-E: 20-bit counters x (16 + 2) = 360 bits for the LLC."""
    profiler = StackProfiler(assoc=16, sample_period_ns=500_000)
    assert profiler.storage_bits == 360


def test_invalid_construction():
    with pytest.raises(ValueError):
        StackProfiler(assoc=0)
    with pytest.raises(ValueError):
        StackProfiler(assoc=4, threshold_ratio=0.0)
    with pytest.raises(ValueError):
        StackProfiler(assoc=4, threshold_ratio=1.0)


@given(
    hits=st.lists(st.integers(min_value=0, max_value=7), max_size=300),
    misses=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=60)
def test_eager_position_tail_invariant(hits, misses):
    """Property: the hits at positions >= eager_position always sum to less
    than the threshold ratio of total requests (when any were recorded)."""
    profiler = StackProfiler(assoc=8, threshold_ratio=1.0 / 32.0)
    for h in hits:
        profiler.record_hit(h)
    for _ in range(misses):
        profiler.record_miss()
    position = profiler.compute_eager_position()
    total = profiler.total_requests
    if total == 0:
        assert position == 8
        return
    tail = sum(profiler.hit_counters[position:])
    assert tail < total / 32.0 or position == 8
    # And one position earlier would violate the budget:
    if position < 8:
        wider = sum(profiler.hit_counters[max(0, position - 1):])
        if position > 0:
            assert wider >= total / 32.0
