"""Telemetry subsystem: primitives, bit-identity, bundles, sweeps.

The headline invariant is reproducibility: telemetry observes the
simulation but never perturbs it, so a traced run returns a RunResult
equal to the untraced run of the same config and shares its cache key.
Everything else (ring capacity, Chrome export validity, serial/parallel
bundle equality) protects the observability outputs themselves.
"""

import copy
import json
from dataclasses import replace

import pytest

from repro.experiments.runner import Runner, cache_clear, cache_stats
from repro.sim.config import SimConfig
from repro.sim.system import run_simulation
from repro.telemetry import (
    EV_CANCEL,
    EV_COMPLETE,
    EV_ISSUE,
    EV_QUOTA_TRIP,
    EVENT_KINDS,
    NULL_TELEMETRY,
    EventTracer,
    MetricRegistry,
    NullTelemetry,
    Telemetry,
    WearHeatmap,
    bundle_is_complete,
    chrome_trace,
    chrome_trace_json,
)

TINY = dict(warmup_accesses=2000, measure_accesses=3000,
            llc_size_bytes=128 * 1024)

BUNDLE_FILES = ("metrics.json", "heatmap.json", "trace.jsonl",
                "trace.chrome.json", "manifest.json")


def tiny_config(**kwargs):
    merged = dict(TINY)
    merged.update(kwargs)
    return SimConfig(workload=merged.pop("workload", "GemsFDTD"), **merged)


# --------------------------------------------------------------------------
# Metric registry
# --------------------------------------------------------------------------

class TestMetrics:
    def test_counter_gauge_probe_sampling(self):
        reg = MetricRegistry()
        writes = reg.counter("writes")
        gated = reg.gauge("gated")
        depth = [3]
        reg.probe("depth", lambda: depth[0])

        writes.inc()
        writes.inc(2.0)
        gated.set(5.0)
        reg.sample(500_000.0)
        depth[0] = 7
        reg.sample(1_000_000.0)

        dump = reg.to_dict()
        assert dump["sample_times_ns"] == [500_000.0, 1_000_000.0]
        assert dump["series"]["writes"] == [3.0, 3.0]
        assert dump["series"]["gated"] == [5.0, 5.0]
        assert dump["series"]["depth"] == [3.0, 7.0]

    def test_instruments_are_get_or_create(self):
        reg = MetricRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")

    def test_name_kind_collision_raises(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already used"):
            reg.gauge("x")

    def test_late_instrument_is_backfilled_with_none(self):
        reg = MetricRegistry()
        reg.counter("early")
        reg.sample(1.0)
        late = reg.counter("late")
        late.inc()
        reg.sample(2.0)
        dump = reg.to_dict()
        assert dump["series"]["early"] == [0.0, 0.0]
        assert dump["series"]["late"] == [None, 1.0]

    def test_histogram_buckets_and_overflow(self):
        reg = MetricRegistry()
        hist = reg.histogram("lat", bounds=(10.0, 100.0))
        for value in (5.0, 10.0, 50.0, 1000.0):
            hist.observe(value)
        assert hist.counts == [2, 1, 1]   # <=10, <=100, overflow
        assert hist.total == 4
        assert reg.to_dict()["histograms"]["lat"]["bounds"] == [10.0, 100.0]

    def test_histogram_rejects_bad_bounds(self):
        reg = MetricRegistry()
        with pytest.raises(ValueError):
            reg.histogram("empty", bounds=())
        with pytest.raises(ValueError):
            reg.histogram("unsorted", bounds=(5.0, 1.0))


# --------------------------------------------------------------------------
# Event tracer ring buffer
# --------------------------------------------------------------------------

class TestTracer:
    def test_ring_honors_capacity_and_counts_drops(self):
        tracer = EventTracer(capacity=4)
        for i in range(10):
            tracer.record(float(i), EV_ISSUE, bank=0, req_id=i)
        assert len(tracer) == 4
        assert tracer.recorded == 10
        assert tracer.dropped == 6
        # Oldest evicted: the ring holds exactly the last four records.
        assert [ev.req_id for ev in tracer.events()] == [6, 7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_jsonl_roundtrip(self):
        tracer = EventTracer(capacity=8)
        tracer.record(100.0, EV_ISSUE, bank=2, block=7, req_id=1,
                      factor=3.0, detail="write")
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record == {"t_ns": 100.0, "kind": EV_ISSUE, "bank": 2,
                          "block": 7, "req_id": 1, "factor": 3.0,
                          "detail": "write"}

    def test_empty_tracer_exports_empty_jsonl(self):
        assert EventTracer(capacity=4).to_jsonl() == ""


class TestChromeTrace:
    def test_issue_complete_pairs_become_slices(self):
        tracer = EventTracer(capacity=16)
        tracer.record(100.0, EV_ISSUE, bank=1, req_id=5, factor=3.0,
                      detail="write")
        tracer.record(400.0, EV_COMPLETE, bank=1, req_id=5, factor=3.0)
        doc = chrome_trace(tracer)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1
        slab = slices[0]
        assert slab["name"] == "write x3"
        assert slab["ts"] == pytest.approx(0.1)    # 100 ns -> 0.1 us
        assert slab["dur"] == pytest.approx(0.3)
        assert slab["tid"] == 2                    # bank 1 -> track 2

    def test_cancel_closes_slice_with_annotation(self):
        tracer = EventTracer(capacity=16)
        tracer.record(0.0, EV_ISSUE, bank=0, req_id=1, detail="write")
        tracer.record(50.0, EV_CANCEL, bank=0, req_id=1)
        doc = chrome_trace(tracer)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices[0]["name"].endswith("(cancelled)")
        assert slices[0]["args"]["outcome"] == EV_CANCEL

    def test_orphan_closer_becomes_instant(self):
        tracer = EventTracer(capacity=16)
        tracer.record(10.0, EV_COMPLETE, bank=0, req_id=9)
        doc = chrome_trace(tracer)
        assert [e["ph"] for e in doc["traceEvents"] if e["ph"] == "X"] == []
        assert any(e["ph"] == "i" for e in doc["traceEvents"])

    def test_metric_series_become_counter_tracks(self):
        tracer = EventTracer(capacity=4)
        reg = MetricRegistry()
        reg.counter("writes").inc(4.0)
        reg.sample(500_000.0)
        doc = chrome_trace(tracer, reg)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters == [{"name": "writes", "ph": "C", "pid": 1,
                             "tid": 0, "ts": 500.0,
                             "args": {"value": 4.0}}]

    def test_document_is_json_serialisable(self):
        tracer = EventTracer(capacity=4)
        tracer.record(0.0, EV_QUOTA_TRIP, bank=3, detail="exceed=1.2")
        text = json.dumps(chrome_trace(tracer))
        doc = json.loads(text)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert {e["ph"] for e in doc["traceEvents"]} <= {"M", "i", "X", "C"}

    def test_text_export_is_canonical_compact_json(self):
        """The hand-rolled serialiser must emit exactly what a generic
        ``json.dumps`` pass over its parsed document would - any float
        formatting or escaping drift shows up as a byte diff here."""
        tracer = EventTracer(capacity=8)
        tracer.record(100.0, EV_ISSUE, bank=1, req_id=5, factor=3.0,
                      detail="write")
        tracer.record(433.25, EV_COMPLETE, bank=1, req_id=5, factor=3.0)
        tracer.record(500.0, EV_ISSUE, bank=0, req_id=6, detail="read")
        tracer.record(600.0, EV_CANCEL, bank=0, req_id=6)
        tracer.record(610.0, EV_COMPLETE, bank=2, req_id=99)  # orphan
        tracer.record(700.0, EV_QUOTA_TRIP, bank=3,
                      detail='exceed="1.2"\n')  # needs escaping
        tracer.record(800.0, EV_ISSUE, bank=2, req_id=7,
                      detail="write")  # still open at ring end
        reg = MetricRegistry()
        reg.counter("writes").inc(4.0)
        reg.sample(500_000.0)
        reg.counter("late").inc(1.0)
        reg.sample(1_000_000.0)  # "writes" column now has a None hole
        text = chrome_trace_json(tracer, reg)
        assert text == json.dumps(json.loads(text), separators=(",", ":"))
        assert chrome_trace(tracer, reg) == json.loads(text)


# --------------------------------------------------------------------------
# Wear heatmap
# --------------------------------------------------------------------------

class TestHeatmap:
    def test_snapshots_and_deltas(self):
        heatmap = WearHeatmap(num_banks=2)
        wear = [0.0, 0.0]
        heatmap.set_probe(lambda: wear)
        wear[:] = [1.0, 2.0]
        heatmap.snapshot(500.0)
        wear[:] = [1.5, 4.0]
        heatmap.snapshot(1000.0)
        dump = heatmap.to_dict()
        assert heatmap.num_epochs == 2
        assert dump["cumulative"] == [[1.0, 2.0], [1.5, 4.0]]
        assert dump["deltas"] == [[1.0, 2.0], [0.5, 2.0]]
        assert dump["epoch_times_ns"] == [500.0, 1000.0]

    def test_snapshot_without_probe_is_noop(self):
        heatmap = WearHeatmap(num_banks=2)
        heatmap.snapshot(1.0)
        assert heatmap.num_epochs == 0

    def test_probe_row_length_is_validated(self):
        heatmap = WearHeatmap(num_banks=4)
        heatmap.set_probe(lambda: [1.0, 2.0])
        with pytest.raises(ValueError, match="2 values for 4 banks"):
            heatmap.snapshot(1.0)


# --------------------------------------------------------------------------
# Null telemetry
# --------------------------------------------------------------------------

class TestNullTelemetry:
    def test_enabled_flags(self):
        assert Telemetry(1, lambda: 0.0).enabled is True
        assert NULL_TELEMETRY.enabled is False
        assert NullTelemetry.enabled is False

    def test_unguarded_use_raises_loudly(self):
        with pytest.raises(RuntimeError, match="missing its"):
            NULL_TELEMETRY.metrics
        with pytest.raises(RuntimeError, match="sample_epoch"):
            NULL_TELEMETRY.sample_epoch()

    def test_null_is_copyable(self):
        # Dunder probes must keep the AttributeError contract or
        # copy/pickle protocols break on components holding the null.
        assert copy.deepcopy(NULL_TELEMETRY).enabled is False


# --------------------------------------------------------------------------
# Whole-simulator integration
# --------------------------------------------------------------------------

class TestBitIdentity:
    def test_traced_run_matches_untraced(self, tmp_path):
        config = tiny_config(policy="BE-Mellow+SC")
        plain = run_simulation(config)
        traced = run_simulation(replace(
            config, telemetry=True, telemetry_dir=str(tmp_path / "bundle")))
        assert traced == plain

    def test_tiny_ring_does_not_perturb_results(self, tmp_path):
        config = tiny_config(policy="Slow")
        plain = run_simulation(config)
        traced = run_simulation(replace(
            config, telemetry=True, telemetry_dir=str(tmp_path / "b"),
            telemetry_trace_capacity=64))
        assert traced == plain
        manifest = json.loads((tmp_path / "b" / "manifest.json").read_text())
        assert manifest["trace"]["retained"] == 64
        assert manifest["trace"]["dropped"] > 0

    def test_telemetry_fields_do_not_change_cache_key(self, tmp_path):
        config = tiny_config()
        traced = replace(config, telemetry=True,
                         telemetry_dir=str(tmp_path),
                         telemetry_trace_capacity=128)
        assert traced.cache_key() == config.cache_key()
        assert traced.cache_digest() == config.cache_digest()


class TestBundleOnDisk:
    def test_run_traced_writes_complete_bundle(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        config = tiny_config(policy="BE-Mellow+SC+WQ")
        result, bundle = runner.run_traced(config)
        assert bundle_is_complete(bundle)
        for name in BUNDLE_FILES:
            assert (bundle / name).is_file(), name
        assert result == run_simulation(config)

    def test_heatmap_covers_every_sampled_epoch(self, tmp_path):
        _, bundle = Runner(cache_dir=tmp_path).run_traced(
            tiny_config(policy="BE-Mellow+SC+WQ"))
        metrics = json.loads((bundle / "metrics.json").read_text())
        heatmap = json.loads((bundle / "heatmap.json").read_text())
        num_epochs = len(metrics["sample_times_ns"])
        assert num_epochs >= 1
        assert heatmap["epoch_times_ns"] == metrics["sample_times_ns"]
        assert len(heatmap["cumulative"]) == num_epochs
        for row in heatmap["cumulative"]:
            assert len(row) == heatmap["num_banks"]

    def test_trace_events_are_typed_and_time_ordered(self, tmp_path):
        _, bundle = Runner(cache_dir=tmp_path).run_traced(tiny_config())
        events = [json.loads(line) for line in
                  (bundle / "trace.jsonl").read_text().splitlines()]
        assert events
        assert all(ev["kind"] in EVENT_KINDS for ev in events)
        times = [ev["t_ns"] for ev in events]
        assert times == sorted(times)

    def test_chrome_export_is_valid_json(self, tmp_path):
        _, bundle = Runner(cache_dir=tmp_path).run_traced(tiny_config())
        doc = json.loads((bundle / "trace.chrome.json").read_text())
        assert doc["displayTimeUnit"] == "ns"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases          # paired issue/complete slices
        assert "M" in phases          # process/thread names
        assert phases <= {"M", "i", "X", "C"}

    def test_incomplete_bundle_triggers_resimulation(self, tmp_path):
        config = tiny_config()
        first, bundle = Runner(cache_dir=tmp_path).run_traced(config)
        (bundle / "manifest.json").unlink()
        assert not bundle_is_complete(bundle)
        second, bundle_again = Runner(cache_dir=tmp_path).run_traced(config)
        assert bundle_again == bundle
        assert bundle_is_complete(bundle)
        assert second == first

    def test_cache_stats_and_clear_cover_bundles(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        runner.run_traced(tiny_config())
        assert cache_stats(tmp_path)["telemetry_bundles"] == 1
        removed = cache_clear(tmp_path)
        assert removed == 2           # one entry + one bundle
        assert cache_stats(tmp_path)["telemetry_bundles"] == 0


class TestSweepTelemetry:
    def grid(self):
        return [tiny_config(workload=w, policy=p, telemetry=True)
                for w in ("GemsFDTD", "lbm") for p in ("Norm", "Slow")]

    def test_serial_and_parallel_sweeps_emit_identical_bundles(
            self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = Runner(cache_dir=serial_dir).sweep(self.grid(), jobs=1)
        parallel = Runner(cache_dir=parallel_dir).sweep(self.grid(), jobs=4)
        assert serial == parallel
        serial_bundles = sorted(serial_dir.glob("*.telemetry"))
        parallel_bundles = sorted(parallel_dir.glob("*.telemetry"))
        assert len(serial_bundles) == len(self.grid())
        assert [b.name for b in serial_bundles] == \
               [b.name for b in parallel_bundles]
        for left, right in zip(serial_bundles, parallel_bundles):
            for name in BUNDLE_FILES:
                assert (left / name).read_bytes() == \
                       (right / name).read_bytes(), f"{left.name}/{name}"

    def test_sweep_reuses_complete_bundles(self, tmp_path):
        grid = self.grid()
        Runner(cache_dir=tmp_path).sweep(grid, jobs=1)
        mtimes = {p: p.stat().st_mtime_ns
                  for p in tmp_path.glob("*.telemetry/manifest.json")}
        assert len(mtimes) == len(grid)
        Runner(cache_dir=tmp_path).sweep(grid, jobs=1)
        assert {p: p.stat().st_mtime_ns
                for p in tmp_path.glob("*.telemetry/manifest.json")} == mtimes
