"""Property tests for the generalized energy model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.energy.cells import get_cell
from repro.energy.nvsim import LineEnergyModel

CELL_NAMES = ("CellA", "CellB", "CellC", "CellD", "CellE")


@given(
    cell=st.sampled_from(CELL_NAMES),
    f1=st.floats(min_value=1.0, max_value=5.0),
    f2=st.floats(min_value=1.0, max_value=5.0),
)
@settings(max_examples=60)
def test_line_energy_monotone_in_factor(cell, f1, f2):
    """Slower writes always cost at least as much energy."""
    model = LineEnergyModel.for_cell(cell)
    lo, hi = sorted((f1, f2))
    assert model.write_energy_pj_for(lo) <= model.write_energy_pj_for(hi) + 1e-9


@given(cell=st.sampled_from(CELL_NAMES))
def test_factor_model_agrees_with_binary_at_anchors(cell):
    model = LineEnergyModel.for_cell(cell)
    assert model.write_energy_pj_for(1.0) == pytest.approx(
        model.write_energy_pj(False)
    )
    assert model.write_energy_pj_for(3.0) == pytest.approx(
        model.write_energy_pj(True), rel=1e-6,
    )


@given(
    cell=st.sampled_from(CELL_NAMES),
    factor=st.floats(min_value=1.0, max_value=3.0),
)
@settings(max_examples=60)
def test_energy_grows_sublinearly_with_pulse(cell, factor):
    """Power drops as the pulse lengthens: E(f) < f * E(1) for f > 1."""
    cell_params = get_cell(cell)
    assert cell_params.cell_write_energy_for(factor) <= (
        factor * cell_params.cell_write_energy_for(1.0) + 1e-12
    )


def test_mid_factor_between_anchors():
    model = LineEnergyModel.for_cell("CellC")
    mid = model.write_energy_pj_for(1.5)
    assert model.write_energy_pj(False) < mid < model.write_energy_pj(True)


@given(factor=st.floats(min_value=0.01, max_value=0.99))
def test_subunit_factor_rejected(factor):
    with pytest.raises(ValueError):
        get_cell("CellC").cell_write_energy_for(factor)
