"""Tests for Start-Gap wear leveling, including bijectivity properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.endurance.startgap import StartGap


def test_initial_mapping_is_identity():
    sg = StartGap(num_lines=8)
    assert [sg.remap(i) for i in range(8)] == list(range(8))


def test_gap_moves_every_psi_writes():
    sg = StartGap(num_lines=8, psi=4)
    assert sg.gap == 8
    for _ in range(4):
        sg.record_write()
    assert sg.gap == 7
    for _ in range(4):
        sg.record_write()
    assert sg.gap == 6


def test_start_increments_after_full_gap_rotation():
    sg = StartGap(num_lines=4, psi=1)
    # The gap must travel from slot 4 down to 0, then wrap: 5 moves total.
    for _ in range(5):
        sg.record_write()
    assert sg.start == 1
    assert sg.gap == 4


def test_remap_never_returns_gap_slot():
    sg = StartGap(num_lines=16, psi=3)
    for _ in range(500):
        mapped = {sg.remap(i) for i in range(16)}
        assert sg.gap not in mapped
        sg.record_write()


def test_remap_out_of_range_raises():
    sg = StartGap(num_lines=4)
    with pytest.raises(IndexError):
        sg.remap(4)
    with pytest.raises(IndexError):
        sg.remap(-1)


def test_invalid_construction():
    with pytest.raises(ValueError):
        StartGap(num_lines=0)
    with pytest.raises(ValueError):
        StartGap(num_lines=4, psi=0)


def test_extra_write_overhead_close_to_inverse_psi():
    sg = StartGap(num_lines=64, psi=100)
    for _ in range(10_000):
        sg.record_write()
    assert sg.extra_write_overhead == pytest.approx(0.01, rel=0.05)


def test_overhead_zero_before_writes():
    assert StartGap(num_lines=4).extra_write_overhead == 0.0


@given(
    num_lines=st.integers(min_value=1, max_value=64),
    writes=st.integers(min_value=0, max_value=400),
    psi=st.integers(min_value=1, max_value=7),
)
@settings(max_examples=60, deadline=None)
def test_remap_is_injective_at_all_times(num_lines, writes, psi):
    """Property: the logical->physical map is injective after any number of
    writes (two logical lines never share a physical slot)."""
    sg = StartGap(num_lines=num_lines, psi=psi)
    for _ in range(writes):
        sg.record_write()
    mapped = [sg.remap(i) for i in range(num_lines)]
    assert len(set(mapped)) == num_lines
    assert all(0 <= m <= num_lines for m in mapped)


@given(
    num_lines=st.integers(min_value=2, max_value=32),
    rounds=st.integers(min_value=1, max_value=4),
)
# deadline=None: wall-clock deadlines flake under coverage tracing.
@settings(max_examples=40, deadline=None)
def test_rotation_visits_every_slot(num_lines, rounds):
    """Property: after enough writes every logical line has occupied
    several distinct physical slots - wear actually spreads."""
    sg = StartGap(num_lines=num_lines, psi=1)
    slots_seen = {i: set() for i in range(num_lines)}
    # One full start rotation takes (num_lines + 1) gap traversals.
    for _ in range(rounds * (num_lines + 1) ** 2):
        for logical in range(num_lines):
            slots_seen[logical].add(sg.remap(logical))
        sg.record_write()
    for logical, seen in slots_seen.items():
        assert len(seen) >= min(num_lines, 2)
