"""Behavioral tests for the memory controller.

These drive the controller directly through its submission API with a
hand-built event queue, checking scheduling priorities, drain behaviour,
write-speed decisions, cancellation and wear accounting.
"""

import pytest

from repro.core.policies import parse_policy
from repro.core.wear_quota import WearQuota
from repro.endurance.wear import WearTracker
from repro.memory.address import AddressMap
from repro.memory.controller import MemoryController
from repro.sim.events import EventQueue


AMAP = AddressMap(num_banks=4, num_ranks=1, capacity_bytes=64 * 1024 * 1024)


def make_controller(policy="Norm", quota=None, **kwargs):
    events = EventQueue()
    pol = parse_policy(policy)
    wear = WearTracker(AMAP.num_banks, AMAP.blocks_per_bank)
    ctrl = MemoryController(
        events=events, policy=pol, address_map=AMAP,
        wear=wear, quota=quota, **kwargs,
    )
    return events, ctrl


def block_for_bank(bank, index=0):
    """A global block landing in the given bank."""
    return AMAP.encode(bank, index)


class TestReadPath:
    def test_read_completes_with_callback(self):
        events, ctrl = make_controller()
        done = []
        ctrl.submit_read(block_for_bank(0), done.append)
        events.run_all()
        assert len(done) == 1
        # Row miss: tRCD + tCAS + burst = 142.5 ns.
        assert done[0] == pytest.approx(142.5)

    def test_row_buffer_hit_is_fast(self):
        events, ctrl = make_controller()
        done = []
        ctrl.submit_read(block_for_bank(0, 0), done.append)
        events.run_all()
        ctrl.submit_read(block_for_bank(0, 1), done.append)  # same row
        events.run_all()
        assert done[1] - done[0] == pytest.approx(22.5)      # tCAS + burst

    def test_row_miss_after_row_change(self):
        events, ctrl = make_controller()
        done = []
        ctrl.submit_read(block_for_bank(0, 0), done.append)
        events.run_all()
        ctrl.submit_read(block_for_bank(0, 16), done.append)  # next row
        events.run_all()
        assert done[1] - done[0] == pytest.approx(142.5)

    def test_reads_to_different_banks_overlap(self):
        events, ctrl = make_controller()
        done = []
        ctrl.submit_read(block_for_bank(0), done.append)
        ctrl.submit_read(block_for_bank(1), done.append)
        events.run_all()
        # Bank-parallel activation; bus serialises the two 20 ns bursts.
        assert done[1] - done[0] == pytest.approx(20.0)

    def test_reads_same_bank_serialise(self):
        events, ctrl = make_controller()
        done = []
        ctrl.submit_read(block_for_bank(0, 0), done.append)
        ctrl.submit_read(block_for_bank(0, 16), done.append)
        events.run_all()
        assert done[1] - done[0] == pytest.approx(142.5)


class TestWritePriorities:
    def test_read_has_priority_over_write(self):
        events, ctrl = make_controller()
        order = []
        # While the bank is busy with a first read, queue a write and a read.
        ctrl.submit_read(block_for_bank(0, 0), lambda t: order.append("r1"))
        ctrl.submit_write(block_for_bank(0, 32), lambda t: order.append("w"))
        ctrl.submit_read(block_for_bank(0, 16), lambda t: order.append("r2"))
        events.run_all()
        assert order == ["r1", "r2", "w"]

    def test_write_issues_when_no_read_for_bank(self):
        events, ctrl = make_controller()
        order = []
        ctrl.submit_read(block_for_bank(1), lambda t: order.append("read"))
        ctrl.submit_write(block_for_bank(0), lambda t: order.append("write"))
        events.run_all()
        assert "write" in order

    def test_eager_blocked_by_same_bank_write(self):
        events, ctrl = make_controller("BE-Mellow+SC")
        order = []
        # Occupy bank 0 with a long op, then queue write + eager behind it.
        ctrl.submit_read(block_for_bank(0, 0), lambda t: order.append("r"))
        ctrl.submit_eager(block_for_bank(0, 48), lambda t: order.append("e"))
        ctrl.submit_write(block_for_bank(0, 32), lambda t: order.append("w"))
        events.run_all()
        assert order == ["r", "w", "e"]

    def test_eager_issues_on_idle_bank(self):
        events, ctrl = make_controller("BE-Mellow+SC")
        done = []
        ctrl.submit_eager(block_for_bank(2), done.append)
        events.run_all()
        assert len(done) == 1
        # Eager writes are always slow: burst + 450 ns pulse.
        assert done[0] == pytest.approx(470.0)


class TestWriteSpeedDecision:
    def test_bank_aware_single_write_is_slow(self):
        events, ctrl = make_controller("B-Mellow+SC")
        ctrl.submit_write(block_for_bank(0))
        events.run_all()
        assert ctrl.stats.writes_issued_slow == 1
        assert ctrl.stats.writes_issued_normal == 0

    def test_bank_aware_two_writes_first_normal(self):
        events, ctrl = make_controller("B-Mellow+SC")
        # Keep the bank busy so both writes are queued together (Figure 5).
        ctrl.submit_read(block_for_bank(0, 0))
        ctrl.submit_write(block_for_bank(0, 32))
        ctrl.submit_write(block_for_bank(0, 64))
        events.run_all()
        # First write sees a second one queued -> normal; the second then
        # is alone -> slow.
        assert ctrl.stats.writes_issued_normal == 1
        assert ctrl.stats.writes_issued_slow == 1

    def test_norm_policy_all_normal(self):
        events, ctrl = make_controller("Norm")
        for i in range(4):
            ctrl.submit_write(block_for_bank(0, 32 * i))
        events.run_all()
        assert ctrl.stats.writes_issued_normal == 4
        assert ctrl.stats.writes_issued_slow == 0

    def test_slow_policy_all_slow(self):
        events, ctrl = make_controller("Slow")
        for i in range(4):
            ctrl.submit_write(block_for_bank(0, 32 * i))
        events.run_all()
        assert ctrl.stats.writes_issued_slow == 4

    def test_wear_quota_forces_slow(self):
        quota = WearQuota(AMAP.num_banks, AMAP.blocks_per_bank)
        events, ctrl = make_controller("Norm+WQ", quota=quota)
        quota.record_wear(0, quota.wear_bound_bank * 100)
        quota.start_period()
        ctrl.submit_write(block_for_bank(0, 0))
        ctrl.submit_write(block_for_bank(0, 32))
        events.run_all()
        assert ctrl.stats.writes_issued_slow == 2

    def test_wear_quota_gate_is_per_bank(self):
        quota = WearQuota(AMAP.num_banks, AMAP.blocks_per_bank)
        events, ctrl = make_controller("Norm+WQ", quota=quota)
        quota.record_wear(0, quota.wear_bound_bank * 100)
        quota.start_period()
        ctrl.submit_write(block_for_bank(1))
        events.run_all()
        assert ctrl.stats.writes_issued_normal == 1


class TestWriteDrain:
    def test_drain_enters_at_high_threshold(self):
        events, ctrl = make_controller(
            "Norm", drain_low=2, drain_high=4, write_queue_entries=4,
        )
        # Saturate bank 0 with a long op so writes pile up.
        ctrl.submit_read(block_for_bank(0, 0))
        for i in range(4):
            ctrl.submit_write(block_for_bank(0, 32 * (i + 1)))
        assert ctrl.drain_mode
        assert ctrl.stats.drain_events == 1
        events.run_all()
        assert not ctrl.drain_mode

    def test_drain_prioritises_writes_over_reads(self):
        events, ctrl = make_controller(
            "Norm", drain_low=1, drain_high=2, write_queue_entries=2,
        )
        order = []
        ctrl.submit_read(block_for_bank(0, 0), lambda t: order.append("r1"))
        ctrl.submit_write(block_for_bank(0, 32), lambda t: order.append("w1"))
        ctrl.submit_write(block_for_bank(0, 64), lambda t: order.append("w2"))
        assert ctrl.drain_mode
        ctrl.submit_read(block_for_bank(0, 16), lambda t: order.append("r2"))
        events.run_all()
        # During drain the queued writes beat the second read.
        assert order.index("w1") < order.index("r2")

    def test_drain_time_recorded(self):
        events, ctrl = make_controller(
            "Norm", drain_low=1, drain_high=2, write_queue_entries=2,
        )
        ctrl.submit_read(block_for_bank(0, 0))
        ctrl.submit_write(block_for_bank(0, 32))
        ctrl.submit_write(block_for_bank(0, 64))
        events.run_all()
        assert ctrl.stats.drain_time_ns > 0

    def test_eager_never_triggers_drain(self):
        events, ctrl = make_controller("BE-Mellow+SC")
        ctrl.submit_read(block_for_bank(0, 0))
        for i in range(16):
            assert ctrl.submit_eager(block_for_bank(0, 32 * (i + 1)))
        assert not ctrl.drain_mode
        assert not ctrl.submit_eager(block_for_bank(0, 600))  # queue full


class TestWriteCancellation:
    def test_read_cancels_cancellable_write(self):
        events, ctrl = make_controller("Slow+SC")
        done = []
        ctrl.submit_write(block_for_bank(0, 32), lambda t: done.append(("w", t)))
        events.run_until(100)          # write in flight (470 ns total)
        ctrl.submit_read(block_for_bank(0, 0), lambda t: done.append(("r", t)))
        events.run_all()
        assert ctrl.stats.cancellations == 1
        kinds = [k for k, _ in done]
        assert kinds == ["r", "w"]     # read overtakes, write re-issues

    def test_non_cancellable_write_blocks_read(self):
        events, ctrl = make_controller("Slow")   # no +SC
        done = []
        ctrl.submit_write(block_for_bank(0, 32), lambda t: done.append(("w", t)))
        events.run_until(100)
        ctrl.submit_read(block_for_bank(0, 0), lambda t: done.append(("r", t)))
        events.run_all()
        assert ctrl.stats.cancellations == 0
        assert [k for k, _ in done] == ["w", "r"]

    def test_nc_policy_cancels_normal_writes(self):
        events, ctrl = make_controller("E-Norm+NC")
        ctrl.submit_write(block_for_bank(0, 32))
        events.run_until(50)           # inside the 170 ns normal write
        ctrl.submit_read(block_for_bank(0, 0))
        events.run_all()
        assert ctrl.stats.cancellations == 1

    def test_cancelled_attempt_records_partial_wear(self):
        events, ctrl = make_controller("Slow+SC")
        ctrl.submit_write(block_for_bank(0, 32))
        events.run_until(155)          # 20 ns burst + 30% of the 450 ns pulse
        ctrl.submit_read(block_for_bank(0, 0))
        events.run_all()
        # Total wear: one cancelled 0.3-pulse + one full slow write.
        record = ctrl.wear.records[0]
        assert record.slow_writes_by_factor[3.0] == pytest.approx(1.3)

    def test_no_cancellation_past_progress_threshold(self):
        """Threshold-based cancellation: a write more than half done is
        allowed to finish (Qureshi et al., HPCA 2010)."""
        events, ctrl = make_controller("Slow+SC")
        done = []
        ctrl.submit_write(block_for_bank(0, 32), lambda t: done.append(("w", t)))
        events.run_until(300)          # 62% through the 450 ns pulse
        ctrl.submit_read(block_for_bank(0, 0), lambda t: done.append(("r", t)))
        events.run_all()
        assert ctrl.stats.cancellations == 0
        assert [k for k, _ in done] == ["w", "r"]

    def test_cancellation_during_burst_no_wear(self):
        events, ctrl = make_controller("Slow+SC")
        ctrl.submit_write(block_for_bank(0, 32))
        events.run_until(10)           # still in the 20 ns data burst
        ctrl.submit_read(block_for_bank(0, 0))
        events.run_all()
        record = ctrl.wear.records[0]
        assert record.slow_writes_by_factor[3.0] == pytest.approx(1.0)

    def test_no_cancellation_during_drain(self):
        events, ctrl = make_controller(
            "Slow+SC", drain_low=1, drain_high=2, write_queue_entries=4,
        )
        # Busy the bank with a read so three writes pile up -> drain mode.
        ctrl.submit_read(block_for_bank(0, 0))
        for i in range(3):
            ctrl.submit_write(block_for_bank(0, 32 * (i + 1)))
        assert ctrl.drain_mode
        # The read finishes at 142.5 ns, the first drain write then runs
        # until ~612 ns with two writes still queued (> drain_low).
        events.run_until(300)
        assert ctrl.drain_mode
        ctrl.submit_read(block_for_bank(0, 16))
        assert ctrl.stats.cancellations == 0


class TestWearAccounting:
    def test_normal_write_wear(self):
        events, ctrl = make_controller("Norm")
        ctrl.submit_write(block_for_bank(2))
        events.run_all()
        assert ctrl.wear.records[2].normal_writes == 1

    def test_slow_write_wear(self):
        events, ctrl = make_controller("Slow")
        ctrl.submit_write(block_for_bank(2))
        events.run_all()
        assert ctrl.wear.records[2].slow_writes_by_factor[3.0] == 1

    def test_quota_sees_wear(self):
        quota = WearQuota(AMAP.num_banks, AMAP.blocks_per_bank)
        events, ctrl = make_controller("Norm+WQ", quota=quota)
        ctrl.submit_write(block_for_bank(1))
        events.run_all()
        assert quota.cumulative_wear[1] == pytest.approx(1.0)


class TestBackpressure:
    def test_submit_write_false_when_full(self):
        events, ctrl = make_controller("Norm", write_queue_entries=2,
                                       drain_low=1, drain_high=2)
        ctrl.submit_read(block_for_bank(0, 0))   # keep the bank busy
        assert ctrl.submit_write(block_for_bank(0, 32))
        assert ctrl.submit_write(block_for_bank(0, 64))
        assert not ctrl.submit_write(block_for_bank(0, 96))

    def test_write_space_waiter_fires(self):
        events, ctrl = make_controller("Norm", write_queue_entries=2,
                                       drain_low=1, drain_high=2)
        ctrl.submit_read(block_for_bank(0, 0))
        ctrl.submit_write(block_for_bank(0, 32))
        ctrl.submit_write(block_for_bank(0, 64))
        fired = []
        ctrl.wait_for_write_space(lambda: fired.append(events.now))
        assert not fired
        events.run_all()
        assert fired

    def test_waiter_fires_immediately_when_space(self):
        events, ctrl = make_controller("Norm")
        fired = []
        ctrl.wait_for_write_space(lambda: fired.append(True))
        assert fired


class TestUtilization:
    def test_busy_fraction(self):
        events, ctrl = make_controller("Norm")
        ctrl.submit_read(block_for_bank(0))
        events.run_all()
        # One bank busy 142.5 ns of a 142.5 ns window, 4 banks total.
        assert ctrl.bank_utilization(142.5) == pytest.approx(0.25)

    def test_policy_requires_quota(self):
        with pytest.raises(ValueError):
            make_controller("Norm+WQ")


class TestPagePolicy:
    def test_open_page_keeps_row(self):
        events, ctrl = make_controller("Norm")
        done = []
        ctrl.submit_read(block_for_bank(0, 0), done.append)
        events.run_all()
        ctrl.submit_read(block_for_bank(0, 1), done.append)
        events.run_all()
        assert done[1] - done[0] == pytest.approx(22.5)   # row hit

    def test_closed_page_precharges_after_read(self):
        events, ctrl = make_controller("Norm", page_policy="closed")
        done = []
        ctrl.submit_read(block_for_bank(0, 0), done.append)
        events.run_all()
        ctrl.submit_read(block_for_bank(0, 1), done.append)  # same row
        events.run_all()
        assert done[1] - done[0] == pytest.approx(142.5)  # full activate

    def test_invalid_page_policy(self):
        with pytest.raises(ValueError):
            make_controller("Norm", page_policy="bogus")


class TestReadScheduler:
    def test_fcfs_serves_in_arrival_order(self):
        events, ctrl = make_controller("Norm")
        order = []
        ctrl.submit_read(block_for_bank(0, 0), lambda t: order.append("warm"))
        # Queue a row-miss (row 2) then a row-hit (row 0) behind it.
        ctrl.submit_read(block_for_bank(0, 32), lambda t: order.append("miss"))
        ctrl.submit_read(block_for_bank(0, 1), lambda t: order.append("hit"))
        events.run_all()
        assert order == ["warm", "miss", "hit"]

    def test_frfcfs_prefers_open_row(self):
        events, ctrl = make_controller("Norm", read_scheduler="frfcfs")
        order = []
        ctrl.submit_read(block_for_bank(0, 0), lambda t: order.append("warm"))
        ctrl.submit_read(block_for_bank(0, 32), lambda t: order.append("miss"))
        ctrl.submit_read(block_for_bank(0, 1), lambda t: order.append("hit"))
        events.run_all()
        # The row-hit to the open row (row 0) overtakes the older miss.
        assert order == ["warm", "hit", "miss"]

    def test_frfcfs_improves_row_hit_rate_end_to_end(self):
        from repro import SimConfig, run_simulation
        fast = dict(workload="milc", warmup_accesses=5000,
                    measure_accesses=12000, llc_size_bytes=256 * 1024,
                    functional_warmup_max=30000)
        fcfs = run_simulation(SimConfig(policy="Norm", **fast))
        frfcfs = run_simulation(SimConfig(policy="Norm",
                                          read_scheduler="frfcfs", **fast))
        def hit_rate(r):
            return r.read_row_hits / max(1, r.reads_issued)
        assert hit_rate(frfcfs) >= hit_rate(fcfs) - 0.01

    def test_invalid_scheduler(self):
        with pytest.raises(ValueError):
            make_controller("Norm", read_scheduler="bogus")
