"""Validation of workload *character*, beyond MPKI.

docs/workloads.md documents per-workload write intensity, dependence and
locality choices; these tests measure them from the traces so profile
edits cannot silently change a workload's nature.
"""

import itertools

import pytest

from repro.memory.address import AddressMap
from repro.workloads.profiles import WORKLOAD_NAMES, get_profile

AMAP = AddressMap()
SAMPLE = 12_000


def sample(name, n=SAMPLE, seed=5):
    return list(itertools.islice(get_profile(name).trace(seed), n))


def write_fraction(records):
    return sum(1 for r in records if r.is_write) / len(records)


def dependence_fraction(records):
    return sum(1 for r in records if r.dependent) / len(records)


def bank_spread(records):
    """Fraction of banks receiving at least 2% of accesses."""
    counts = [0] * AMAP.num_banks
    for r in records:
        counts[AMAP.bank_of(r.block)] += 1
    busy = sum(1 for c in counts if c >= 0.02 * len(records))
    return busy / AMAP.num_banks


def sequentiality(records):
    """Fraction of accesses spatially adjacent (+-2 distinct blocks) to a
    recent access; same-block reuse (e.g. gups' read-modify-write pairs)
    does not count as spatial locality."""
    hits = 0
    recent = []
    for r in records:
        if any(1 <= abs(r.block - b) <= 2 for b in recent):
            hits += 1
        recent.append(r.block)
        if len(recent) > 64:
            recent.pop(0)
    return hits / len(records)


class TestWriteIntensity:
    def test_lbm_is_the_write_monster(self):
        fractions = {name: write_fraction(sample(name))
                     for name in WORKLOAD_NAMES}
        assert fractions["lbm"] >= max(
            f for n, f in fractions.items() if n not in ("lbm", "gups")
        ) - 0.05

    def test_read_dominated_workloads(self):
        for name in ("mcf", "libquantum", "bwaves"):
            assert write_fraction(sample(name)) < 0.35, name

    def test_gups_alternation(self):
        assert write_fraction(sample("gups")) == pytest.approx(0.45, abs=0.1)


class TestDependence:
    def test_mcf_most_dependent(self):
        fractions = {name: dependence_fraction(sample(name))
                     for name in WORKLOAD_NAMES}
        assert fractions["mcf"] == max(fractions.values())
        assert fractions["mcf"] > 0.4

    def test_stream_independent(self):
        assert dependence_fraction(sample("stream")) == 0.0

    def test_gups_updates_pipeline(self):
        # Updates are modeled independent (they can overlap).
        assert dependence_fraction(sample("gups")) < 0.05


class TestLocality:
    def test_streaming_workloads_are_sequential(self):
        for name in ("stream", "lbm", "libquantum"):
            assert sequentiality(sample(name)) > 0.5, name

    def test_random_workloads_are_not(self):
        for name in ("mcf", "gups"):
            assert sequentiality(sample(name)) < 0.3, name


class TestBankSpread:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_every_workload_exercises_most_banks(self, name):
        """Cacheline interleaving spreads every profile across banks -
        the premise of bank-level parallelism (Section VI-H)."""
        assert bank_spread(sample(name)) > 0.8, name
