"""Tests for the Flip-N-Write wear-limiting model."""

import random

import pytest

from repro.endurance.flipnwrite import FlipNWrite


def test_worst_case_guarantee():
    fnw = FlipNWrite(word_bits=32)
    assert fnw.worst_case_fraction == pytest.approx(17 / 32)


def test_sampled_fractions_respect_guarantee():
    fnw = FlipNWrite(rng=random.Random(1))
    for _ in range(500):
        fraction = fnw.sample_line_fraction()
        assert 0.0 <= fraction <= fnw.worst_case_fraction + 1e-9


def test_mean_fraction_near_expected():
    """Random data: E[min(d, W-d)] ~ W/2 - sqrt(W/(2*pi)); plus flip bit."""
    fnw = FlipNWrite(rng=random.Random(2))
    for _ in range(3000):
        fnw.sample_line_fraction()
    # For W=32: expectation ~ (16 - 2.26 + 1)/32 ~ 0.46.
    assert 0.40 < fnw.mean_fraction < 0.50


def test_word_bits_accounting():
    fnw = FlipNWrite(word_bits=64, line_bits=512, rng=random.Random(3))
    assert fnw.words_per_line == 8
    fnw.sample_line_fraction()
    assert fnw.lines_written == 1
    assert fnw.bits_written > 0


def test_invalid_geometry():
    with pytest.raises(ValueError):
        FlipNWrite(word_bits=1)
    with pytest.raises(ValueError):
        FlipNWrite(word_bits=33, line_bits=512)


def test_deterministic_given_seed():
    a = FlipNWrite(rng=random.Random(7))
    b = FlipNWrite(rng=random.Random(7))
    assert [a.sample_line_fraction() for _ in range(10)] == [
        b.sample_line_fraction() for _ in range(10)
    ]


def test_integration_roughly_doubles_lifetime():
    """End-to-end: FNW cuts wear to ~46%, so lifetime ~2x under Norm."""
    from repro import SimConfig, run_simulation
    fast = dict(workload="lbm", policy="Norm", warmup_accesses=6000,
                measure_accesses=10000, llc_size_bytes=256 * 1024)
    plain = run_simulation(SimConfig(**fast))
    fnw = run_simulation(SimConfig(flip_n_write=True, **fast))
    ratio = fnw.lifetime_years / plain.lifetime_years
    assert 1.7 < ratio < 2.6
