"""Unit tests for the deterministic event queue."""

import pytest

from repro.sim.events import EventQueue


def test_events_run_in_time_order():
    eq = EventQueue()
    order = []
    eq.schedule(30, lambda: order.append("c"))
    eq.schedule(10, lambda: order.append("a"))
    eq.schedule(20, lambda: order.append("b"))
    eq.run_all()
    assert order == ["a", "b", "c"]


def test_ties_break_in_insertion_order():
    eq = EventQueue()
    order = []
    for label in "abcde":
        eq.schedule(5, lambda l=label: order.append(l))
    eq.run_all()
    assert order == list("abcde")


def test_now_tracks_event_time():
    eq = EventQueue()
    seen = []
    eq.schedule(42.5, lambda: seen.append(eq.now))
    eq.run_all()
    assert seen == [42.5]
    assert eq.now == 42.5   # simlint: ignore[SIM004] -- exact by construction (clock set from this literal)


def test_schedule_in_is_relative():
    eq = EventQueue()
    seen = []
    eq.schedule(10, lambda: eq.schedule_in(5, lambda: seen.append(eq.now)))
    eq.run_all()
    assert seen == [15]


def test_cannot_schedule_in_the_past():
    eq = EventQueue()
    eq.schedule(10, lambda: None)
    eq.run_all()
    with pytest.raises(ValueError):
        eq.schedule(5, lambda: None)


def test_negative_delay_rejected():
    eq = EventQueue()
    with pytest.raises(ValueError):
        eq.schedule_in(-1, lambda: None)


def test_run_until_stops_at_boundary_inclusive():
    eq = EventQueue()
    hits = []
    eq.schedule(10, lambda: hits.append(10))
    eq.schedule(20, lambda: hits.append(20))
    eq.schedule(30, lambda: hits.append(30))
    eq.run_until(20)
    assert hits == [10, 20]
    assert eq.now == 20   # simlint: ignore[SIM004] -- exact by construction (clock set from this literal)
    assert len(eq) == 1


def test_run_until_advances_now_when_no_events():
    eq = EventQueue()
    eq.run_until(100)
    assert eq.now == 100   # simlint: ignore[SIM004] -- exact by construction (clock set from this literal)


def test_pop_and_run_empty_returns_false():
    eq = EventQueue()
    assert eq.pop_and_run() is False


def test_events_scheduled_during_execution_run():
    eq = EventQueue()
    order = []

    def first():
        order.append("first")
        eq.schedule_in(1, lambda: order.append("second"))

    eq.schedule(0, first)
    eq.run_all()
    assert order == ["first", "second"]


def test_run_all_respects_max_events():
    eq = EventQueue()

    def rearm():
        eq.schedule_in(1, rearm)

    eq.schedule(0, rearm)
    count = eq.run_all(max_events=50)
    assert count == 50


def test_peek_time():
    eq = EventQueue()
    assert eq.peek_time() is None
    eq.schedule(7, lambda: None)
    assert eq.peek_time() == 7
