"""Tests for the bank state machine and rank tFAW limiter."""

import pytest

from repro.memory.bank import Bank, InFlight
from repro.memory.queues import WRITE, Request
from repro.memory.rank import RankFawLimiter


def make_op(start=0.0, finish=100.0, pulse_start=20.0, cancellable=True):
    request = Request(kind=WRITE, block=0, bank=0, rank=0, row=0,
                      arrival_ns=0.0)
    return InFlight(request=request, start_ns=start, finish_ns=finish,
                    pulse_start_ns=pulse_start, cancellable=cancellable)


class TestBank:
    def test_initially_idle_no_open_row(self):
        bank = Bank(0)
        assert bank.is_idle(0.0)
        assert bank.open_row is None

    def test_begin_makes_busy_until_finish(self):
        bank = Bank(0)
        bank.begin(make_op(start=10, finish=110))
        assert not bank.is_idle(50)
        assert bank.is_idle(110)
        assert bank.busy_time_ns == 100   # simlint: ignore[SIM004] -- exact by construction (integer-valued times)

    def test_row_hit_tracking(self):
        bank = Bank(0)
        assert not bank.row_hit(5)
        bank.open_row_for(5)
        assert bank.row_hit(5)
        assert not bank.row_hit(6)

    def test_cancel_frees_bank_and_trims_busy_time(self):
        bank = Bank(0)
        bank.begin(make_op(start=0, finish=100))
        op = bank.cancel(30)
        assert bank.is_idle(30)
        assert bank.in_flight is None
        assert bank.busy_time_ns == pytest.approx(30)   # simlint: ignore[SIM004] -- pytest.approx carries the tolerance
        assert op.request.bank == 0

    def test_cancel_without_operation_raises(self):
        with pytest.raises(RuntimeError):
            Bank(0).cancel(10)

    def test_complete_clears_in_flight(self):
        bank = Bank(0)
        bank.begin(make_op())
        bank.complete()
        assert bank.in_flight is None

    def test_negative_duration_rejected(self):
        bank = Bank(0)
        with pytest.raises(ValueError):
            bank.begin(make_op(start=100, finish=50))


class TestRankFawLimiter:
    def test_allows_up_to_four_activates(self):
        limiter = RankFawLimiter(t_faw_ns=50, max_activates=4)
        for t in (0, 1, 2, 3):
            assert limiter.earliest_activate(t) == t
            limiter.record_activate(t)

    def test_fifth_activate_delayed_to_window_edge(self):
        limiter = RankFawLimiter(t_faw_ns=50, max_activates=4)
        for t in (0, 10, 20, 30):
            limiter.record_activate(t)
        # Oldest activate (t=0) leaves the window at t=50.
        assert limiter.earliest_activate(35) == 50

    def test_window_slides(self):
        limiter = RankFawLimiter(t_faw_ns=50, max_activates=4)
        for t in (0, 10, 20, 30):
            limiter.record_activate(t)
        assert limiter.earliest_activate(60) == 60

    def test_violation_raises(self):
        limiter = RankFawLimiter(t_faw_ns=50, max_activates=2)
        limiter.record_activate(0)
        limiter.record_activate(1)
        with pytest.raises(RuntimeError):
            limiter.record_activate(2)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RankFawLimiter(t_faw_ns=0)
        with pytest.raises(ValueError):
            RankFawLimiter(max_activates=0)
