"""Tests for the workload profiles (Table IV)."""

import itertools

import pytest

from repro.cpu.trace import TraceRecord
from repro.workloads.profiles import WORKLOAD_NAMES, get_profile


def test_all_eleven_paper_workloads_present():
    assert set(WORKLOAD_NAMES) == {
        "leslie3d", "GemsFDTD", "libquantum", "hmmer", "zeusmp",
        "bwaves", "milc", "mcf", "lbm", "stream", "gups",
    }


def test_get_profile_unknown_raises():
    with pytest.raises(KeyError):
        get_profile("nosuch")


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_traces_yield_valid_records(name):
    trace = get_profile(name).trace(seed=3)
    for record in itertools.islice(trace, 500):
        assert isinstance(record, TraceRecord)
        assert record.gap_insts >= 0
        assert record.block >= 0


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_traces_are_deterministic(name):
    profile = get_profile(name)
    a = list(itertools.islice(profile.trace(seed=9), 200))
    b = list(itertools.islice(profile.trace(seed=9), 200))
    assert a == b


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_different_seeds_differ(name):
    profile = get_profile(name)
    a = list(itertools.islice(profile.trace(seed=1), 200))
    b = list(itertools.islice(profile.trace(seed=2), 200))
    assert a != b


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_mean_gap_matches_apki(name):
    profile = get_profile(name)
    n = 20_000
    total_gap = sum(
        r.gap_insts for r in itertools.islice(profile.trace(seed=5), n)
    )
    apki = 1000.0 * n / (total_gap + n)  # accesses per kilo-instruction
    assert apki == pytest.approx(profile.apki, rel=0.15)


def test_mcf_is_dependency_dominated():
    trace = get_profile("mcf").trace(seed=4)
    records = list(itertools.islice(trace, 5000))
    dependent = sum(1 for r in records if r.dependent)
    assert dependent / len(records) > 0.5


def test_stream_write_third():
    trace = get_profile("stream").trace(seed=4)
    records = list(itertools.islice(trace, 9000))
    writes = sum(1 for r in records if r.is_write)
    assert writes / len(records) == pytest.approx(0.34, abs=0.05)


def test_lbm_is_write_heavy():
    trace = get_profile("lbm").trace(seed=4)
    records = list(itertools.islice(trace, 9000))
    writes = sum(1 for r in records if r.is_write)
    assert writes / len(records) > 0.35


def test_gups_alternates_read_write():
    trace = get_profile("gups").trace(seed=4)
    records = list(itertools.islice(trace, 9000))
    writes = sum(1 for r in records if r.is_write)
    assert 0.35 < writes / len(records) < 0.55
