"""Parallel sweep engine + hardened cache: equivalence, concurrency, CLI."""

import json
import logging
import multiprocessing
import os

from repro.experiments.runner import (
    CACHE_SCHEMA_VERSION,
    Runner,
    atomic_write_text,
    cache_clear,
    cache_stats,
    cache_verify,
    default_jobs,
    entry_from_json,
    entry_to_json,
    result_to_dict,
)
from repro.sim.config import SimConfig, digest_for_key
from repro.sim.system import run_simulation

TINY = dict(warmup_accesses=2000, measure_accesses=3000,
            llc_size_bytes=128 * 1024)


def tiny_config(workload="GemsFDTD", **kwargs):
    merged = dict(TINY)
    merged.update(kwargs)
    return SimConfig(workload=workload, **merged)


def tiny_grid():
    return [
        tiny_config(workload=workload, policy=policy)
        for workload in ("GemsFDTD", "lbm")
        for policy in ("Norm", "Slow")
    ]


def _run_one(cache_dir, config):
    """Child-process worker for the concurrent-writer stress test."""
    result = Runner(cache_dir=cache_dir).run(config)
    return result_to_dict(result)


class TestSerialParallelEquivalence:
    def test_identical_results_and_cache_bytes(self, tmp_path):
        grid = tiny_grid()
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = Runner(cache_dir=serial_dir).sweep(grid, jobs=1)
        parallel = Runner(cache_dir=parallel_dir).sweep(grid, jobs=4)
        assert [result_to_dict(r) for r in serial] == \
               [result_to_dict(r) for r in parallel]
        # The caches the two sweeps leave behind are byte-identical.
        serial_files = {p.name: p.read_bytes()
                        for p in serial_dir.glob("*.json")}
        parallel_files = {p.name: p.read_bytes()
                          for p in parallel_dir.glob("*.json")}
        assert serial_files == parallel_files
        assert len(serial_files) == len(grid)

    def test_results_in_input_order(self, tmp_path):
        grid = tiny_grid()
        results = Runner(cache_dir=tmp_path).sweep(grid, jobs=4)
        for config, result in zip(grid, results):
            assert result.workload == config.workload
            assert result.policy == config.policy_name

    def test_duplicate_configs_simulate_once(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        config = tiny_config()
        results = runner.sweep([config, config, config], jobs=2)
        assert runner.simulated == 1
        assert results[0] is results[1] is results[2]


class TestSweepProgress:
    def test_callback_sees_every_run(self, tmp_path):
        grid = tiny_grid()
        events = []
        Runner(cache_dir=tmp_path).sweep(grid, jobs=2,
                                         progress=events.append)
        assert len(events) == len(grid)
        assert sorted(e.completed for e in events) == [1, 2, 3, 4]
        assert all(e.total == len(grid) for e in events)
        assert not any(e.from_cache for e in events)

    def test_cache_hits_flagged(self, tmp_path):
        grid = tiny_grid()
        Runner(cache_dir=tmp_path).sweep(grid, jobs=2)
        events = []
        Runner(cache_dir=tmp_path).sweep(grid, jobs=2,
                                         progress=events.append)
        assert all(e.from_cache for e in events)


class TestConcurrentCache:
    def test_two_processes_same_key_no_corruption(self, tmp_path):
        config = tiny_config()
        with multiprocessing.Pool(2) as pool:
            dicts = pool.starmap(_run_one, [(tmp_path, config)] * 2)
        assert dicts[0] == dicts[1]
        report = cache_verify(tmp_path)
        assert report["ok"] == 1
        assert report["bad"] == []
        # Whatever survived the race is a complete, loadable entry that a
        # fresh runner reads back without simulating.
        fresh = Runner(cache_dir=tmp_path)
        result = fresh.run(config)
        assert fresh.simulated == 0
        assert result_to_dict(result) == dicts[0]

    def test_atomic_write_never_exposes_partial_files(self, tmp_path):
        path = tmp_path / "entry.json"
        payloads = [json.dumps({"payload": str(i) * 4096}) for i in range(20)]
        for payload in payloads:
            atomic_write_text(path, payload)
            assert path.read_text() in payloads
        assert not list(tmp_path.glob("*.tmp"))


class TestCacheHardening:
    def test_truncated_entry_warns_and_resimulates(self, tmp_path, caplog):
        runner = Runner(cache_dir=tmp_path)
        config = tiny_config()
        runner.run(config)
        path = runner._path_for(config)
        path.write_text(path.read_text()[:40])    # torn write
        fresh = Runner(cache_dir=tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.experiments.runner"):
            fresh.run(config)
        assert fresh.simulated == 1
        assert any("re-simulating" in r.message for r in caplog.records)

    def test_schema_drift_warns_and_resimulates(self, tmp_path, caplog):
        runner = Runner(cache_dir=tmp_path)
        config = tiny_config()
        runner.run(config)
        path = runner._path_for(config)
        entry = json.loads(path.read_text())
        entry["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        fresh = Runner(cache_dir=tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.experiments.runner"):
            fresh.run(config)
        assert fresh.simulated == 1
        assert any("re-simulating" in r.message for r in caplog.records)

    def test_preversioning_entry_resimulates(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        config = tiny_config()
        result = runner.run(config)
        path = runner._path_for(config)
        path.write_text(json.dumps(result_to_dict(result)))   # old format
        fresh = Runner(cache_dir=tmp_path)
        fresh.run(config)
        assert fresh.simulated == 1

    def test_entry_roundtrip(self):
        config = tiny_config(policy="Slow")
        result = run_simulation(config)
        restored = entry_from_json(entry_to_json(config, result))
        assert result_to_dict(restored) == result_to_dict(result)

    def test_digest_stable_across_json_roundtrip(self):
        key = tiny_config().cache_key()
        assert digest_for_key(key) == \
               digest_for_key(json.loads(json.dumps(list(key))))


class TestCacheMaintenance:
    def test_stats_verify_clear(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        runner.sweep([tiny_config(policy="Norm"), tiny_config(policy="Slow")],
                     jobs=1)
        stats = cache_stats(tmp_path)
        assert stats["entries"] == 2
        assert stats["valid"] == 2
        assert stats["invalid"] == 0
        (tmp_path / "junk.json").write_text("{broken")
        stats = cache_stats(tmp_path)
        assert stats["invalid"] == 1
        report = cache_verify(tmp_path)
        assert report["ok"] == 2
        assert len(report["bad"]) == 1
        assert cache_clear(tmp_path) == 3
        assert cache_stats(tmp_path)["entries"] == 0

    def test_verify_flags_renamed_entry(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        config = tiny_config()
        runner.run(config)
        path = runner._path_for(config)
        path.rename(tmp_path / ("0" * 24 + ".json"))
        report = cache_verify(tmp_path)
        assert report["ok"] == 0
        assert "digest mismatch" in report["bad"][0]["error"]

    def test_missing_dir_is_empty(self, tmp_path):
        missing = tmp_path / "nope"
        assert cache_stats(missing)["entries"] == 0
        assert cache_verify(missing)["bad"] == []
        assert cache_clear(missing) == 0


class TestJobsEnv:
    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_default_jobs_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == (os.cpu_count() or 1)

    def test_jobs_floor_is_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1


class TestCacheCli:
    def test_cache_stats_command(self, tmp_path, capsys):
        from repro.cli import main
        Runner(cache_dir=tmp_path).run(tiny_config())
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out

    def test_cache_verify_command_bad_entry(self, tmp_path, capsys):
        from repro.cli import main
        (tmp_path / "bad.json").write_text("{oops")
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 1
        assert "BAD" in capsys.readouterr().err

    def test_cache_clear_command(self, tmp_path, capsys):
        from repro.cli import main
        Runner(cache_dir=tmp_path).run(tiny_config())
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert not list(tmp_path.glob("*.json"))

    def test_sweep_jobs_flag(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main([
            "sweep", "--workloads", "hmmer", "--policies", "Norm,Slow",
            "--scale", "0.05", "--jobs", "2",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.count("hmmer") >= 2
        assert "[2/2]" in captured.err
