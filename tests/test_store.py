"""Storage backends: conformance, compat, eviction, URLs, sync, equivalence.

One shared conformance class runs the identical contract against every
backend; the rest pins what actually matters operationally - pre-store
cache directories keep reading, digests never move, ``cache sync``
round-trips bit-identically, and a sqlite-backed parallel sweep matches
a serial file-backed one.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.endurance.wear import BankWearRecord
from repro.experiments.runner import Runner
from repro.sim.config import SimConfig
from repro.sim.stats import RunResult
from repro.sim.system import run_simulation
from repro.store import (
    EvictionPolicy,
    FileStore,
    MemoryStore,
    SQLiteStore,
    StoreURLError,
    TieredStore,
    atomic_write_text,
    cache_stats,
    entry_from_json,
    entry_to_json,
    resolve_store,
    result_to_dict,
    store_from_url,
    sync_stores,
)
from repro.telemetry import MANIFEST_NAME

BACKENDS = ["file", "sqlite", "memory", "tiered"]

TINY = dict(warmup_accesses=2000, measure_accesses=3000,
            llc_size_bytes=128 * 1024)

DIGEST = "ab" * 12
OTHER = "cd" * 12


def tiny_config(workload="GemsFDTD", **kwargs):
    merged = dict(TINY)
    merged.update(kwargs)
    return SimConfig(workload=workload, **merged)


def make_store(kind, tmp_path, policy=None, clock=None):
    if kind == "file":
        return FileStore(tmp_path / "cache", policy=policy, clock=clock)
    if kind == "sqlite":
        return SQLiteStore(tmp_path / "cache.db", policy=policy, clock=clock)
    if kind == "memory":
        return MemoryStore(policy=policy, clock=clock)
    if kind == "tiered":
        return TieredStore(MemoryStore(clock=clock),
                           SQLiteStore(tmp_path / "remote.db", clock=clock))
    raise AssertionError(kind)


def make_bundle(marker=b"x"):
    return {
        "metrics.json": b'{"m": 1}' + marker,
        "trace.jsonl": b'{"e": 1}\n',
        MANIFEST_NAME: b'{"files": ["metrics.json", "trace.jsonl"]}',
    }


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    s = make_store(request.param, tmp_path)
    yield s
    s.close()


class TestConformance:
    """The identical contract, enforced against every backend."""

    def test_get_missing_is_none_and_counts_a_miss(self, store):
        assert store.get(DIGEST) is None
        assert store.counters.gets == 1
        assert store.counters.misses == 1
        assert store.counters.hits == 0

    def test_put_get_roundtrip(self, store):
        store.put(DIGEST, b"payload")
        assert store.get(DIGEST) == b"payload"
        assert store.exists(DIGEST)
        assert not store.exists(OTHER)
        assert store.counters.puts == 1
        assert store.counters.hits == 1

    def test_overwrite_last_write_wins(self, store):
        store.put(DIGEST, b"first")
        store.put(DIGEST, b"second")
        assert store.get(DIGEST) == b"second"

    def test_delete(self, store):
        store.put(DIGEST, b"data")
        assert store.delete(DIGEST) is True
        assert store.delete(DIGEST) is False
        assert store.get(DIGEST) is None
        assert store.counters.deletes == 1

    def test_scan_reports_entries_and_bundles(self, store):
        store.put(DIGEST, b"data")
        store.put_bundle(OTHER, make_bundle())
        found = {(e.kind, e.digest): e for e in store.scan()}
        assert ("entry", DIGEST) in found
        assert ("bundle", OTHER) in found
        assert found[("entry", DIGEST)].size == len(b"data")

    def test_scan_order_is_deterministic(self, store):
        store.put(OTHER, b"b")
        store.put(DIGEST, b"a")
        digests = [e.digest for e in store.scan()]
        assert digests == sorted(digests)

    def test_stat_summary(self, store):
        store.put(DIGEST, b"12345")
        store.put_bundle(OTHER, make_bundle())
        stat = store.stat()
        assert stat.entries == 1
        assert stat.bundles == 1
        assert stat.entry_bytes == 5
        assert stat.kind == store.kind

    def test_bundle_roundtrip(self, store):
        files = make_bundle()
        assert not store.has_bundle(DIGEST)
        store.put_bundle(DIGEST, files)
        assert store.has_bundle(DIGEST)
        assert store.get_bundle(DIGEST) == files
        assert store.delete_bundle(DIGEST) is True
        assert store.delete_bundle(DIGEST) is False
        assert store.get_bundle(DIGEST) is None

    def test_bundle_requires_manifest(self, store):
        files = make_bundle()
        del files[MANIFEST_NAME]
        with pytest.raises(ValueError, match="manifest"):
            store.put_bundle(DIGEST, files)
        assert not store.has_bundle(DIGEST)

    def test_clear_removes_everything(self, store):
        store.put(DIGEST, b"data")
        store.put_bundle(OTHER, make_bundle())
        assert store.clear() == 2
        assert store.scan() == []

    def test_description_roundtrips_through_parser(self, store):
        rebuilt = store_from_url(store.description)
        try:
            assert rebuilt.kind == store.kind
        finally:
            rebuilt.close()

    def test_location_mentions_the_digest(self, store):
        assert DIGEST in store.location(DIGEST)


class TestFileStoreCompat:
    """Pre-store ``.repro_cache`` directories must read back unchanged."""

    def test_reads_entries_written_by_the_old_layout(self, tmp_path):
        config = tiny_config()
        result = run_simulation(config)
        # The historic write path: <digest>.json via atomic rename.
        atomic_write_text(tmp_path / f"{config.cache_digest()}.json",
                          entry_to_json(config, result))
        fresh = Runner(cache_dir=tmp_path)
        again = fresh.run(config)
        assert fresh.simulated == 0
        assert result_to_dict(again) == result_to_dict(result)

    def test_runner_writes_the_same_layout(self, tmp_path):
        config = tiny_config()
        runner = Runner(cache_dir=tmp_path)
        result = runner.run(config)
        path = tmp_path / f"{config.cache_digest()}.json"
        assert path.is_file()
        assert entry_from_json(path.read_text()).ipc == result.ipc

    def test_entry_and_bundle_paths(self, tmp_path):
        s = FileStore(tmp_path)
        assert s.entry_path(DIGEST) == tmp_path / f"{DIGEST}.json"
        assert s.bundle_path(DIGEST) == tmp_path / f"{DIGEST}.telemetry"

    def test_non_filesystem_backends_expose_no_paths(self, tmp_path):
        for s in (SQLiteStore(tmp_path / "c.db"), MemoryStore()):
            assert s.entry_path(DIGEST) is None
            assert s.bundle_path(DIGEST) is None
            s.close()


PINNED_DIGESTS = {
    # Recorded across earlier PRs; a store-layer change moving any of
    # these would orphan every existing cache in every backend.
    ("lbm", "Norm", 1, 16, 4): "244de89cfa2ec43abc490663",
    ("hmmer", "BE-Mellow+SC+WQ", 7, 16, 4): "49a5aa88013834afd88743d5",
    ("gups", "Slow+SC", 1, 8, 2): "7fd6e25b53191e2e57b364dc",
}


class TestDigestStability:
    @pytest.mark.parametrize("key", sorted(PINNED_DIGESTS))
    def test_pinned_digests_unmoved(self, key):
        workload, policy, seed, banks, ranks = key
        config = SimConfig(workload=workload, policy=policy, seed=seed,
                           num_banks=banks, num_ranks=ranks)
        assert config.cache_digest() == PINNED_DIGESTS[key]

    def test_scaled_digest_unmoved(self):
        small = SimConfig("hmmer", policy="Norm").scaled(0.05)
        assert small.cache_digest() == "a1c5ae8b70ec20ac7a1fbd05"

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_backend_choice_never_enters_the_digest(self, kind, tmp_path):
        config = tiny_config()
        runner = Runner(store=make_store(kind, tmp_path))
        runner.run(config)
        assert runner.store.exists(config.cache_digest())
        runner.store.close()


class TestEviction:
    def test_ttl_expires_old_entries(self, tmp_path):
        now = [1000.0]
        s = MemoryStore(policy=EvictionPolicy(ttl=60.0),
                        clock=lambda: now[0])
        s.put(DIGEST, b"old")
        now[0] += 120.0
        s.put(OTHER, b"new")     # put triggers eviction
        assert s.get(DIGEST) is None
        assert s.get(OTHER) == b"new"
        assert s.counters.evictions == 1

    def test_max_entries_evicts_least_recently_used(self, tmp_path):
        now = [0.0]
        s = SQLiteStore(tmp_path / "lru.db",
                        policy=EvictionPolicy(max_entries=2),
                        clock=lambda: now[0])
        digests = ["aa" * 12, "bb" * 12, "cc" * 12]
        for d in digests[:2]:
            now[0] += 1.0
            s.put(d, b"x")
        now[0] += 1.0
        s.get(digests[0])          # refresh: aa is now most recently used
        now[0] += 1.0
        s.put(digests[2], b"x")    # bb is the LRU victim
        assert s.exists(digests[0])
        assert not s.exists(digests[1])
        assert s.exists(digests[2])
        assert s.counters.evictions == 1
        s.close()

    def test_max_bytes_trims_until_it_fits(self, tmp_path):
        now = [0.0]
        s = MemoryStore(policy=EvictionPolicy(max_bytes=10),
                        clock=lambda: now[0])
        now[0] += 1.0
        s.put(DIGEST, b"12345678")
        now[0] += 1.0
        s.put(OTHER, b"12345678")
        assert not s.exists(DIGEST)
        assert s.exists(OTHER)

    def test_eviction_takes_the_bundle_with_the_entry(self, tmp_path):
        now = [1000.0]
        s = FileStore(tmp_path / "c", policy=EvictionPolicy(max_entries=1),
                      clock=lambda: now[0])
        s.put(DIGEST, b"x")
        s.put_bundle(DIGEST, make_bundle())
        # Age the entry below the newcomer (file mtimes are real time).
        old = 1.0
        os.utime(s.entry_path(DIGEST), (old, old))
        s.put(OTHER, b"y")
        assert not s.exists(DIGEST)
        assert not s.has_bundle(DIGEST)
        assert s.exists(OTHER)

    def test_unbounded_policy_is_rejected_values(self):
        with pytest.raises(ValueError):
            EvictionPolicy(ttl=-1.0)
        with pytest.raises(ValueError):
            EvictionPolicy(max_entries=-1)
        assert not EvictionPolicy().bounded
        assert EvictionPolicy(ttl=5.0).bounded


class TestURLGrammar:
    def test_file_url(self, tmp_path):
        s = store_from_url(f"file:{tmp_path}/c")
        assert isinstance(s, FileStore)
        assert s.root == tmp_path / "c"

    def test_sqlite_url_and_default_path(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        s = store_from_url("sqlite:")
        assert isinstance(s, SQLiteStore)
        assert s.path.name == SQLiteStore.DEFAULT_PATH
        s.close()

    def test_memory_url(self):
        assert isinstance(store_from_url("memory:"), MemoryStore)

    def test_memory_url_rejects_a_path(self):
        with pytest.raises(StoreURLError):
            store_from_url("memory:somewhere")

    def test_tiered_url(self, tmp_path):
        s = store_from_url(f"tiered:memory:|sqlite:{tmp_path}/r.db")
        assert isinstance(s, TieredStore)
        assert isinstance(s.local, MemoryStore)
        assert isinstance(s.remote, SQLiteStore)
        s.close()

    def test_tiered_does_not_nest(self, tmp_path):
        with pytest.raises(StoreURLError, match="nest"):
            store_from_url("tiered:memory:|tiered:memory:|memory:")

    def test_unknown_scheme(self):
        with pytest.raises(StoreURLError, match="unknown store scheme"):
            store_from_url("redis:localhost")

    def test_missing_scheme(self):
        with pytest.raises(StoreURLError, match="scheme"):
            store_from_url(".repro_cache")

    def test_policy_params(self, tmp_path):
        s = store_from_url(
            f"file:{tmp_path}/c?ttl=60&max_entries=10&max_bytes=4096")
        assert s.policy == EvictionPolicy(ttl=60.0, max_entries=10,
                                          max_bytes=4096)

    def test_unknown_param_rejected(self, tmp_path):
        with pytest.raises(StoreURLError, match="unknown store parameter"):
            store_from_url(f"file:{tmp_path}/c?shards=4")

    def test_bad_param_value_rejected(self, tmp_path):
        with pytest.raises(StoreURLError, match="bad value"):
            store_from_url(f"file:{tmp_path}/c?ttl=soon")


class TestResolvePrecedence:
    def test_no_cache_env_wins_over_everything(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_URL", f"sqlite:{tmp_path}/c.db")
        s = resolve_store(cache_dir=tmp_path, url=f"file:{tmp_path}/c")
        assert isinstance(s, MemoryStore)

    def test_explicit_url_beats_cache_dir(self, tmp_path):
        s = resolve_store(cache_dir=tmp_path / "dir",
                          url=f"sqlite:{tmp_path}/c.db")
        assert isinstance(s, SQLiteStore)
        s.close()

    def test_cache_dir_beats_env_url(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_URL", f"sqlite:{tmp_path}/c.db")
        s = resolve_store(cache_dir=tmp_path / "dir")
        assert isinstance(s, FileStore)
        assert s.root == tmp_path / "dir"

    def test_env_url_beats_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_URL", f"sqlite:{tmp_path}/c.db")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "dir"))
        s = resolve_store()
        assert isinstance(s, SQLiteStore)
        s.close()

    def test_env_dir_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_URL", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "dir"))
        s = resolve_store()
        assert isinstance(s, FileStore)
        assert s.root == tmp_path / "dir"

    def test_maintenance_ignores_no_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        s = resolve_store(cache_dir=tmp_path, respect_no_cache=False)
        assert isinstance(s, FileStore)

    def test_runner_under_no_cache_uses_memory_store(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        runner = Runner(cache_dir=tmp_path)
        assert isinstance(runner.store, MemoryStore)
        runner.run(tiny_config())
        assert not list(tmp_path.glob("*.json"))
        # The no-cache path is the same code path: memoisation still works.
        runner.run(tiny_config())
        assert runner.simulated == 1
        assert runner.cache_hits == 1


class TestSync:
    def test_file_to_sqlite_to_file_is_byte_identical(self, tmp_path):
        src = FileStore(tmp_path / "src")
        runner = Runner(store=src)
        configs = [tiny_config(policy="Norm"), tiny_config(policy="Slow")]
        runner.sweep(configs, jobs=1)
        src.put_bundle(DIGEST, make_bundle())

        hop = SQLiteStore(tmp_path / "hop.db")
        report = sync_stores(src, hop)
        assert report.entries_copied == 2
        assert report.bundles_copied == 1

        back = FileStore(tmp_path / "roundtrip")
        sync_stores(hop, back)
        for config in configs:
            digest = config.cache_digest()
            assert back.get(digest) == src.get(digest)
        assert back.get_bundle(DIGEST) == src.get_bundle(DIGEST)

        a, b = cache_stats(src), cache_stats(back)
        for key in ("entries", "total_bytes", "valid", "invalid",
                    "schema_versions", "telemetry_bundles"):
            assert a[key] == b[key], key
        hop.close()

    def test_sync_is_idempotent(self, tmp_path):
        src = MemoryStore()
        src.put(DIGEST, b"data")
        src.put_bundle(OTHER, make_bundle())
        dst = SQLiteStore(tmp_path / "dst.db")
        sync_stores(src, dst)
        again = sync_stores(src, dst)
        assert again.entries_copied == 0
        assert again.bundles_copied == 0
        assert again.entries_skipped == 1
        assert again.bundles_skipped == 1
        dst.close()

    def test_synced_cache_serves_hits(self, tmp_path):
        config = tiny_config()
        warm = Runner(cache_dir=tmp_path / "warm")
        result = warm.run(config)
        db = SQLiteStore(tmp_path / "moved.db")
        sync_stores(FileStore(tmp_path / "warm"), db)
        cold = Runner(store=db)
        again = cold.run(config)
        assert cold.simulated == 0
        assert result_to_dict(again) == result_to_dict(result)
        db.close()


class TestCrossBackendEquivalence:
    def test_all_backends_yield_identical_results_and_bytes(self, tmp_path):
        config = tiny_config(policy="BE-Mellow+SC")
        digest = config.cache_digest()
        dicts, blobs = [], []
        for kind in BACKENDS:
            s = make_store(kind, tmp_path / kind)
            runner = Runner(store=s)
            dicts.append(result_to_dict(runner.run(config)))
            blobs.append(s.get(digest))
            s.close()
        assert all(d == dicts[0] for d in dicts)
        assert all(b == blobs[0] for b in blobs)

    def test_hit_counting_is_backend_independent(self, tmp_path):
        grid = [tiny_config(policy=p) for p in ("Norm", "Slow")]
        for kind in BACKENDS:
            s = make_store(kind, tmp_path / kind)
            first = Runner(store=s)
            first.sweep(grid, jobs=1)
            assert (first.simulated, first.cache_hits) == (2, 0), kind
            second = Runner(store=s)
            second.sweep(grid, jobs=1)
            assert (second.simulated, second.cache_hits) == (0, 2), kind
            s.close()

    def test_parallel_sqlite_sweep_matches_serial_file_sweep(self, tmp_path):
        grid = [
            tiny_config(workload=workload, policy=policy)
            for workload in ("GemsFDTD", "lbm")
            for policy in ("Norm", "Slow")
        ]
        serial = Runner(cache_dir=tmp_path / "file").sweep(grid, jobs=1)
        db = SQLiteStore(tmp_path / "par.db")
        parallel = Runner(store=db).sweep(grid, jobs=8)
        assert ([result_to_dict(r) for r in parallel]
                == [result_to_dict(r) for r in serial])
        db.close()


class TestRunnerTelemetryAcrossBackends:
    def test_sqlite_bundle_ingest_and_export(self, tmp_path):
        db_path = tmp_path / "t.db"
        config = tiny_config()
        runner = Runner(store=SQLiteStore(db_path))
        result, bundle_dir = runner.run_traced(config)
        assert runner.store.has_bundle(config.cache_digest())
        assert (bundle_dir / MANIFEST_NAME).is_file()
        runner.store.close()

        # A fresh process: result *and* bundle come back from the store.
        fresh = Runner(store=SQLiteStore(db_path))
        again, exported = fresh.run_traced(config)
        assert fresh.simulated == 0
        assert result_to_dict(again) == result_to_dict(result)
        assert (exported / MANIFEST_NAME).is_file()
        assert ((exported / "metrics.json").read_bytes()
                == (bundle_dir / "metrics.json").read_bytes())
        fresh.store.close()

    def test_corrupt_store_entry_resimulates(self, tmp_path):
        config = tiny_config()
        db = SQLiteStore(tmp_path / "c.db")
        Runner(store=db).run(config)
        db.put(config.cache_digest(), b"{not json")
        fresh = Runner(store=db)
        fresh.run(config)
        assert fresh.simulated == 1
        db.close()


# -- codec round-trip property ------------------------------------------

finite = st.floats(allow_nan=False, allow_infinity=False)
counts = st.integers(min_value=0, max_value=2**48)


def _wear(normal, slow):
    record = BankWearRecord(normal_writes=normal)
    record.slow_writes_by_factor = slow
    return record


wear_records = st.lists(
    st.builds(
        _wear,
        counts,
        st.dictionaries(
            st.floats(min_value=1.0, max_value=64.0, allow_nan=False),
            counts, max_size=3),
    ),
    max_size=3,
)

_FIELD_STRATEGIES = {
    "str": st.text(max_size=12),
    "int": counts,
    "float": finite,
    "bool": st.booleans(),
    "List[float]": st.lists(finite, max_size=6),
    "List[BankWearRecord]": wear_records,
}


def _result_strategy():
    from dataclasses import fields
    return st.fixed_dictionaries({
        f.name: _FIELD_STRATEGIES[f.type] for f in fields(RunResult)
    }).map(lambda kw: RunResult(**kw))


class TestCodecProperty:
    @given(result=_result_strategy())
    @settings(max_examples=50, deadline=None)
    def test_entry_roundtrip_is_exact(self, result):
        config = tiny_config()
        restored = entry_from_json(entry_to_json(config, result))
        assert result_to_dict(restored) == result_to_dict(result)

    @given(result=_result_strategy())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_survives_a_store_hop(self, result):
        config = tiny_config()
        store = MemoryStore()
        store.put(config.cache_digest(),
                  entry_to_json(config, result).encode("utf-8"))
        data = store.get(config.cache_digest())
        restored = entry_from_json(data.decode("utf-8"))
        assert json.loads(json.dumps(result_to_dict(restored))) \
            == result_to_dict(result)


class TestServeMetricsExposure:
    def test_store_counters_surface_on_metrics(self):
        from repro.serve.server import ReproServer
        runner = Runner(store=MemoryStore())
        server = ReproServer(runner=runner)
        runner.store.get(DIGEST)        # one miss
        snapshot = server._metrics_snapshot()
        assert snapshot["gauges"]["store.memory.gets"] == 1
        assert snapshot["gauges"]["store.memory.misses"] == 1
        assert snapshot["gauges"]["store.memory.hits"] == 0
        for name in ("puts", "deletes", "evictions"):
            assert snapshot["gauges"][f"store.memory.{name}"] == 0
