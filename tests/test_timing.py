"""Tests for Table II timing constants."""

import pytest

from repro.memory.timing import MemoryTiming


def test_default_table_ii_values():
    timing = MemoryTiming()
    assert timing.t_rcd_ns == 120   # simlint: ignore[SIM004] -- Table II constants, exact by definition
    assert timing.t_cas_ns == 2.5   # simlint: ignore[SIM004] -- Table II constants, exact by definition
    assert timing.t_wp_normal_ns == 150   # simlint: ignore[SIM004] -- Table II constants, exact by definition
    assert timing.burst_ns == 20   # simlint: ignore[SIM004] -- Table II constants, exact by definition
    assert timing.slow_factor == 3.0


@pytest.mark.parametrize("factor,expected", [
    (1.5, 225), (2.0, 300), (3.0, 450),
])
def test_slow_write_pulse_ladder(factor, expected):
    """Table II: 90/120/180 memory cycles for 1.5/2.0/3.0x writes."""
    timing = MemoryTiming.with_slow_factor(factor)
    assert timing.write_pulse_ns(True) == pytest.approx(expected)
    assert timing.write_pulse_ns(False) == 150


def test_write_factor():
    timing = MemoryTiming()
    assert timing.write_factor(False) == 1.0
    assert timing.write_factor(True) == 3.0


def test_read_service_row_hit_vs_miss():
    timing = MemoryTiming()
    hit = timing.read_service_ns(row_hit=True)
    miss = timing.read_service_ns(row_hit=False)
    assert hit == pytest.approx(22.5)          # tCAS + burst
    assert miss == pytest.approx(142.5)        # + tRCD


def test_write_service_includes_burst():
    timing = MemoryTiming()
    assert timing.write_service_ns(False) == pytest.approx(170)
    assert timing.write_service_ns(True) == pytest.approx(470)


def test_invalid_slow_factor():
    with pytest.raises(ValueError):
        MemoryTiming.with_slow_factor(0.5)
