"""Documentation anti-rot checks: referenced artifacts must exist."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent

REQUIRED_DOCS = [
    "README.md", "DESIGN.md", "EXPERIMENTS.md",
    "docs/architecture.md", "docs/mechanisms.md", "docs/workloads.md",
    "docs/extending.md", "docs/observability.md", "docs/serving.md",
    "docs/storage.md", "docs/checkpointing.md",
]


@pytest.mark.parametrize("name", REQUIRED_DOCS)
def test_required_docs_exist_and_are_substantial(name):
    path = ROOT / name
    assert path.exists(), name
    assert len(path.read_text()) > 800, f"{name} looks stubbed"


def _module_references(text):
    """repro.x.y dotted references found in a document."""
    return set(re.findall(r"`(repro(?:\.\w+)+)`", text))


@pytest.mark.parametrize("name", REQUIRED_DOCS)
def test_module_references_resolve(name):
    import importlib
    text = (ROOT / name).read_text()
    for ref in _module_references(text):
        # Strip trailing attribute references (repro.core.decision.choose_x).
        parts = ref.split(".")
        for depth in range(len(parts), 1, -1):
            candidate = ".".join(parts[:depth])
            try:
                importlib.import_module(candidate)
                break
            except ImportError:
                continue
        else:
            pytest.fail(f"{name}: dangling module reference {ref}")


def test_readme_examples_exist():
    text = (ROOT / "README.md").read_text()
    for match in re.findall(r"examples/(\w+\.py)", text):
        assert (ROOT / "examples" / match).exists(), match


def test_design_lists_every_figure_bench():
    text = (ROOT / "DESIGN.md").read_text()
    for bench in (ROOT / "benchmarks").glob("test_fig*.py"):
        assert bench.name in text, f"DESIGN.md missing {bench.name}"


def test_experiments_covers_all_exhibits():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for exhibit in ("Figure 1", "Figure 2", "Figure 3", "Table IV",
                    "Figure 10", "Figure 11", "Figure 12", "Figure 13",
                    "Figure 14", "Figure 15", "Figure 16", "Figure 17",
                    "Figure 18", "Figure 19"):
        assert exhibit in text, f"EXPERIMENTS.md missing {exhibit}"


def test_design_documents_the_substitutions():
    text = (ROOT / "DESIGN.md").read_text()
    for substituted in ("gem5", "NVMain", "nvsim", "SPEC"):
        assert substituted in text
