"""Tests for SimConfig identity, scaling and policy plumbing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policies import parse_policy
from repro.sim.config import SimConfig


def test_cache_key_stable():
    a = SimConfig(workload="lbm")
    b = SimConfig(workload="lbm")
    assert a.cache_key() == b.cache_key()


@pytest.mark.parametrize("field,value", [
    ("policy", "Slow+SC"),
    ("slow_factor", 2.0),
    ("num_banks", 8),
    ("expo_factor", 1.5),
    ("seed", 2),
    ("eager_selector", "deadblock"),
    ("flip_n_write", True),
    ("dram_buffer_entries", 64),
    ("page_policy", "closed"),
    ("read_scheduler", "frfcfs"),
    ("cancel_threshold", 0.8),
    ("target_lifetime_years", 4.0),
])
def test_cache_key_sensitive_to_every_knob(field, value):
    base = SimConfig(workload="lbm")
    kwargs = {field: value}
    if field == "num_banks":
        kwargs["num_ranks"] = 2
    changed = SimConfig(workload="lbm", **kwargs)
    assert base.cache_key() != changed.cache_key(), field


def test_write_policy_inherits_slow_factor():
    config = SimConfig(workload="lbm", policy="Slow", slow_factor=2.0)
    assert config.write_policy.slow_factor == 2.0


def test_write_policy_object_passthrough():
    policy = parse_policy("B-Mellow+SC")
    config = SimConfig(workload="lbm", policy=policy)
    assert config.write_policy.bank_aware
    assert config.policy_name == "B-Mellow+SC"


def test_policy_object_slow_factor_override():
    policy = parse_policy("Slow")
    config = SimConfig(workload="lbm", policy=policy, slow_factor=1.5)
    assert config.write_policy.slow_factor == 1.5


def test_invalid_ranks():
    with pytest.raises(ValueError):
        SimConfig(workload="lbm", num_banks=6, num_ranks=4)


def test_scaled_floors():
    tiny = SimConfig(workload="lbm").scaled(0.0001)
    assert tiny.warmup_accesses >= 1000
    assert tiny.measure_accesses >= 2000


def test_scaled_rejects_nonpositive():
    with pytest.raises(ValueError):
        SimConfig(workload="lbm").scaled(0)


@given(fraction=st.floats(min_value=0.01, max_value=1.0))
@settings(max_examples=30)
def test_scaled_is_monotone(fraction):
    base = SimConfig(workload="lbm")
    scaled = base.scaled(fraction)
    assert scaled.measure_accesses <= base.measure_accesses
    assert scaled.warmup_accesses <= base.warmup_accesses
