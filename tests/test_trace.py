"""Tests for trace records and replay."""

import pytest

from repro.cpu.trace import TraceRecord, replay


def test_valid_record():
    r = TraceRecord(gap_insts=10, block=5, is_write=False, dependent=True)
    assert r.gap_insts == 10


def test_negative_gap_rejected():
    with pytest.raises(ValueError):
        TraceRecord(gap_insts=-1, block=0, is_write=False)


def test_negative_block_rejected():
    with pytest.raises(ValueError):
        TraceRecord(gap_insts=0, block=-1, is_write=False)


def test_dependent_store_rejected():
    with pytest.raises(ValueError):
        TraceRecord(gap_insts=0, block=0, is_write=True, dependent=True)


def test_replay_cycles():
    records = [TraceRecord(1, 0, False), TraceRecord(2, 1, True)]
    out = list(replay(records, repeats=3))
    assert len(out) == 6
    assert out[0] == out[2] == out[4]


def test_replay_consumes_iterables():
    gen = (TraceRecord(i, i, False) for i in range(3))
    out = list(replay(gen, repeats=2))
    assert len(out) == 6
