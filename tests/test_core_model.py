"""Focused tests for the SimpleCore timing model."""

import pytest

from repro.cache.llc import LastLevelCache
from repro.core.policies import parse_policy
from repro.cpu.core import SimpleCore
from repro.cpu.trace import TraceRecord
from repro.endurance.wear import WearTracker
from repro.memory.address import AddressMap
from repro.memory.controller import MemoryController
from repro.sim.events import EventQueue

AMAP = AddressMap(num_banks=4, num_ranks=1, capacity_bytes=64 * 1024 * 1024)


def build(trace, base_cpi=0.5, mlp=4, policy="Norm"):
    events = EventQueue()
    llc = LastLevelCache(size_bytes=64 * 1024, assoc=4)
    controller = MemoryController(
        events=events, policy=parse_policy(policy), address_map=AMAP,
        wear=WearTracker(AMAP.num_banks, AMAP.blocks_per_bank),
    )
    core = SimpleCore(events, llc, controller, iter(trace),
                      base_cpi=base_cpi, mlp=mlp)
    return events, core, controller


def test_pure_compute_runs_at_base_cpi():
    """No memory: elapsed time == instructions * base_cpi * clk."""
    trace = [TraceRecord(1000, 0, False)]    # one access after 1000 insts
    events, core, _ = build(trace, base_cpi=0.5)
    core.start()
    events.run_all()
    assert core.instructions_retired == 1000
    # The gap alone takes 1000 * 0.5 * 0.5ns = 250 ns.
    assert events.now >= 250.0


def test_independent_misses_overlap_up_to_mlp():
    """Four independent read misses to different banks pipeline."""
    trace = [TraceRecord(0, bank, False) for bank in range(4)]
    events, core, controller = build(trace, mlp=4)
    core.start()
    events.run_all()
    # All four overlap: total time ~ one activation + serialized bursts,
    # far below 4 sequential misses (4 x 142.5 = 570 ns).
    assert events.now < 300.0
    assert controller.stats.reads_completed == 4


def test_dependent_misses_serialize():
    trace = [TraceRecord(0, bank, False, dependent=True)
             for bank in range(4)]
    events, core, _ = build(trace, mlp=4)
    core.start()
    events.run_all()
    assert events.now >= 4 * 142.5 - 1e-6


def test_mlp_limit_throttles_independent_misses():
    """With MLP=1, even independent misses serialize."""
    trace = [TraceRecord(0, bank, False) for bank in range(4)]
    events, core, _ = build(trace, mlp=1)
    core.start()
    events.run_all()
    assert events.now >= 3 * 142.5 - 1e-6   # last miss may not block


def test_stores_do_not_block_on_fill():
    """Store misses issue fills but retirement continues (MLP permitting)."""
    trace = [TraceRecord(0, bank, True) for bank in range(3)]
    trace.append(TraceRecord(100, 64, False))
    events, core, _ = build(trace, mlp=8)
    core.start()
    events.run_all()
    assert core.instructions_retired == 100
    assert core.accesses_processed == 4


def test_llc_hits_cost_nothing():
    trace = [TraceRecord(0, 5, False)] + [TraceRecord(1, 5, False)] * 50
    events, core, _ = build(trace)
    core.start()
    events.run_all()
    # One miss (~142.5 ns) plus 50 one-instruction gaps (0.25 ns each).
    assert events.now < 200.0


def test_stall_time_accounts_dependent_waits():
    trace = [TraceRecord(0, bank, False, dependent=True)
             for bank in range(3)]
    events, core, _ = build(trace)
    core.start()
    events.run_all()
    assert core.stall_time_ns > 2 * 142.5 * 0.9


def test_finished_after_trace_exhausts():
    events, core, _ = build([TraceRecord(1, 0, False)])
    core.start()
    events.run_all()
    assert core.finished


def test_invalid_construction():
    with pytest.raises(ValueError):
        build([], base_cpi=0.0)
    with pytest.raises(ValueError):
        build([], mlp=0)
