"""Tests for Table III policy parsing and semantics."""

import pytest

from repro.core.policies import (
    PAPER_POLICY_NAMES,
    WritePolicy,
    paper_policies,
    parse_policy,
)


def test_norm_policy():
    p = parse_policy("Norm")
    assert not p.all_slow and not p.bank_aware and not p.eager
    assert not p.cancel_normal and not p.cancel_slow and not p.wear_quota


def test_slow_policy():
    assert parse_policy("Slow").all_slow


def test_b_mellow():
    p = parse_policy("B-Mellow")
    assert p.bank_aware and not p.eager


def test_be_mellow_full_stack():
    p = parse_policy("BE-Mellow+SC+WQ")
    assert p.bank_aware and p.eager and p.eager_slow
    assert p.cancel_slow and not p.cancel_normal
    assert p.wear_quota


def test_e_norm_issues_eager_at_normal_speed():
    p = parse_policy("E-Norm+NC")
    assert p.eager and not p.eager_slow
    assert p.cancel_normal and not p.cancel_slow


def test_e_slow():
    p = parse_policy("E-Slow+SC")
    assert p.all_slow and p.eager and p.eager_slow and p.cancel_slow


def test_parse_is_case_insensitive():
    p = parse_policy("be-mellow+sc+wq")
    assert p.bank_aware and p.eager and p.cancel_slow and p.wear_quota


def test_unknown_base_rejected():
    with pytest.raises(ValueError):
        parse_policy("Fast")


def test_unknown_suffix_rejected():
    with pytest.raises(ValueError):
        parse_policy("Norm+XX")


def test_cancellable_by_speed():
    p = parse_policy("B-Mellow+SC")
    assert p.cancellable(slow=True)
    assert not p.cancellable(slow=False)
    q = parse_policy("E-Norm+NC")
    assert q.cancellable(slow=False)
    assert not q.cancellable(slow=True)


def test_uses_slow_writes():
    assert not parse_policy("Norm").uses_slow_writes
    assert parse_policy("Norm+WQ").uses_slow_writes
    assert parse_policy("Slow").uses_slow_writes
    assert parse_policy("B-Mellow").uses_slow_writes
    assert not parse_policy("E-Norm").uses_slow_writes


def test_slow_factor_plumbing():
    p = parse_policy("Slow", slow_factor=2.0)
    assert p.slow_factor == 2.0
    assert p.with_slow_factor(1.5).slow_factor == 1.5


def test_invalid_slow_factor():
    with pytest.raises(ValueError):
        WritePolicy(name="bad", slow_factor=0.5)


def test_slow_and_bank_aware_conflict():
    with pytest.raises(ValueError):
        WritePolicy(name="bad", all_slow=True, bank_aware=True)


def test_paper_policy_list_parses():
    policies = paper_policies()
    assert len(policies) == len(PAPER_POLICY_NAMES)
    by_name = {p.name: p for p in policies}
    assert by_name["BE-Mellow+SC+WQ"].wear_quota
    assert by_name["Norm"].name == "Norm"
