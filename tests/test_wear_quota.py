"""Tests for the Wear Quota mechanism (Section IV-C)."""

import pytest

from repro import params
from repro.core.wear_quota import WearQuota


def make_quota(**kwargs):
    defaults = dict(
        num_banks=2,
        blocks_per_bank=1000,
        endurance_per_block=1e6,
        target_lifetime_years=8.0,
        period_ns=500_000,
        ratio_quota=0.9,
    )
    defaults.update(kwargs)
    return WearQuota(**defaults)


def test_wear_bound_formula():
    """WearBound_bank = BlkNum * Endur * T_sample / T_life * Ratio."""
    quota = make_quota()
    t_life_ns = 8.0 * params.NS_PER_YEAR
    expected = 1000 * 1e6 * 500_000 / t_life_ns * 0.9
    assert quota.wear_bound_bank == pytest.approx(expected)


def test_no_gating_before_first_period():
    quota = make_quota()
    assert not quota.is_slow_only(0)


def test_gating_when_quota_exceeded():
    quota = make_quota()
    quota.record_wear(0, quota.wear_bound_bank * 5)
    quota.start_period()
    assert quota.is_slow_only(0)
    assert not quota.is_slow_only(1)


def test_no_gating_when_under_quota():
    quota = make_quota()
    quota.record_wear(0, quota.wear_bound_bank * 0.5)
    quota.start_period()
    assert not quota.is_slow_only(0)


def test_budget_accumulates_across_periods():
    """A quiet period earns budget that a later burst can spend."""
    quota = make_quota()
    quota.start_period()               # period 1: no wear
    quota.record_wear(0, quota.wear_bound_bank * 1.5)
    quota.start_period()               # period 2: 1.5x one period's bound
    # Cumulative wear 1.5*bound vs budget 2*bound -> not gated.
    assert not quota.is_slow_only(0)


def test_exceed_quota_value():
    quota = make_quota()
    quota.record_wear(0, 42.0)
    quota.start_period()
    assert quota.exceed_quota(0) == pytest.approx(42.0 - quota.wear_bound_bank)


def test_gate_reopens_after_recovery():
    quota = make_quota()
    quota.record_wear(0, quota.wear_bound_bank * 1.5)
    quota.start_period()
    assert quota.is_slow_only(0)
    quota.start_period()   # a quiet period: budget catches up
    assert not quota.is_slow_only(0)


def test_slow_only_periods_counter():
    quota = make_quota()
    quota.record_wear(0, quota.wear_bound_bank * 10)
    quota.record_wear(1, quota.wear_bound_bank * 10)
    quota.start_period()
    assert quota.slow_only_periods == 2


def test_reset_statistics_clears_wear_but_keeps_gates():
    quota = make_quota()
    quota.record_wear(0, quota.wear_bound_bank * 100)
    quota.start_period()
    assert quota.is_slow_only(0)
    quota.reset_statistics()
    assert quota.cumulative_wear == [0.0, 0.0]
    assert quota.previous_periods == 0
    # The gate is control state, not a statistic: it survives the reset so
    # the measurement window does not start with an ungated burst.
    assert quota.is_slow_only(0)
    # ...and is recomputed (from the cleared wear) at the next period.
    quota.start_period()
    assert not quota.is_slow_only(0)


def test_eight_year_rate_is_sustainable():
    """Writing at exactly the 8-year-lifetime rate never trips the gate."""
    quota = make_quota()
    steady = quota.wear_bound_bank * 0.999
    for _ in range(50):
        quota.record_wear(0, steady)
        quota.start_period()
        assert not quota.is_slow_only(0)


def test_invalid_construction():
    with pytest.raises(ValueError):
        make_quota(num_banks=0)
    with pytest.raises(ValueError):
        make_quota(target_lifetime_years=0)
    with pytest.raises(ValueError):
        make_quota(ratio_quota=1.5)
