"""Suite-wide pytest configuration.

Hypothesis deadlines are wall-clock, so any instrumentation that slows
execution uniformly - coverage tracing, sanitizers, busy CI runners -
turns healthy property tests into flaky DeadlineExceeded failures.
Example count stays per-test; only the per-example stopwatch goes.
"""

try:
    from hypothesis import settings
except ImportError:        # hypothesis is a test extra; don't require it
    pass                   # just to collect non-property tests
else:
    settings.register_profile("repro", deadline=None)
    settings.load_profile("repro")
