"""simlint: every rule with positive, negative and suppression coverage.

The star witness is the PR-1 seeding bug: ``rng = random.Random((hash(...)``
in the workload trace generator made every process draw a different trace.
``test_regression_pre_pr1_hash_seeding`` lints that exact line and must flag
it forever.
"""

import json

import pytest

from repro.cli import main
from repro.lint import LintOptions, RULES, lint_paths, lint_source
from repro.lint.engine import parse_suppressions
from repro.lint.rules import unit_of_identifier


def rule_ids(source, **kwargs):
    return [f.rule_id for f in lint_source(source, **kwargs)]


# --------------------------------------------------------------------------
# The motivating regression: the exact pre-PR-1 seeding pattern
# --------------------------------------------------------------------------

# Verbatim shape of src/repro/workloads/profiles.py:53 at commit 0e5326f,
# before PR 1 replaced hash() with zlib.crc32 (str hashing is randomized
# per interpreter process, so parallel sweep workers disagreed on traces).
PRE_PR1_SEEDING = """
import random

class WorkloadProfile:
    def trace(self, seed=1):
        rng = random.Random((hash(self.name) ^ seed) & 0x7FFFFFFF)
        return rng
"""


def test_regression_pre_pr1_hash_seeding():
    ids = rule_ids(PRE_PR1_SEEDING)
    assert "SIM001" in ids

def test_fixed_crc32_seeding_is_clean():
    fixed = PRE_PR1_SEEDING.replace(
        "hash(self.name)", "zlib.crc32(self.name.encode())"
    ).replace("import random", "import random\nimport zlib")
    assert rule_ids(fixed) == []


# --------------------------------------------------------------------------
# SIM001 hash-seeding
# --------------------------------------------------------------------------

def test_sim001_flags_hash_builtin():
    assert rule_ids("x = hash('lbm') % 100\n") == ["SIM001"]

def test_sim001_negative_crc32_and_methods():
    clean = (
        "import zlib\n"
        "x = zlib.crc32(b'lbm')\n"
        "y = obj.hash\n"          # attribute access, not the builtin call
    )
    assert rule_ids(clean) == []

def test_sim001_suppression():
    src = "x = hash('lbm')   # simlint: ignore[SIM001] -- not used for seeding\n"
    assert rule_ids(src) == []


# --------------------------------------------------------------------------
# SIM002 global-random
# --------------------------------------------------------------------------

@pytest.mark.parametrize("call", [
    "random.random()", "random.randint(0, 7)", "random.seed(42)",
    "random.shuffle(items)", "random.Random()",
])
def test_sim002_flags_global_random(call):
    assert rule_ids(f"import random\nx = {call}\n") == ["SIM002"]

def test_sim002_negative_seeded_instances():
    clean = (
        "import random\n"
        "rng = random.Random(1234)\n"
        "value = rng.random()\n"       # instance method, not module-global
        "other = self.rng.randint(0, 7)\n"
    )
    assert rule_ids(clean) == []

def test_sim002_suppression():
    src = "import random\nrandom.seed(0)   # simlint: ignore[SIM002] -- REPL convenience\n"
    assert rule_ids(src) == []


# --------------------------------------------------------------------------
# SIM003 wall-clock
# --------------------------------------------------------------------------

@pytest.mark.parametrize("call", [
    "time.time()", "time.time_ns()", "time.perf_counter()",
    "time.monotonic()", "datetime.datetime.now()", "datetime.date.today()",
])
def test_sim003_flags_wall_clock(call):
    assert rule_ids(f"import datetime, time\nt = {call}\n") == ["SIM003"]

def test_sim003_negative_simulated_clock():
    clean = (
        "import time\n"
        "t = self.events.now\n"
        "time.sleep(0.1)\n"            # not a clock *read*
    )
    assert rule_ids(clean) == []

def test_sim003_suppression_with_justification():
    src = (
        "import time\n"
        "start = time.perf_counter()   "
        "# simlint: ignore[SIM003] -- benchmarking host runtime\n"
    )
    assert rule_ids(src) == []


# --------------------------------------------------------------------------
# SIM004 float-time-eq
# --------------------------------------------------------------------------

@pytest.mark.parametrize("expr", [
    "finish_ns == 150.0", "busy_until_ns != deadline_ns",
    "eq.now == 42.5", "t_us == 0.15",
])
def test_sim004_flags_float_time_equality(expr):
    assert rule_ids(f"flag = {expr}\n") == ["SIM004"]

def test_sim004_negative_ordering_and_counts():
    clean = (
        "a = finish_ns <= 150.0\n"
        "b = now >= deadline_ns\n"
        "c = attempts == 3\n"          # plain count, not a time value
    )
    assert rule_ids(clean) == []

def test_sim004_suppression():
    src = "ok = eq.now == 42.5   # simlint: ignore[SIM004] -- exact by construction\n"
    assert rule_ids(src) == []


# --------------------------------------------------------------------------
# SIM005 mutable-default
# --------------------------------------------------------------------------

@pytest.mark.parametrize("default", ["[]", "{}", "dict()", "set()", "deque()"])
def test_sim005_flags_mutable_defaults(default):
    assert rule_ids(f"def f(x={default}):\n    return x\n") == ["SIM005"]

def test_sim005_negative_immutable_defaults():
    clean = (
        "def f(x=None, y=(), z='name', n=3):\n"
        "    return x, y, z, n\n"
    )
    assert rule_ids(clean) == []

def test_sim005_suppression():
    src = (
        "def f(x=[]):   # simlint: ignore[SIM005] -- intentional shared cache\n"
        "    return x\n"
    )
    assert rule_ids(src) == []


# --------------------------------------------------------------------------
# SIM006 bare-except
# --------------------------------------------------------------------------

def test_sim006_flags_bare_except():
    src = "try:\n    risky()\nexcept:\n    pass\n"
    assert rule_ids(src) == ["SIM006"]

def test_sim006_negative_typed_except():
    src = "try:\n    risky()\nexcept ValueError:\n    pass\n"
    assert rule_ids(src) == []

def test_sim006_suppression():
    src = (
        "try:\n    risky()\n"
        "except:   # simlint: ignore[SIM006] -- last-ditch crash reporter\n"
        "    pass\n"
    )
    assert rule_ids(src) == []


# --------------------------------------------------------------------------
# SIM007 unit-mix
# --------------------------------------------------------------------------

@pytest.mark.parametrize("expr", [
    "window_ns + lifetime_years",
    "delay_ns - delay_us",
    "window_ns < lifetime_years",
])
def test_sim007_flags_unit_mixes(expr):
    assert rule_ids(f"x = {expr}\n") == ["SIM007"]

def test_sim007_negative_same_unit_and_conversions():
    clean = (
        "a = start_ns + delay_ns\n"                # same unit
        "b = window_ns / NS_PER_YEAR\n"            # division is a conversion
        "c = lifetime_years * NS_PER_YEAR\n"       # factor is unit-neutral
        "d = window_ns + NS_PER_YEAR\n"            # neutral operand
    )
    assert rule_ids(clean) == []

def test_sim007_suppression():
    src = "x = window_ns + lifetime_years   # simlint: ignore[SIM007]\n"
    assert rule_ids(src) == []

def test_unit_inference_rules():
    assert unit_of_identifier("window_ns") == "ns"
    assert unit_of_identifier("lifetime_years") == "years"
    assert unit_of_identifier("NS_PER_YEAR") is None    # conversion factor
    assert unit_of_identifier("nsamples") is None       # no unit suffix
    assert unit_of_identifier("ns_budget") is None      # prefix, not suffix


# --------------------------------------------------------------------------
# SIM008 telemetry-wall-clock (path-scoped)
# --------------------------------------------------------------------------

TELEMETRY_PATH = "src/repro/telemetry/core.py"

@pytest.mark.parametrize("src", [
    "import time\n",
    "import datetime\n",
    "import time as _t\n",
    "from time import monotonic\n",
    "from datetime import datetime\n",
])
def test_sim008_flags_wall_clock_imports_in_telemetry(src):
    assert "SIM008" in rule_ids(src, path=TELEMETRY_PATH)

def test_sim008_flags_dotted_clock_calls_in_telemetry():
    # time.sleep is not a clock *read* (SIM003 ignores it) but the whole
    # module is banned inside the telemetry package.
    src = "import time\nt = time.sleep(0.1)\n"
    ids = rule_ids(src, path=TELEMETRY_PATH)
    assert ids.count("SIM008") == 2      # the import and the call

def test_sim008_is_path_scoped():
    src = "import time\n"
    assert rule_ids(src, path="src/repro/sim/system.py") == []
    assert rule_ids(src, path="src\\repro\\telemetry\\win.py") == ["SIM008"]

def test_sim008_negative_simulated_clock_helpers():
    clean = (
        "def sample_epoch(self, now_ns=None):\n"
        "    t = self.clock() if now_ns is None else now_ns\n"
        "    return t\n"
    )
    assert rule_ids(clean, path=TELEMETRY_PATH) == []

def test_sim008_suppression():
    src = "import time   # simlint: ignore[SIM008] -- doc example only\n"
    assert rule_ids(src, path=TELEMETRY_PATH) == []


# --------------------------------------------------------------------------
# SIM009 hotpath-alloc (marker-scoped)
# --------------------------------------------------------------------------

def test_sim009_flags_lambda_in_hotpath_loop():
    src = (
        "def drain(events):   # simlint: hotpath\n"
        "    for t, bank in events:\n"
        "        schedule(t, lambda: issue(bank))\n"
    )
    assert rule_ids(src) == ["SIM009"]

def test_sim009_flags_nested_def_in_hotpath_loop():
    src = (
        "def drain(events):   # simlint: hotpath\n"
        "    while events:\n"
        "        def fire():\n"
        "            events.pop()\n"
        "        schedule(fire)\n"
    )
    assert rule_ids(src) == ["SIM009"]

def test_sim009_flags_lambda_in_hotpath_comprehension():
    src = (
        "def compile_all(patterns):   # simlint: hotpath\n"
        "    return [lambda: p for p in patterns]\n"
    )
    assert rule_ids(src) == ["SIM009"]

def test_sim009_marker_on_multiline_signature():
    src = (
        "def drain(\n"
        "    events,\n"
        ") -> None:   # simlint: hotpath\n"
        "    for t in events:\n"
        "        schedule(t, lambda: None)\n"
    )
    assert rule_ids(src) == ["SIM009"]

def test_sim009_ignores_unmarked_functions():
    src = (
        "def drain(events):\n"
        "    for t, bank in events:\n"
        "        schedule(t, lambda: issue(bank))\n"
    )
    assert rule_ids(src) == []

def test_sim009_lambda_outside_loop_is_fine():
    # One closure per *call* is the compile-once idiom the hot paths use
    # (Pattern.compile_fast); only per-iteration allocation is the hazard.
    src = (
        "def compile_fast(self, rng):   # simlint: hotpath\n"
        "    rnd = rng.random\n"
        "    return lambda: rnd()\n"
    )
    assert rule_ids(src) == []

def test_sim009_for_iterable_is_evaluated_once():
    # A sort key in the iterable expression runs before the loop starts.
    src = (
        "def drain(events):   # simlint: hotpath\n"
        "    for t in sorted(events, key=lambda e: e.t):\n"
        "        fire(t)\n"
    )
    assert rule_ids(src) == []

def test_sim009_while_test_reevaluates_per_iteration():
    src = (
        "def drain(events):   # simlint: hotpath\n"
        "    while any(map(lambda e: e.ready, events)):\n"
        "        fire(events.pop())\n"
    )
    assert rule_ids(src) == ["SIM009"]

def test_sim009_marker_does_not_leak_into_nested_defs():
    # The nested helper is its own scope: unless it is itself marked, its
    # loops are not hotpath loops.
    src = (
        "def outer():   # simlint: hotpath\n"
        "    def helper(items):\n"
        "        for item in items:\n"
        "            use(lambda: item)\n"
        "    return helper\n"
    )
    assert rule_ids(src) == []

def test_sim009_suppression():
    src = (
        "def drain(events):   # simlint: hotpath\n"
        "    for t, bank in events:\n"
        "        schedule(t, lambda: issue(bank))"
        "   # simlint: ignore[SIM009] -- cold error path\n"
    )
    assert rule_ids(src) == []


# --------------------------------------------------------------------------
# SIM010 faults-direct-random (path-scoped)
# --------------------------------------------------------------------------

FAULTS_PATH = "src/repro/faults/injector.py"

def test_sim010_flags_seeded_random_in_faults():
    # SIM002 allows a *seeded* Random anywhere else; inside repro.faults
    # even that is banned - the generator must be the injected one.
    src = "import random\nrng = random.Random(42)\n"
    assert "SIM010" in rule_ids(src, path=FAULTS_PATH)

def test_sim010_flags_module_global_calls_in_faults():
    src = "import random\nx = random.random()\n"
    ids = rule_ids(src, path=FAULTS_PATH)
    assert "SIM010" in ids
    assert "SIM002" in ids          # both rules apply to the global call

def test_sim010_flags_from_import_in_faults():
    src = "from random import Random\n"
    assert rule_ids(src, path=FAULTS_PATH) == ["SIM010"]

def test_sim010_is_path_scoped():
    src = "import random\nrng = random.Random(42)\n"
    assert rule_ids(src, path="src/repro/sim/system.py") == []
    assert rule_ids(src, path="src\\repro\\faults\\win.py") == ["SIM010"]

def test_sim010_negative_injected_rng():
    # The intended shape: 'import random' for annotations only, every
    # draw through the instance handed to the constructor.
    clean = (
        "import random\n"
        "class FaultInjector:\n"
        "    def __init__(self, rng: random.Random) -> None:\n"
        "        self.rng = rng\n"
        "    def flip(self) -> bool:\n"
        "        return self.rng.random() < 0.5\n"
    )
    assert rule_ids(clean, path=FAULTS_PATH) == []

def test_sim010_suppression():
    src = ("import random\n"
           "rng = random.Random(0)   "
           "# simlint: ignore[SIM010] -- doc example only\n")
    assert rule_ids(src, path=FAULTS_PATH) == []


# --------------------------------------------------------------------------
# Suppression syntax details
# --------------------------------------------------------------------------

def test_blanket_suppression_covers_every_rule():
    src = "x = hash(time.time())   # simlint: ignore\n"
    assert rule_ids(src) == []

def test_suppression_for_other_rule_does_not_apply():
    # The SIM003 suppression does not hide SIM001, and since it matched
    # nothing it is itself reported as unused (SIM100).
    src = "x = hash('lbm')   # simlint: ignore[SIM003]\n"
    assert sorted(rule_ids(src)) == ["SIM001", "SIM100"]

def test_suppression_is_line_scoped():
    src = "# simlint: ignore[SIM001]\nx = hash('lbm')\n"
    assert rule_ids(src) == ["SIM100", "SIM001"]

def test_parse_suppressions_multiple_rules():
    supp = parse_suppressions("x = 1  # simlint: ignore[SIM001, SIM003]\n")
    assert supp == {1: {"SIM001", "SIM003"}}


# --------------------------------------------------------------------------
# Rule selection and engine behaviour
# --------------------------------------------------------------------------

MIXED = "import random\nx = hash(random.random())\n"

def test_select_runs_only_chosen_rules():
    findings = lint_source(MIXED, options=LintOptions(select=["SIM001"]))
    assert [f.rule_id for f in findings] == ["SIM001"]

def test_ignore_drops_chosen_rules():
    findings = lint_source(MIXED, options=LintOptions(ignore=["SIM002"]))
    assert [f.rule_id for f in findings] == ["SIM001"]

def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError, match="unknown rule"):
        LintOptions(select=["SIM999"])

def test_findings_carry_location_and_hint():
    finding, = lint_source("x = hash('lbm')\n", path="mod.py")
    assert (finding.path, finding.line) == ("mod.py", 1)
    assert finding.severity == RULES["SIM001"].severity
    assert "crc32" in finding.hint
    assert "hash" in finding.snippet

def test_lint_paths_reports_syntax_errors_as_sim000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    ok = tmp_path / "dirty.py"
    ok.write_text("x = hash('a')\n")
    ids = sorted(f.rule_id for f in lint_paths([tmp_path]))
    assert ids == ["SIM000", "SIM001"]

def test_lint_paths_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        lint_paths(["no/such/dir"])


# --------------------------------------------------------------------------
# CLI integration (repro lint)
# --------------------------------------------------------------------------

def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("import zlib\nx = zlib.crc32(b'a')\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("x = hash('a')\n")
    assert main(["lint", str(clean)]) == 0
    assert main(["lint", str(dirty)]) == 1
    assert main(["lint", str(tmp_path / "missing.py")]) == 2
    capsys.readouterr()

def test_cli_json_format(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("x = hash('a')\n")
    assert main(["lint", "--format", "json", str(dirty)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["counts"]["total"] == 1
    assert report["findings"][0]["rule"] == "SIM001"

def test_cli_select_and_ignore(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(MIXED)
    assert main(["lint", "--select", "SIM002", str(dirty)]) == 1
    assert main(["lint", "--ignore", "SIM001,SIM002", str(dirty)]) == 0
    capsys.readouterr()


# --------------------------------------------------------------------------
# The repository lints itself
# --------------------------------------------------------------------------

def test_repository_source_is_lint_clean():
    assert lint_paths(["src"]) == []
