"""Tests for the analytic result validators, plus validation of real runs."""

import pytest

from repro import SimConfig, run_simulation
from repro.analysis.validation import (
    ValidationReport,
    expected_busy_time_ns,
    validate_result,
)
from repro.sim.stats import RunResult

FAST = dict(warmup_accesses=6000, measure_accesses=12000,
            llc_size_bytes=256 * 1024, functional_warmup_max=40000)


class TestReport:
    def test_passing_check(self):
        report = ValidationReport()
        report.check(True, "fine")
        assert report.ok and report.checks_run == 1
        report.raise_if_failed()

    def test_failing_check(self):
        report = ValidationReport()
        report.check(False, "broken")
        assert not report.ok
        with pytest.raises(AssertionError, match="broken"):
            report.raise_if_failed()


class TestExpectedBusyTime:
    def test_read_mix(self):
        result = RunResult(workload="x", policy="Norm", slow_factor=3.0,
                           num_banks=4, expo_factor=2.0)
        result.reads_issued = 10
        result.read_row_hits = 4
        result.read_row_misses = 6
        busy = expected_busy_time_ns(result)
        assert busy == pytest.approx(4 * 22.5 + 6 * 142.5)

    def test_writes_and_cancellations(self):
        result = RunResult(workload="x", policy="Slow+SC", slow_factor=3.0,
                           num_banks=4, expo_factor=2.0)
        result.writes_issued_slow = 3
        result.cancellations = 1
        busy = expected_busy_time_ns(result)
        assert busy == pytest.approx(3 * 470 - 450)


@pytest.mark.parametrize("policy", [
    "Norm", "Slow+SC", "B-Mellow+SC", "BE-Mellow+SC", "E-Norm+NC",
    "BE-Mellow+SC+WQ", "Slow+SC+WP",
])
@pytest.mark.parametrize("workload", ["GemsFDTD", "lbm", "mcf"])
def test_real_runs_validate(policy, workload):
    """Every (workload, policy) integration run passes all cross-checks."""
    result = run_simulation(SimConfig(workload=workload, policy=policy,
                                      **FAST))
    report = validate_result(result)
    report.raise_if_failed()
    assert report.checks_run >= 6


def test_validator_catches_corruption():
    result = run_simulation(SimConfig(workload="GemsFDTD", policy="Norm",
                                      **FAST))
    result.lifetime_years *= 2        # corrupt the lifetime
    assert not validate_result(result).ok


def test_validator_catches_bad_row_split():
    result = run_simulation(SimConfig(workload="GemsFDTD", policy="Norm",
                                      **FAST))
    result.read_row_hits += 1
    assert not validate_result(result).ok
