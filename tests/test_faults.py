"""Tests for the fault-injection & graceful-degradation subsystem."""

import json
import random

import pytest

from repro.endurance.model import EnduranceModel
from repro.experiments.faults import survival_time_ns
from repro.experiments.runner import Runner, result_from_dict, result_to_dict
from repro.faults import (
    WRITE_FATAL,
    WRITE_OK,
    WRITE_RETIRED,
    WRITE_RETRY,
    FaultConfig,
    FaultInjector,
)
from repro.faults.ecc import (
    STATUS_CLEAN,
    STATUS_CORRECTED,
    STATUS_DETECTED,
    codeword_length,
    decode,
    encode,
    parity_bit_count,
)
from repro.sim.config import SimConfig
from repro.sim.system import run_simulation


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


def make_injector(now=0.0, **overrides):
    """An injector with a fixed seed and an advanceable clock."""
    clock = {"now": now}
    config = FaultConfig(**overrides)
    injector = FaultInjector(
        config=config, num_banks=2, model=EnduranceModel(),
        rng=random.Random(1234), clock=lambda: clock["now"],
    )
    return injector, clock


# --------------------------------------------------------------------------
# SECDED ECC basics (exhaustive flip coverage lives in test_properties)
# --------------------------------------------------------------------------


def test_ecc_geometry_for_64_bit_words():
    # Classic (72,64) extended Hamming: 7 parity bits + overall parity.
    assert parity_bit_count(64) == 7
    assert codeword_length(64) == 72


def test_ecc_clean_round_trip():
    word = 0xDEAD_BEEF_0123_4567
    outcome = decode(encode(word))
    assert (outcome.status, outcome.data) == (STATUS_CLEAN, word)


def test_ecc_corrects_single_and_detects_double():
    word = 0x0123_4567_89AB_CDEF
    codeword = encode(word)
    one_flip = decode(codeword ^ (1 << 13))
    assert one_flip.status == STATUS_CORRECTED
    assert one_flip.data == word
    assert one_flip.corrected_position == 13
    two_flips = decode(codeword ^ (1 << 13) ^ (1 << 40))
    assert two_flips.status == STATUS_DETECTED
    assert two_flips.data == -1


# --------------------------------------------------------------------------
# FaultConfig validation and cache identity
# --------------------------------------------------------------------------


@pytest.mark.parametrize("kwargs", [
    {"median_endurance": 0.0},
    {"sigma": -0.1},
    {"cells_per_line": 0},
    {"spare_lines_per_bank": -1},
    {"max_write_retries": -1},
    {"stuck_mismatch_probability": 1.5},
    {"wear_acceleration": 0.0},
])
def test_fault_config_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        FaultConfig(**kwargs)


def test_fault_config_key_is_tagged_and_value_sensitive():
    assert FaultConfig().key()[0] == "faults"
    assert FaultConfig().key() != FaultConfig(sigma=0.4).key()


# Digests recorded before the faults field existed.  faults=None (the
# default) must keep producing them bit-for-bit, or every cached result
# in every existing cache directory would silently invalidate.
PRE_FAULTS_DIGESTS = {
    ("lbm", "Norm", 1, 16, 4): "244de89cfa2ec43abc490663",
    ("hmmer", "BE-Mellow+SC+WQ", 7, 16, 4): "49a5aa88013834afd88743d5",
    ("gups", "Slow+SC", 1, 8, 2): "7fd6e25b53191e2e57b364dc",
}


@pytest.mark.parametrize(
    "workload,policy,seed,banks,ranks", sorted(PRE_FAULTS_DIGESTS))
def test_disabled_faults_keep_pre_faults_cache_digests(
        workload, policy, seed, banks, ranks):
    config = SimConfig(workload=workload, policy=policy, seed=seed,
                       num_banks=banks, num_ranks=ranks)
    expected = PRE_FAULTS_DIGESTS[(workload, policy, seed, banks, ranks)]
    assert config.cache_digest() == expected


def test_enabled_faults_change_the_cache_key():
    base = SimConfig(workload="lbm")
    with_faults = SimConfig(workload="lbm", faults=FaultConfig())
    assert base.cache_key() != with_faults.cache_key()
    tweaked = SimConfig(workload="lbm",
                        faults=FaultConfig(spare_lines_per_bank=4))
    assert with_faults.cache_key() != tweaked.cache_key()


# --------------------------------------------------------------------------
# Injector unit behavior
# --------------------------------------------------------------------------


def test_injector_is_deterministic_per_seed():
    def drive(injector):
        outcomes = []
        for i in range(200):
            injector.record_damage(i % 2, i % 17, 1.0, 1.0)
            outcomes.append(injector.verify_write(i % 2, i % 17, 0))
        return outcomes, injector.stats

    first, _ = make_injector(wear_acceleration=2.5e6)
    second, _ = make_injector(wear_acceleration=2.5e6)
    outcomes_a, stats_a = drive(first)
    outcomes_b, stats_b = drive(second)
    assert outcomes_a == outcomes_b
    assert stats_a == stats_b


def test_slow_writes_age_cells_slower():
    # Equal write counts, but the slow line deposits factor**-expo per
    # write (1/9 at 3x with Expo_Factor 2): the Mellow Writes trade.
    injector, _ = make_injector(wear_acceleration=5e6)
    for _ in range(4):
        injector.record_damage(0, 1, 1.0, 1.0)   # fast line
        injector.record_damage(0, 2, 3.0, 1.0)   # slow line
    assert injector.dead_cells(0, 1) > 0
    assert injector.dead_cells(0, 2) == 0


def test_first_failure_timestamp_comes_from_the_clock():
    injector, clock = make_injector(wear_acceleration=5e6)
    clock["now"] = 777.5
    assert injector.record_damage(0, 0, 1.0, 1.0) > 0
    assert injector.stats.first_failure_ns == 777.5   # simlint: ignore[SIM004] -- exact stamp
    clock["now"] = 999.0   # later failures must not move the first stamp
    injector.record_damage(0, 5, 1.0, 1.0)
    assert injector.stats.first_failure_ns == 777.5   # simlint: ignore[SIM004] -- exact stamp


def test_verify_ladder_retry_then_retire_then_fatal():
    # Every cell dead and every dead cell mismatching: verification must
    # escalate retry -> retire (spare) -> fatal (no spare left).
    injector, clock = make_injector(
        wear_acceleration=1e9, stuck_mismatch_probability=1.0,
        spare_lines_per_bank=1, max_write_retries=1,
    )
    injector.record_damage(0, 0, 1.0, 1.0)
    assert injector.dead_cells(0, 0) == injector.config.cells_per_line
    assert injector.verify_write(0, 0, 0) == WRITE_RETRY
    assert injector.verify_write(0, 0, 1) == WRITE_RETIRED
    assert injector.dead_cells(0, 0) == 0     # fresh spare cells
    assert injector.stats.lines_retired == 1
    # Exhaust the spare on another line; next escalation is terminal.
    injector.record_damage(0, 1, 1.0, 1.0)
    clock["now"] = 4242.0
    assert injector.verify_write(0, 1, 1) == WRITE_FATAL
    assert injector.uncorrectable
    assert injector.stats.uncorrectable_ns == 4242.0   # simlint: ignore[SIM004] -- exact stamp


def test_healthy_lines_verify_ok():
    injector, _ = make_injector()   # physical endurance: nothing dies
    injector.record_damage(0, 0, 1.0, 1.0)
    assert injector.verify_write(0, 0, 0) == WRITE_OK
    assert injector.stats == type(injector.stats)()


# --------------------------------------------------------------------------
# End-to-end runs
# --------------------------------------------------------------------------

FAULTY = FaultConfig(wear_acceleration=5e6, spare_lines_per_bank=8,
                     max_write_retries=1)


def faulty_config(policy="Norm", workload="zeusmp", seed=3, scale=0.02):
    return SimConfig(workload=workload, policy=policy, seed=seed,
                     faults=FAULTY).scaled(scale)


def test_default_run_reports_faults_disabled():
    result = run_simulation(SimConfig(workload="hmmer").scaled(0.02))
    assert not result.faults_enabled
    assert not result.uncorrectable
    assert result.time_to_first_failure_ns == -1.0   # simlint: ignore[SIM004] -- sentinel
    assert result.time_to_uncorrectable_ns == -1.0   # simlint: ignore[SIM004] -- sentinel
    assert result.cells_failed == 0
    assert result.lines_retired == 0


def test_fault_run_degrades_then_ends_gracefully():
    result = run_simulation(faulty_config("Norm"))
    assert result.faults_enabled
    assert result.uncorrectable
    assert result.cells_failed > 0
    assert result.lines_retired > 0
    assert result.fault_write_retries > 0
    assert 0.0 <= result.time_to_first_failure_ns
    assert result.time_to_first_failure_ns <= result.time_to_uncorrectable_ns
    # Graceful: the run still produced a coherent measured window.
    assert result.window_ns > 0.0
    assert result.instructions > 0


def test_fault_runs_are_deterministic():
    first = result_to_dict(run_simulation(faulty_config("BE-Mellow+SC")))
    second = result_to_dict(run_simulation(faulty_config("BE-Mellow+SC")))
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True)


def test_mellow_outlives_norm_under_fault_injection():
    norm = run_simulation(faulty_config("Norm"))
    slow = run_simulation(faulty_config("Slow+SC"))
    assert norm.uncorrectable
    assert survival_time_ns(slow) > survival_time_ns(norm)


def test_survival_time_censors_survivors_at_window():
    norm = run_simulation(faulty_config("Norm"))
    assert survival_time_ns(norm) == norm.time_to_uncorrectable_ns   # simlint: ignore[SIM004]
    clean = run_simulation(SimConfig(workload="hmmer").scaled(0.02))
    assert survival_time_ns(clean) == clean.window_ns   # simlint: ignore[SIM004] -- selfsame


# --------------------------------------------------------------------------
# Cache and sweep integration
# --------------------------------------------------------------------------


def test_fault_results_round_trip_through_the_cache_codec():
    result = run_simulation(faulty_config("Norm"))
    restored = result_from_dict(result_to_dict(result))
    assert restored == result


def test_runner_cache_hit_preserves_fault_fields():
    config = faulty_config("Norm")
    runner = Runner()
    fresh = runner.run(config)
    cached = Runner().run(config)   # new runner: must come from disk
    assert cached == fresh
    assert cached.uncorrectable


def test_serial_and_parallel_sweeps_agree_with_faults(tmp_path, monkeypatch):
    grid = [faulty_config("Norm", seed=s, scale=0.01) for s in (1, 2, 3)]
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    serial = Runner().sweep(grid, jobs=1)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
    parallel = Runner().sweep(grid, jobs=3)
    assert serial == parallel


# --------------------------------------------------------------------------
# Telemetry integration
# --------------------------------------------------------------------------


def test_traced_fault_run_exports_fault_telemetry():
    result, bundle = Runner().run_traced(faulty_config("Norm"))
    assert result.uncorrectable
    metrics = json.loads((bundle / "metrics.json").read_text())
    series = metrics["series"]
    assert "faults.cells_failed" in series
    assert "faults.spare_lines_left" in series
    heatmap = json.loads((bundle / "heatmap.json").read_text())
    retired = heatmap["retired"]
    assert retired["num_banks"] == result.num_banks
    assert sum(retired["cumulative"][-1]) == result.lines_retired
    kinds = {json.loads(line)["kind"]
             for line in (bundle / "trace.jsonl").read_text().splitlines()}
    assert "cell_fail" in kinds
    assert "uncorrectable" in kinds


def test_untraced_bundles_have_no_retired_heatmap():
    _result, bundle = Runner().run_traced(
        SimConfig(workload="hmmer").scaled(0.02))
    heatmap = json.loads((bundle / "heatmap.json").read_text())
    assert "retired" not in heatmap
