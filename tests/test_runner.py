"""Tests for the sweep runner and its persistent cache."""

import json

import pytest

from repro.experiments.runner import (
    Runner,
    result_from_dict,
    result_to_dict,
    selected_workloads,
)
from repro.sim.config import SimConfig
from repro.sim.system import run_simulation

TINY = dict(warmup_accesses=2000, measure_accesses=3000,
            llc_size_bytes=128 * 1024)


def tiny_config(**kwargs):
    merged = dict(TINY)
    merged.update(kwargs)
    return SimConfig(workload="GemsFDTD", **merged)


class TestSerialization:
    def test_roundtrip_preserves_everything(self):
        result = run_simulation(tiny_config(policy="BE-Mellow+SC"))
        data = json.loads(json.dumps(result_to_dict(result)))
        restored = result_from_dict(data)
        assert restored.ipc == result.ipc
        assert restored.lifetime_years == result.lifetime_years
        assert restored.writes_issued_slow == result.writes_issued_slow
        assert len(restored.wear_records) == len(result.wear_records)
        assert restored.lifetime_for_expo(1.5) == pytest.approx(
            result.lifetime_for_expo(1.5)
        )


class TestRunnerCache:
    def test_memo_hit(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        config = tiny_config()
        a = runner.run(config)
        b = runner.run(config)
        assert a is b
        assert runner.simulated == 1
        assert runner.cache_hits == 1

    def test_disk_cache_across_runners(self, tmp_path):
        config = tiny_config()
        first = Runner(cache_dir=tmp_path)
        a = first.run(config)
        second = Runner(cache_dir=tmp_path)
        b = second.run(config)
        assert second.simulated == 0
        assert b.ipc == a.ipc

    def test_different_configs_different_entries(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        runner.run(tiny_config(policy="Norm"))
        runner.run(tiny_config(policy="Slow"))
        assert runner.simulated == 2

    def test_corrupt_cache_entry_resimulated(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        config = tiny_config()
        runner.run(config)
        path = runner._path_for(config)
        path.write_text("{not json")
        fresh = Runner(cache_dir=tmp_path)
        result = fresh.run(config)
        assert fresh.simulated == 1
        assert result.ipc > 0

    def test_no_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        runner = Runner(cache_dir=tmp_path)
        runner.run(tiny_config())
        assert not list(tmp_path.glob("*.json"))


class TestEnvSelection:
    def test_default_workloads(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKLOADS", raising=False)
        assert len(selected_workloads()) == 11

    def test_subset(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "lbm, stream")
        assert selected_workloads() == ["lbm", "stream"]

    def test_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "nosuch")
        with pytest.raises(ValueError):
            selected_workloads()
