"""Tests for the address map."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.address import AddressMap


def test_default_geometry():
    amap = AddressMap()
    assert amap.num_banks == 16
    assert amap.num_ranks == 4
    assert amap.banks_per_rank == 4
    assert amap.blocks_per_row == 16


def test_cacheline_interleaving():
    amap = AddressMap(num_banks=4, num_ranks=1)
    assert [amap.bank_of(b) for b in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_bank_local_block_progression():
    amap = AddressMap(num_banks=4, num_ranks=1)
    # Blocks 0, 4, 8 all land in bank 0 as local blocks 0, 1, 2.
    assert [amap.bank_local_block(b) for b in (0, 4, 8)] == [0, 1, 2]


def test_row_changes_every_blocks_per_row_accesses_per_bank():
    amap = AddressMap(num_banks=4, num_ranks=1)
    rows = [amap.row_of(4 * i) for i in range(32)]   # bank 0's blocks
    assert rows[:16] == [0] * 16
    assert rows[16:] == [1] * 16


def test_rank_of_bank():
    amap = AddressMap(num_banks=16, num_ranks=4)
    assert amap.rank_of_bank(0) == 0
    assert amap.rank_of_bank(3) == 0
    assert amap.rank_of_bank(4) == 1
    assert amap.rank_of_bank(15) == 3


def test_decode_consistency():
    amap = AddressMap()
    rank, bank, row, local = amap.decode(12345)
    assert bank == amap.bank_of(12345)
    assert rank == amap.rank_of(12345)
    assert row == amap.row_of(12345)
    assert local == amap.bank_local_block(12345)


def test_banks_must_divide_over_ranks():
    with pytest.raises(ValueError):
        AddressMap(num_banks=6, num_ranks=4)


def test_encode_range_check():
    amap = AddressMap(num_banks=4, num_ranks=1)
    with pytest.raises(IndexError):
        amap.encode(4, 0)


@given(block=st.integers(min_value=0, max_value=2**34))
def test_encode_decode_roundtrip(block):
    amap = AddressMap()
    bank = amap.bank_of(block)
    local = amap.bank_local_block(block)
    assert amap.encode(bank, local) == block


@given(block=st.integers(min_value=0, max_value=2**34))
def test_paper_bank_options_decode(block):
    for banks, ranks in ((4, 1), (8, 2), (16, 4)):
        amap = AddressMap(num_banks=banks, num_ranks=ranks)
        rank, bank, row, local = amap.decode(block)
        assert 0 <= bank < banks
        assert 0 <= rank < ranks
        assert row == local // 16
