"""Unit tests for the headline summary and seed-stability studies."""

import pytest

from repro.experiments.headline import PAPER_HEADLINES, headline_summary
from repro.experiments.runner import Runner
from repro.experiments.seeds import _stats, seed_stability


@pytest.fixture(autouse=True)
def tiny_environment(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SCALE", "0.05")
    monkeypatch.setenv("REPRO_WORKLOADS", "hmmer,lbm")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def test_headline_summary_structure():
    table = headline_summary(Runner())
    policies = table.column("policy")
    assert "BE-Mellow+SC" in policies and "Norm" in policies
    norm = [r for r in table.rows if r[0] == "Norm"][0]
    assert norm[1] == pytest.approx(1.0)
    assert norm[2] == pytest.approx(1.0)


def test_headline_paper_anchors_attached():
    table = headline_summary(Runner())
    be = [r for r in table.rows if r[0] == "BE-Mellow+SC"][0]
    assert be[4] == PAPER_HEADLINES["BE-Mellow+SC"][0]
    assert be[5] == PAPER_HEADLINES["BE-Mellow+SC"][1]


def test_seed_stability_structure():
    table = seed_stability(Runner(), workloads=("lbm",), seeds=(1, 2))
    assert len(table.rows) == 1
    row = table.rows[0]
    assert row[0] == "lbm"
    assert row[1] > 0       # mean ipc ratio
    assert row[2] >= 0      # cv
    assert row[5] == 2      # seeds counted


class TestStatsHelper:
    def test_mean_and_cv(self):
        mean, cv = _stats([2.0, 4.0])
        assert mean == 3.0
        assert cv == pytest.approx((2 ** 0.5) / 3.0)

    def test_single_value(self):
        mean, cv = _stats([5.0])
        assert mean == 5.0 and cv == 0.0
