"""Tests for the ``repro serve`` job API: schemas, queue, store, pool,
and a loopback end-to-end run of the real HTTP server in-process."""

import asyncio
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.experiments.runner import Runner, result_to_dict
from repro.serve import (
    PRIORITY_BY_KIND,
    JobState,
    JobStore,
    PriorityJobQueue,
    ReproServer,
    ServeError,
    SpecError,
    parse_job_spec,
)
from repro.serve.jobs import host_now

SMALL_RUN = {"kind": "run", "workload": "hmmer", "policy": "Norm",
             "scale": 0.05}


def _errors_by_field(excinfo):
    fields = {}
    for entry in excinfo.value.errors:
        fields.setdefault(entry["field"], []).append(entry["message"])
    return fields


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------

class TestJobSpecValidation:
    def test_run_spec_builds_one_config(self):
        spec = parse_job_spec(SMALL_RUN)
        assert spec.kind == "run"
        assert spec.total_runs == 1
        config = spec.configs[0]
        assert config.workload == "hmmer"
        assert config.policy_name == "Norm"
        # scale applied at parse time, so digest == execution identity
        assert config.measure_accesses == 6000
        assert spec.digest == config.cache_digest()

    def test_spec_is_idempotent_over_key_order_and_defaults(self):
        explicit = parse_job_spec({"scale": 0.05, "policy": "Norm",
                                   "workload": "hmmer", "kind": "run",
                                   "seed": 1})
        assert explicit.digest == parse_job_spec(SMALL_RUN).digest

    def test_sweep_spec_builds_grid_workload_major(self):
        spec = parse_job_spec({
            "kind": "sweep", "workloads": ["lbm", "stream"],
            "policies": ["Norm", "Slow+SC"], "scale": 0.05,
        })
        assert spec.total_runs == 4
        assert [(c.workload, c.policy_name) for c in spec.configs] == [
            ("lbm", "Norm"), ("lbm", "Slow+SC"),
            ("stream", "Norm"), ("stream", "Slow+SC"),
        ]
        assert spec.priority == PRIORITY_BY_KIND["sweep"]

    def test_faults_spec_builds_seed_grid_with_fault_config(self):
        spec = parse_job_spec({"kind": "faults", "workload": "zeusmp",
                               "policies": ["Norm"], "seeds": 3})
        assert spec.total_runs == 3
        assert [c.seed for c in spec.configs] == [1, 2, 3]
        assert all(c.faults is not None for c in spec.configs)
        assert spec.priority == PRIORITY_BY_KIND["faults"]

    def test_non_object_spec_rejected(self):
        with pytest.raises(SpecError) as excinfo:
            parse_job_spec([1, 2, 3])
        assert "$" in _errors_by_field(excinfo)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError) as excinfo:
            parse_job_spec({"kind": "frobnicate"})
        assert "kind" in _errors_by_field(excinfo)

    def test_all_errors_collected_in_one_pass(self):
        with pytest.raises(SpecError) as excinfo:
            parse_job_spec({"kind": "run", "workload": "nope",
                            "policy": "Bogus", "priority": 42,
                            "banks": 0, "mystery": 1})
        fields = _errors_by_field(excinfo)
        assert set(fields) == {"workload", "policy", "priority", "banks",
                               "mystery"}

    def test_unknown_field_names_the_kind(self):
        with pytest.raises(SpecError) as excinfo:
            parse_job_spec({"kind": "run", "workload": "hmmer",
                            "workloads": ["lbm"]})
        assert "unknown field for kind 'run'" in str(excinfo.value)

    def test_bad_fault_knobs_rejected(self):
        with pytest.raises(SpecError) as excinfo:
            parse_job_spec({"kind": "run", "workload": "hmmer",
                            "faults": {"sigma": -1, "bogus_knob": 2}})
        fields = _errors_by_field(excinfo)
        assert "faults" in fields
        assert "faults.bogus_knob" in fields

    def test_priority_override(self):
        spec = parse_job_spec({**SMALL_RUN, "priority": 7})
        assert spec.priority == 7

    def test_type_confusion_rejected(self):
        with pytest.raises(SpecError) as excinfo:
            parse_job_spec({"kind": "run", "workload": 7,
                            "seed": "one", "scale": True})
        assert set(_errors_by_field(excinfo)) == {"workload", "seed",
                                                  "scale"}

    def test_sweep_requires_nonempty_lists(self):
        with pytest.raises(SpecError) as excinfo:
            parse_job_spec({"kind": "sweep", "workloads": [],
                            "policies": ["Norm"]})
        assert "workloads" in _errors_by_field(excinfo)


# ---------------------------------------------------------------------------
# Priority queue
# ---------------------------------------------------------------------------

class TestPriorityQueue:
    def test_priority_then_fifo_order(self):
        async def scenario():
            queue = PriorityJobQueue()
            queue.put("faults-a", 2)
            queue.put("run-a", 0)
            queue.put("sweep-a", 1)
            queue.put("run-b", 0)
            order = [await queue.get() for _ in range(4)]
            assert order == ["run-a", "run-b", "sweep-a", "faults-a"]
        asyncio.run(scenario())

    def test_close_drains_then_returns_none(self):
        async def scenario():
            queue = PriorityJobQueue()
            queue.put("only", 1)
            queue.close()
            assert await queue.get() == "only"
            assert await queue.get() is None
            with pytest.raises(RuntimeError):
                queue.put("late", 0)
        asyncio.run(scenario())

    def test_cancel_pending_returns_queue_order(self):
        queue = PriorityJobQueue()
        queue.put("b", 5)
        queue.put("a", 1)
        assert queue.cancel_pending() == ["a", "b"]
        assert queue.depth == 0


# ---------------------------------------------------------------------------
# Job store dedupe
# ---------------------------------------------------------------------------

class TestJobStore:
    def test_same_digest_dedupes_to_one_job(self):
        store = JobStore()
        spec = parse_job_spec(SMALL_RUN)
        job1, deduped1 = store.submit(spec)
        job2, deduped2 = store.submit(parse_job_spec(dict(SMALL_RUN)))
        assert not deduped1 and deduped2
        assert job1.id == job2.id
        assert len(store) == 1

    def test_failed_job_does_not_absorb_resubmission(self):
        store = JobStore()
        spec = parse_job_spec(SMALL_RUN)
        job1, _ = store.submit(spec)
        store.mark_failed(job1, "boom")
        job2, deduped = store.submit(spec)
        assert not deduped
        assert job2.id != job1.id

    def test_counts_cover_every_state(self):
        store = JobStore()
        assert store.counts() == {state: 0 for state in JobState.ALL}


# ---------------------------------------------------------------------------
# Loopback server harness
# ---------------------------------------------------------------------------

class ServerHandle:
    """Runs a real ReproServer on an ephemeral port in a thread."""

    def __init__(self, tmp_path, workers=2, drain_timeout=10.0):
        self.server = None
        self._ready = threading.Event()
        self._cache_dir = tmp_path / "serve_cache"
        self._workers = workers
        self._drain_timeout = drain_timeout
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._amain())

    async def _amain(self):
        self.server = ReproServer(
            host="127.0.0.1", port=0, workers=self._workers,
            drain_timeout=self._drain_timeout,
            runner=Runner(cache_dir=self._cache_dir),
        )
        await self.server.start()
        self._ready.set()
        await self.server._shutdown.wait()
        await self.server.shutdown()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "server never became ready"
        return self

    def __exit__(self, *_exc):
        self.server.request_shutdown()
        self._thread.join(30)
        assert not self._thread.is_alive(), "server thread leaked"

    @property
    def port(self):
        return self.server.port

    def request(self, method, path, body=None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}", data=data,
            method=method, headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def wait_for(self, job_id, timeout=60.0):
        deadline = host_now() + timeout
        while host_now() < deadline:
            _, status = self.request("GET", f"/jobs/{job_id}")
            if status["state"] in (JobState.COMPLETED, JobState.FAILED,
                                   JobState.CANCELLED):
                return status
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never finished")


# ---------------------------------------------------------------------------
# Loopback end-to-end
# ---------------------------------------------------------------------------

class TestLoopbackEndToEnd:
    def test_submit_twice_executes_once_bit_identical(self, tmp_path):
        """The acceptance-criteria scenario: two submissions of one
        digest execute once, return bit-identical payloads, and count
        exactly one dedupe in /metrics."""
        with ServerHandle(tmp_path) as handle:
            status1, sub1 = handle.request("POST", "/jobs", SMALL_RUN)
            assert status1 == 202
            status2, sub2 = handle.request("POST", "/jobs",
                                           dict(SMALL_RUN))
            assert status2 == 200
            assert sub2["deduped"] is True
            assert sub1["id"] == sub2["id"]
            assert sub1["digest"] == sub2["digest"]

            final = handle.wait_for(sub1["id"])
            assert final["state"] == JobState.COMPLETED

            _, result1 = handle.request(
                "GET", f"/jobs/{sub1['id']}/result")
            _, result2 = handle.request(
                "GET", f"/jobs/{sub2['id']}/result")
            assert result1 == result2
            assert result1["digest"] == sub1["digest"]

            # exactly one execution, bit-identical to a direct Runner
            # run of the same config (fresh runner, same cache dir is
            # NOT shared - the result must match by determinism alone)
            expected = Runner(cache_dir=tmp_path / "direct").run(
                parse_job_spec(SMALL_RUN).configs[0])
            assert result1["result"] == result_to_dict(expected)

            _, metrics = handle.request("GET", "/metrics")
            counters = metrics["counters"]
            assert counters["serve.jobs.submitted"] == 2
            assert counters["serve.jobs.deduped"] == 1
            assert counters["serve.jobs.completed"] == 1

    def test_resubmit_after_completion_is_cached(self, tmp_path):
        with ServerHandle(tmp_path) as handle:
            _, sub1 = handle.request("POST", "/jobs", SMALL_RUN)
            handle.wait_for(sub1["id"])
            status, sub2 = handle.request("POST", "/jobs", SMALL_RUN)
            assert status == 200
            assert sub2["cached"] is True
            assert sub2["id"] == sub1["id"]

    def test_disk_cache_short_circuits_fresh_store(self, tmp_path):
        """A digest already in .repro_cache completes with no queueing,
        even though this server never executed it."""
        config = parse_job_spec(SMALL_RUN).configs[0]
        Runner(cache_dir=tmp_path / "serve_cache").run(config)
        with ServerHandle(tmp_path) as handle:
            status, sub = handle.request("POST", "/jobs", SMALL_RUN)
            assert status == 200
            assert sub["state"] == JobState.COMPLETED
            assert sub["cached"] is True
            _, metrics = handle.request("GET", "/metrics")
            assert metrics["counters"]["serve.jobs.deduped"] == 1

    def test_validation_error_is_structured_400(self, tmp_path):
        with ServerHandle(tmp_path) as handle:
            status, body = handle.request(
                "POST", "/jobs", {"kind": "run", "workload": "nope"})
            assert status == 400
            assert body["error"]["code"] == "invalid-spec"
            fields = {e["field"] for e in body["error"]["errors"]}
            assert fields == {"workload"}

    def test_invalid_json_is_structured_400(self, tmp_path):
        with ServerHandle(tmp_path) as handle:
            request = urllib.request.Request(
                f"http://127.0.0.1:{handle.port}/jobs",
                data=b"{not json", method="POST")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 400
            body = json.loads(excinfo.value.read())
            assert body["error"]["code"] == "invalid-json"

    def test_unknown_job_and_endpoint_404(self, tmp_path):
        with ServerHandle(tmp_path) as handle:
            status, body = handle.request("GET", "/jobs/job-999999")
            assert status == 404
            assert body["error"]["code"] == "unknown-job"
            status, body = handle.request("GET", "/nope")
            assert status == 404
            assert body["error"]["code"] == "unknown-endpoint"

    def test_result_before_completion_conflicts(self, tmp_path):
        with ServerHandle(tmp_path) as handle:
            _, sub = handle.request("POST", "/jobs", SMALL_RUN)
            status, body = handle.request(
                "GET", f"/jobs/{sub['id']}/result")
            if status == 409:   # may legitimately finish very fast
                assert body["error"]["code"] == "job-not-finished"
            handle.wait_for(sub["id"])

    def test_method_not_allowed(self, tmp_path):
        with ServerHandle(tmp_path) as handle:
            status, body = handle.request("POST", "/healthz", {})
            assert status == 405
            assert body["error"]["code"] == "method-not-allowed"

    def test_healthz_shape(self, tmp_path):
        with ServerHandle(tmp_path) as handle:
            status, body = handle.request("GET", "/healthz")
            assert status == 200
            assert body["status"] == "ok"
            assert body["workers"] == 2
            assert set(body["jobs"]) == set(JobState.ALL)

    def test_jobs_listing(self, tmp_path):
        with ServerHandle(tmp_path) as handle:
            _, sub = handle.request("POST", "/jobs", SMALL_RUN)
            _, listing = handle.request("GET", "/jobs")
            assert [job["id"] for job in listing["jobs"]] == [sub["id"]]
            handle.wait_for(sub["id"])


# ---------------------------------------------------------------------------
# Concurrency: one digest, many racing submissions
# ---------------------------------------------------------------------------

class TestConcurrentSubmissions:
    def test_racing_submissions_execute_once(self, tmp_path):
        with ServerHandle(tmp_path) as handle:
            responses = []
            lock = threading.Lock()

            def submit():
                response = handle.request("POST", "/jobs",
                                          dict(SMALL_RUN))
                with lock:
                    responses.append(response)

            threads = [threading.Thread(target=submit)
                       for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30)
            assert len(responses) == 8
            ids = {body["id"] for _, body in responses}
            assert len(ids) == 1, "racing submissions created >1 job"
            job_id = ids.pop()
            handle.wait_for(job_id)
            _, metrics = handle.request("GET", "/metrics")
            counters = metrics["counters"]
            assert counters["serve.jobs.submitted"] == 8
            assert counters["serve.jobs.deduped"] == 7
            assert counters["serve.jobs.completed"] == 1
            # single execution observed by the server's own runner
            assert handle.server.runner.simulated == 1


# ---------------------------------------------------------------------------
# Graceful shutdown
# ---------------------------------------------------------------------------

class TestGracefulShutdown:
    def test_drain_completes_queued_jobs(self, tmp_path):
        """Shutdown immediately after submission still delivers the
        result: the drain phase lets queued work finish."""
        handle = ServerHandle(tmp_path, workers=1, drain_timeout=120.0)
        with handle:
            _, sub = handle.request("POST", "/jobs", SMALL_RUN)
        # __exit__ ran request_shutdown + drain; inspect final state
        job = handle.server.store.get(sub["id"])
        assert job.state == JobState.COMPLETED
        assert job.results is not None

    def test_zero_deadline_cancels_queued_jobs(self, tmp_path):
        """With no drain budget, queued jobs are cancelled, counted,
        and evicted from the dedupe index."""
        handle = ServerHandle(tmp_path, workers=1, drain_timeout=0.0)
        with handle:
            subs = [handle.request("POST", "/jobs",
                                   {**SMALL_RUN, "seed": seed})[1]
                    for seed in range(1, 4)]
        states = {handle.server.store.get(sub["id"]).state
                  for sub in subs}
        # the first may be running (then cancelled) or even completed;
        # the ones still queued must be cancelled, never silently lost
        assert states <= {JobState.COMPLETED, JobState.CANCELLED}
        assert JobState.CANCELLED in states
        counts = handle.server.store.counts()
        assert counts[JobState.QUEUED] == 0
        assert counts[JobState.RUNNING] == 0


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestServeCLI:
    def test_rejects_zero_workers(self, capsys):
        assert main(["serve", "--workers", "0"]) == 1
        err = capsys.readouterr().err
        assert "--workers must be >= 1" in err
        assert "Traceback" not in err

    def test_rejects_negative_drain_timeout(self, capsys):
        assert main(["serve", "--drain-timeout", "-1"]) == 1
        assert "--drain-timeout cannot be negative" in \
            capsys.readouterr().err

    def test_rejects_out_of_range_port(self, capsys):
        assert main(["serve", "--port", "70000"]) == 1
        assert "port must be in [0, 65535]" in capsys.readouterr().err

    def test_port_in_use_exits_one_with_clear_message(self, capsys):
        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            assert main(["serve", "--port", str(port)]) == 1
            err = capsys.readouterr().err
            assert "already in use" in err
            assert str(port) in err
            assert "Traceback" not in err
        finally:
            blocker.close()

    def test_server_rejects_bad_workers_directly(self):
        with pytest.raises(ServeError):
            ReproServer(workers=0)
