"""simlint v2: the flow rules (SIM011-SIM013), SIM100, cache, SARIF.

Fixtures are written to ``tmp_path`` as little multi-module packages so
the interprocedural machinery (import resolution, cross-module taint,
annotation-based ownership) is exercised for real, not just the
single-file fast path.  The digest-stability section pins cache digests
across the serve-layer locking changes: adding locks must never move a
cache key.
"""

import hashlib
import json
import textwrap

from repro.cli import main
from repro.lint import RULESET_VERSION, LintOptions, analyze_paths, lint_source
from repro.lint.cache import AnalysisCache
from repro.lint.engine import extract_suppressions
from repro.lint.sarif import sarif_report, validate_sarif


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def ids(findings):
    return [f.rule_id for f in findings]


def rule_ids(source, **kwargs):
    return ids(lint_source(textwrap.dedent(source), **kwargs))


# --------------------------------------------------------------------------
# SIM011: nondeterminism reaching digest sinks
# --------------------------------------------------------------------------

def test_sim011_direct_taint_in_sink():
    findings = lint_source(textwrap.dedent("""\
        def cache_key(name):
            return hash(name)
    """))
    assert ids(findings) == ["SIM011"]
    assert "PYTHONHASHSEED" in findings[0].message

def test_sim011_subsumes_sim001_at_witnessed_source():
    # Without SIM011 the hash() call is a plain SIM001; with the
    # interprocedural witness the syntactic finding is dropped.
    src = "def cache_key(name):\n    return hash(name)\n"
    with_flow = ids(lint_source(src))
    without_flow = ids(lint_source(src, options=LintOptions(ignore=["SIM011"])))
    assert with_flow == ["SIM011"]
    assert without_flow == ["SIM001"]

def test_sim011_interprocedural_witness_across_modules(tmp_path):
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/util.py": """\
            def _mix(name):
                return hash(name) & 0x7FFFFFFF
        """,
        "pkg/config.py": """\
            from pkg.util import _mix

            def cache_key(cfg):
                return _mix(cfg)
        """,
    })
    findings = analyze_paths([tmp_path]).findings
    assert ids(findings) == ["SIM011"]
    message = findings[0].message
    # Witness runs source-first across both files.
    assert message.index("util.py") < message.index("config.py")
    assert "hash() is randomized" in message
    assert " -> " in message

def test_sim011_tainted_argument_into_sink(tmp_path):
    write_tree(tmp_path, {
        "mod.py": """\
            def cache_key(payload):
                return payload

            def save(name):
                return cache_key(hash(name))
        """,
    })
    findings = analyze_paths([tmp_path]).findings
    assert any("tainted argument flows into digest sink" in f.message
               for f in findings)

def test_sim011_set_order_reaches_sink():
    findings = lint_source(textwrap.dedent("""\
        def cache_key(items):
            return tuple(set(items))
    """))
    assert "SIM011" in ids(findings)
    assert "order" in findings[0].message

def test_sim011_sorted_sanitizes_set_order():
    assert rule_ids("""\
        def cache_key(items):
            return tuple(sorted(set(items)))
    """) == []

def test_sim011_clean_helpers_are_clean():
    assert rule_ids("""\
        import zlib

        def _mix(name):
            return zlib.crc32(name.encode())

        def cache_key(name):
            return _mix(name)
    """) == []

def test_sim011_suppression_at_sink():
    assert rule_ids("""\
        def cache_key(name):
            return hash(name)   # simlint: ignore[SIM011, SIM001] -- test fixture
    """) == []


# --------------------------------------------------------------------------
# SIM012: cache-key completeness
# --------------------------------------------------------------------------

SIM012_MISSING = """\
    from dataclasses import dataclass

    @dataclass
    class Config:
        a: int = 1
        b: int = 2

        def cache_key(self):
            return (self.a,)
"""

def test_sim012_flags_unkeyed_field():
    findings = lint_source(textwrap.dedent(SIM012_MISSING))
    assert ids(findings) == ["SIM012"]
    assert "'b'" in findings[0].message
    assert "CACHE_KEY_EXCLUDED" in findings[0].message

def test_sim012_registry_entry_excuses_field():
    src = SIM012_MISSING.replace(
        "from dataclasses import dataclass",
        "from dataclasses import dataclass\n\n"
        "    CACHE_KEY_EXCLUDED = {'b': 'observe-only knob'}",
    )
    assert rule_ids(src) == []

def test_sim012_stale_registry_entry():
    src = SIM012_MISSING.replace(
        "from dataclasses import dataclass",
        "from dataclasses import dataclass\n\n"
        "    CACHE_KEY_EXCLUDED = {'b': 'observe-only', 'zz': 'left behind'}",
    )
    findings = lint_source(textwrap.dedent(src))
    assert ids(findings) == ["SIM012"]
    assert "stale" in findings[0].message and "'zz'" in findings[0].message

def test_sim012_contradictory_registry_entry():
    src = SIM012_MISSING.replace(
        "from dataclasses import dataclass",
        "from dataclasses import dataclass\n\n"
        "    CACHE_KEY_EXCLUDED = {'a': 'wrong', 'b': 'observe-only'}",
    )
    findings = lint_source(textwrap.dedent(src))
    assert ids(findings) == ["SIM012"]
    assert "pick one" in findings[0].message

def test_sim012_reads_through_properties():
    # cache_key() touches ``policy`` only via the ``policy_name``
    # property - the closure walk must still count it as keyed.
    assert rule_ids("""\
        from dataclasses import dataclass

        @dataclass
        class Config:
            policy: str = "Norm"

            @property
            def policy_name(self):
                return self.policy

            def cache_key(self):
                return (self.policy_name,)
    """) == []

def test_sim012_plain_class_without_key_is_exempt():
    assert rule_ids("""\
        from dataclasses import dataclass

        @dataclass
        class Stats:
            hits: int = 0
            misses: int = 0
    """) == []

def test_sim012_suppression():
    src = SIM012_MISSING.replace(
        "def cache_key(self):",
        "def cache_key(self):   # simlint: ignore[SIM012] -- fixture",
    )
    assert rule_ids(src) == []


# --------------------------------------------------------------------------
# SIM013: thread-shared mutation outside a lock
# --------------------------------------------------------------------------

SIM013_STORE = """\
    import threading

    class Store:   # simlint: thread-shared
        def __init__(self):
            self._lock = threading.Lock()
            self._jobs = {}
            self.count = 0
"""

def test_sim013_flags_unlocked_self_mutation():
    findings = lint_source(textwrap.dedent(SIM013_STORE + """\

        def poke(store: Store):
            store.count = 1
    """))
    assert ids(findings) == ["SIM013"]
    assert "'count'" in findings[0].message
    assert "poke" in findings[0].message

def test_sim013_flags_mutator_method_calls():
    findings = lint_source(textwrap.dedent(SIM013_STORE + """\

        def wipe(store: Store):
            store._jobs.clear()
    """))
    assert ids(findings) == ["SIM013"]
    assert "'_jobs'" in findings[0].message

def test_sim013_lock_scope_is_clean():
    assert rule_ids(SIM013_STORE + """\

        def poke(store: Store):
            with store._lock:
                store.count = 1
                store._jobs.clear()
    """) == []

def test_sim013_init_is_exempt():
    # The __init__ self-assignments in SIM013_STORE itself must not fire.
    assert rule_ids(SIM013_STORE) == []

def test_sim013_closure_inherits_annotation():
    # The callback runs on another thread; ownership flows into the
    # nested function through the enclosing parameter annotation.
    findings = lint_source(textwrap.dedent(SIM013_STORE + """\

        def submit(store: Store):
            def on_done():
                store.count += 1
            return on_done
    """))
    assert ids(findings) == ["SIM013"]

def test_sim013_unmarked_class_is_exempt():
    assert rule_ids("""\
        class Plain:
            def __init__(self):
                self.count = 0

        def poke(p: Plain):
            p.count = 1
    """) == []

def test_sim013_suppression():
    assert rule_ids(SIM013_STORE + """\

        def poke(store: Store):
            store.count = 1   # simlint: ignore[SIM013] -- fixture
    """) == []


# --------------------------------------------------------------------------
# SIM100: stale suppressions; tokenizer-backed comment parsing
# --------------------------------------------------------------------------

def test_sim100_reports_unused_suppression():
    findings = lint_source("x = 1   # simlint: ignore[SIM001]\n")
    assert ids(findings) == ["SIM100"]
    assert "matches no finding" in findings[0].message

def test_sim100_not_reported_when_suppression_used():
    assert rule_ids("x = hash('a')   # simlint: ignore[SIM001] -- fixture\n") == []

def test_sim100_can_be_disabled():
    findings = lint_source("x = 1   # simlint: ignore[SIM001]\n",
                           options=LintOptions(report_unused=False))
    assert findings == []

def test_suppression_inside_string_literal_is_inert():
    src = "s = 'x  # simlint: ignore[SIM001]'\ny = hash('a')\n"
    assert extract_suppressions(src) == {}
    assert ids(lint_source(src)) == ["SIM001"]


# --------------------------------------------------------------------------
# Incremental cache
# --------------------------------------------------------------------------

DIRTY = "x = hash('a')\n"
CLEAN = "import zlib\nx = zlib.crc32(b'a')\n"

def test_cache_warm_run_skips_reanalysis(tmp_path):
    tree = write_tree(tmp_path / "tree", {"a.py": DIRTY, "b.py": CLEAN})
    cache_dir = tmp_path / "cache"
    cold = analyze_paths([tree], cache_dir=cache_dir)
    warm = analyze_paths([tree], cache_dir=cache_dir)
    assert (cold.analyzed, cold.cached) == (2, 0)
    assert (warm.analyzed, warm.cached) == (0, 2)
    assert ids(cold.findings) == ids(warm.findings) == ["SIM001"]

def test_cache_invalidates_only_edited_file(tmp_path):
    tree = write_tree(tmp_path / "tree", {"a.py": DIRTY, "b.py": CLEAN})
    cache_dir = tmp_path / "cache"
    analyze_paths([tree], cache_dir=cache_dir)
    (tree / "a.py").write_text(CLEAN)
    warm = analyze_paths([tree], cache_dir=cache_dir)
    assert (warm.analyzed, warm.cached) == (1, 1)
    assert warm.findings == []

def test_cache_invalidates_on_ruleset_bump(tmp_path):
    tree = write_tree(tmp_path / "tree", {"a.py": DIRTY})
    cache_dir = tmp_path / "cache"
    analyze_paths([tree], cache_dir=cache_dir)
    digest = hashlib.sha256(DIRTY.encode()).hexdigest()
    path = str(tree / "a.py")
    same = AnalysisCache(cache_dir, RULESET_VERSION)
    assert same.get(path, digest) is not None
    bumped = AnalysisCache(cache_dir, RULESET_VERSION + ".bump")
    assert bumped.get(path, digest) is None

def test_cache_partial_run_keeps_other_entries(tmp_path):
    # Linting a subdirectory (or pre-commit linting two staged files)
    # must not evict the rest of the tree's warm entries.
    tree = write_tree(tmp_path / "tree", {"a.py": DIRTY, "sub/b.py": CLEAN})
    cache_dir = tmp_path / "cache"
    analyze_paths([tree], cache_dir=cache_dir)
    analyze_paths([tree / "sub"], cache_dir=cache_dir)
    warm = analyze_paths([tree], cache_dir=cache_dir)
    assert (warm.analyzed, warm.cached) == (0, 2)

def test_cache_prunes_deleted_files(tmp_path):
    tree = write_tree(tmp_path / "tree", {"a.py": DIRTY, "b.py": CLEAN})
    cache_dir = tmp_path / "cache"
    analyze_paths([tree], cache_dir=cache_dir)
    (tree / "a.py").unlink()
    analyze_paths([tree], cache_dir=cache_dir)
    entries = json.loads((cache_dir / "cache.json").read_text())["entries"]
    assert list(entries) == [str(tree / "b.py")]

def test_cache_preserves_project_findings(tmp_path):
    # SIM011 crosses files; the warm run recomputes the fixpoint from
    # cached summaries and must reach the same verdict.
    tree = write_tree(tmp_path / "tree", {
        "util.py": "def mix(name):\n    return hash(name)\n",
        "conf.py": "from util import mix\n\n"
                   "def cache_key(cfg):\n    return mix(cfg)\n",
    })
    cache_dir = tmp_path / "cache"
    cold = analyze_paths([tree], cache_dir=cache_dir)
    warm = analyze_paths([tree], cache_dir=cache_dir)
    assert warm.analyzed == 0
    assert ids(cold.findings) == ids(warm.findings) == ["SIM011"]
    assert cold.findings[0].message == warm.findings[0].message


# --------------------------------------------------------------------------
# Parallel analysis
# --------------------------------------------------------------------------

def test_parallel_jobs_match_serial(tmp_path):
    tree = write_tree(tmp_path / "tree", {
        "a.py": DIRTY,
        "b.py": CLEAN,
        "c.py": "import time\nt = time.time()\n",
        "d.py": "def cache_key(name):\n    return hash(name)\n",
    })
    serial = analyze_paths([tree], jobs=1)
    parallel = analyze_paths([tree], jobs=2)
    assert [f.format_text() for f in serial.findings] == \
           [f.format_text() for f in parallel.findings]


# --------------------------------------------------------------------------
# SARIF output
# --------------------------------------------------------------------------

def test_sarif_report_is_structurally_valid():
    findings = lint_source(DIRTY + "import time\nt = time.time()\n")
    doc = sarif_report(findings)
    assert validate_sarif(doc) == []
    run = doc["runs"][0]
    results = run["results"]
    assert len(results) == len(findings)
    rules = run["tool"]["driver"]["rules"]
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    for result in results:
        assert result["ruleIndex"] == rule_index[result["ruleId"]]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1

def test_sarif_validator_rejects_broken_documents():
    doc = sarif_report(lint_source(DIRTY))
    del doc["version"]
    doc["runs"][0]["results"][0]["ruleId"] = "SIM999"
    errors = validate_sarif(doc)
    assert errors

def test_cli_sarif_format(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    assert main(["lint", "--no-cache", "--format", "sarif", str(dirty)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"][0]["ruleId"] == "SIM001"

def test_cli_sarif_output_file(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    out = tmp_path / "report.sarif"
    assert main(["lint", "--no-cache", "--format", "sarif",
                 "--output", str(out), str(dirty)]) == 1
    doc = json.loads(out.read_text())
    assert validate_sarif(doc) == []
    capsys.readouterr()


# --------------------------------------------------------------------------
# CLI: cache flags, stats, repro check
# --------------------------------------------------------------------------

def test_cli_cache_stats(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    cache_dir = tmp_path / "cache"
    args = ["lint", "--stats", "--cache-dir", str(cache_dir), str(dirty)]
    assert main(args) == 1
    assert "1 analyzed, 0 from cache" in capsys.readouterr().err
    assert main(args) == 1
    assert "0 analyzed, 1 from cache" in capsys.readouterr().err

def test_cli_unused_suppression_toggle(tmp_path, capsys):
    stale = tmp_path / "stale.py"
    stale.write_text("x = 1   # simlint: ignore[SIM001]\n")
    assert main(["lint", "--no-cache", str(stale)]) == 1
    assert "SIM100" in capsys.readouterr().out
    assert main(["lint", "--no-cache",
                 "--no-report-unused-suppressions", str(stale)]) == 0
    capsys.readouterr()

def test_check_skips_missing_tools(tmp_path, capsys, monkeypatch):
    import repro.lint.cli as lint_cli
    monkeypatch.setattr(lint_cli.shutil, "which", lambda name: None)
    clean = tmp_path / "clean.py"
    clean.write_text(CLEAN)
    assert main(["check", "--no-cache", str(clean)]) == 0
    out = capsys.readouterr().out
    assert out.count("skipped (not installed)") == 2

def test_check_require_tools_fails_when_missing(tmp_path, capsys, monkeypatch):
    import repro.lint.cli as lint_cli
    monkeypatch.setattr(lint_cli.shutil, "which", lambda name: None)
    clean = tmp_path / "clean.py"
    clean.write_text(CLEAN)
    assert main(["check", "--no-cache", "--require-tools", str(clean)]) == 1
    capsys.readouterr()

def test_check_fails_on_findings_and_writes_sarif(tmp_path, capsys, monkeypatch):
    import repro.lint.cli as lint_cli
    monkeypatch.setattr(lint_cli.shutil, "which", lambda name: None)
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    sarif_path = tmp_path / "simlint.sarif"
    assert main(["check", "--no-cache", "--sarif", str(sarif_path),
                 str(dirty)]) == 1
    assert validate_sarif(json.loads(sarif_path.read_text())) == []
    capsys.readouterr()


# --------------------------------------------------------------------------
# Digest stability across the serve-layer locking changes
# --------------------------------------------------------------------------

def test_cache_digests_unchanged_by_locking():
    # Pinned before JobStore/WorkerPool grew their locks: adding
    # synchronisation must never move a cache key.
    from repro.sim.config import SimConfig
    small = SimConfig("hmmer", policy="Norm").scaled(0.05)
    assert small.cache_digest() == "a1c5ae8b70ec20ac7a1fbd05"
    assert SimConfig("lbm").cache_digest() == "244de89cfa2ec43abc490663"

def test_faults_digest_unchanged_by_registry():
    from repro.faults.config import FaultConfig
    from repro.sim.config import SimConfig
    config = SimConfig("zeusmp", policy="BE-Mellow+SC", faults=FaultConfig())
    assert config.cache_digest() == "7500e76450aa31102f58d533"

def test_job_spec_digest_unchanged():
    from repro.serve.schemas import parse_job_spec
    spec = parse_job_spec(
        {"kind": "run", "workload": "lbm", "policy": "Norm", "scale": 0.05})
    assert spec.digest == "8d238a81b934d6ab2c4bc890"


# --------------------------------------------------------------------------
# The whole tree lints clean under the v2 rules
# --------------------------------------------------------------------------

def test_whole_tree_is_lint_clean():
    report = analyze_paths(["src", "tests", "benchmarks"])
    assert report.findings == []
    assert report.files > 100
