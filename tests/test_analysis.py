"""Tests for lifetime post-processing and report formatting."""


import pytest

from repro.analysis.lifetime import (
    best_static_policy,
    capped,
    geomean,
    lifetime_sweep,
    meets_lifetime_target,
    relative_ipcs,
    relative_lifetimes,
)
from repro.analysis.report import Table, render
from repro.endurance.wear import BankWearRecord
from repro.sim.stats import RunResult


def make_result(policy="Norm", ipc=1.0, lifetime=10.0, slow_writes=0.0,
                normal_writes=100.0):
    result = RunResult(
        workload="test", policy=policy, slow_factor=3.0, num_banks=1,
        expo_factor=2.0, window_ns=1e6, ipc=ipc, lifetime_years=lifetime,
        blocks_per_bank=1000,
    )
    record = BankWearRecord(normal_writes=normal_writes)
    if slow_writes:
        record.slow_writes_by_factor[3.0] = slow_writes
    result.wear_records = [record]
    return result


class TestGeomean:
    def test_simple(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_floor_protects_zero(self):
        assert geomean([0.0, 1.0]) > 0


class TestCapped:
    def test_inf_capped(self):
        assert capped(float("inf")) == 1e4

    def test_finite_untouched(self):
        assert capped(42.0) == 42.0


class TestRelative:
    def test_relative_lifetimes(self):
        results = {"Norm": make_result(lifetime=10.0),
                   "Slow": make_result("Slow", lifetime=90.0)}
        rel = relative_lifetimes(results)
        assert rel["Norm"] == 1.0
        assert rel["Slow"] == pytest.approx(9.0)

    def test_relative_ipcs(self):
        results = {"Norm": make_result(ipc=1.0),
                   "Slow": make_result("Slow", ipc=0.8)}
        rel = relative_ipcs(results)
        assert rel["Slow"] == pytest.approx(0.8)


class TestLifetimeSweep:
    def test_norm_only_flat(self):
        sweep = lifetime_sweep(make_result())
        values = list(sweep.values())
        assert all(v == pytest.approx(values[0]) for v in values)

    def test_slow_writes_grow_with_expo(self):
        sweep = lifetime_sweep(make_result(slow_writes=100, normal_writes=0))
        assert sweep[3.0] > sweep[1.0]


class TestTargets:
    def test_meets_target(self):
        assert meets_lifetime_target(make_result(lifetime=8.5))
        assert meets_lifetime_target(make_result(lifetime=6.5))   # tolerance
        assert not meets_lifetime_target(make_result(lifetime=3.0))

    def test_best_static_prefers_fast_qualifying(self):
        results = {
            "fast_short": make_result(ipc=2.0, lifetime=2.0),
            "ok": make_result(ipc=1.5, lifetime=9.0),
            "slow_long": make_result(ipc=0.5, lifetime=80.0),
        }
        assert best_static_policy(results) == "ok"

    def test_best_static_falls_back_to_longest_lived(self):
        results = {
            "a": make_result(ipc=2.0, lifetime=2.0),
            "b": make_result(ipc=1.0, lifetime=5.0),
        }
        assert best_static_policy(results) == "b"


class TestReport:
    def test_add_row_validates_width(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_extraction(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_render_contains_everything(self):
        table = Table("My Title", ["name", "value"])
        table.add_row("x", 1.5)
        table.notes.append("a note")
        text = render(table)
        assert "My Title" in text
        assert "name" in text and "value" in text
        assert "1.500" in text
        assert "note: a note" in text

    def test_render_formats_inf_and_large(self):
        table = Table("t", ["v"])
        table.add_row(float("inf"))
        table.add_row(123456.0)
        text = render(table)
        assert "inf" in text
        assert "123,456" in text

    def test_render_empty_table(self):
        assert "t" in render(Table("t", ["a"]))
