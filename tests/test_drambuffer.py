"""Tests for the DRAM write-coalescing buffer baseline."""

import pytest

from repro.memory.drambuffer import DramWriteBuffer


def test_insert_below_capacity_never_drains():
    buffer = DramWriteBuffer(4)
    for block in range(4):
        assert buffer.insert(block) is None
    assert len(buffer) == 4
    assert buffer.full


def test_hit_coalesces():
    buffer = DramWriteBuffer(4)
    buffer.insert(1)
    assert buffer.insert(1) is None
    assert buffer.stats.coalesced == 1
    assert buffer.stats.coalesce_rate == pytest.approx(0.5)
    assert len(buffer) == 1


def test_full_miss_drains_lru():
    buffer = DramWriteBuffer(2)
    buffer.insert(1)
    buffer.insert(2)
    drained = buffer.insert(3)
    assert drained == 1
    assert buffer.stats.drains_out == 1
    assert not buffer.contains(1)
    assert buffer.contains(2) and buffer.contains(3)


def test_hit_refreshes_recency():
    buffer = DramWriteBuffer(2)
    buffer.insert(1)
    buffer.insert(2)
    buffer.insert(1)            # 1 becomes MRU
    assert buffer.insert(3) == 2


def test_drain_one():
    buffer = DramWriteBuffer(3)
    buffer.insert(7)
    buffer.insert(8)
    assert buffer.drain_one() == 7
    assert buffer.drain_one() == 8
    assert buffer.drain_one() is None


def test_invalid_capacity():
    with pytest.raises(ValueError):
        DramWriteBuffer(0)


def test_streaming_writebacks_do_not_coalesce():
    """Write-once streams pass straight through (lbm-style traffic)."""
    buffer = DramWriteBuffer(8)
    drains = sum(1 for b in range(100) if buffer.insert(b) is not None)
    assert drains == 92
    assert buffer.stats.coalesce_rate == 0.0


def test_integration_never_increases_resistive_writes():
    """End-to-end: the buffer can only remove writes (small window noise
    from the shifted warmup segment aside)."""
    from repro import SimConfig, run_simulation
    fast = dict(workload="milc", warmup_accesses=5000,
                measure_accesses=12000, llc_size_bytes=256 * 1024,
                functional_warmup_max=120000)
    plain = run_simulation(SimConfig(policy="Norm", **fast))
    buffered = run_simulation(SimConfig(policy="Norm",
                                        dram_buffer_entries=8192, **fast))
    assert buffered.writes_issued_normal <= plain.writes_issued_normal * 1.05


def test_integration_coalesces_rewrite_traffic():
    """End-to-end: writeback traffic that revisits a small block set is
    absorbed almost entirely by a buffer larger than the set."""
    import itertools
    from repro import SimConfig
    from repro.cpu.trace import TraceRecord
    from repro.sim.system import System

    def rewrite_trace():
        # Sweep a region larger than the LLC so dirty lines evict quickly,
        # but keep the region smaller than the buffer so every writeback
        # after the first coalesces with its buffered copy.
        for i in itertools.count():
            yield TraceRecord(4, i % 8192, True)

    config = SimConfig(workload="lbm", policy="Norm",
                       warmup_accesses=4000, measure_accesses=12000,
                       llc_size_bytes=64 * 1024,
                       functional_warmup_max=20000,
                       dram_buffer_entries=16384)
    system = System(config)
    system._trace = rewrite_trace()
    system.core.trace = system._trace
    result = system.run()
    assert system.dram_buffer.stats.coalesce_rate > 0.9
    assert result.writes_issued_normal < result.writebacks * 0.2
