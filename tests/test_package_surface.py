"""Package-surface tests: imports, exports, docstrings."""

import importlib
import pkgutil

import pytest

import repro

ALL_MODULES = [
    name for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro.",
    )
]


def test_module_discovery_found_the_tree():
    assert len(ALL_MODULES) > 30
    assert "repro.core.decision" in ALL_MODULES
    assert "repro.memory.controller" in ALL_MODULES


@pytest.mark.parametrize("name", ALL_MODULES)
def test_every_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", ALL_MODULES)
def test_every_module_has_a_docstring(name):
    module = importlib.import_module(name)
    if name.endswith("__main__"):
        return
    assert module.__doc__, f"{name} lacks a module docstring"


def test_top_level_exports_resolve():
    for symbol in repro.__all__:
        assert hasattr(repro, symbol), symbol


def test_top_level_quickstart_symbols():
    assert callable(repro.run_simulation)
    assert repro.SimConfig is not None
    assert len(repro.WORKLOAD_NAMES) == 11
    assert len(repro.PAPER_POLICY_NAMES) == 9


def test_version():
    assert repro.__version__ == "1.0.0"
