"""Checkpoint equivalence gate: snapshot -> restore -> continue must be
bit-identical to running straight through.

The differential matrix mirrors the fastpath oracle suite: every test
runs the same config twice - once uninterrupted, once sliced into
checkpointed segments where each pause round-trips through an actual
snapshot file and a freshly constructed ``System`` - and requires
byte-for-byte equality of the serialized results (and, where enabled,
of the full telemetry bundle).  Property tests push the boundary to
arbitrary access counts and pin double round-trip idempotence: a
restored system must re-capture to the identical snapshot bytes.

Corruption tests pin the failure mode: any truncation or bit flip in a
snapshot file surfaces as a structured
:class:`~repro.checkpoint.CheckpointCorruptionError`, never a silently
wrong resume.  Cache-key tests pin that the checkpoint knobs stay
outside :meth:`SimConfig.cache_key` (sliced and straight runs share
cache entries precisely *because* this suite proves them bit-identical).
"""
from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.export import run_result_to_dict
from repro.checkpoint import (CheckpointCorruptionError, CheckpointError,
                              CheckpointUnsupportedError, capture_state,
                              config_from_dict, config_to_dict,
                              load_snapshot, restore_system, save_snapshot,
                              snapshot_bytes)
from repro.faults import FaultConfig
from repro.hotpath import FASTPATH_ENV
from repro.sim.config import CACHE_KEY_EXCLUDED, SimConfig
from repro.sim.system import System

POLICIES = ["Norm", "BE-Mellow+SC", "Slow+SC"]
WORKLOADS = ["hmmer", "lbm"]
SEEDS = [3, 11]

FAULTS = FaultConfig(wear_acceleration=5e6, spare_lines_per_bank=8,
                     max_write_retries=1)


def _straight_json(config: SimConfig) -> str:
    return json.dumps(run_result_to_dict(System(config).run()),
                      sort_keys=True)


def _sliced_json(config: SimConfig, every: int, tmp_path: Path) -> str:
    """Run sliced: every pause writes a snapshot, a *fresh* System is
    restored from the file, and the run continues there."""
    system = System(dataclasses.replace(config, checkpoint_every=every))
    system.start_run()
    index = 0
    while True:
        result = system.continue_run()
        if result is not None:
            return json.dumps(run_result_to_dict(result), sort_keys=True)
        index += 1
        path = tmp_path / f"slice-{index}.ckpt"
        save_snapshot(system, path)
        system = restore_system(path)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("policy", POLICIES)
def test_sliced_bit_identity(tmp_path: Path, workload: str, policy: str,
                             seed: int) -> None:
    """Policy x workload x seed differential matrix."""
    config = SimConfig(workload=workload, policy=policy,
                       seed=seed).scaled(0.02)
    assert _sliced_json(config, 900, tmp_path) == _straight_json(config)


def test_sliced_crosses_warmup_boundary(tmp_path: Path) -> None:
    """Small slices force pauses inside the timed warmup window too."""
    config = SimConfig(workload="hmmer", policy="BE-Mellow+SC",
                       seed=5).scaled(0.02)
    assert _sliced_json(config, 300, tmp_path) == _straight_json(config)


@pytest.mark.parametrize("workload", ["zeusmp", "lbm"])
def test_sliced_bit_identity_with_faults(tmp_path: Path,
                                         workload: str) -> None:
    """Fault injector RNG streams and per-line endurance state must
    survive the round trip exactly."""
    config = SimConfig(workload=workload, policy="BE-Mellow+SC", seed=7,
                       faults=FAULTS).scaled(0.02)
    assert _sliced_json(config, 800, tmp_path) == _straight_json(config)


def test_sliced_bit_identity_dram_buffer_and_fnw(tmp_path: Path) -> None:
    """Optional subsystems with their own ordered state (DRAM buffer LRU
    order, Flip-N-Write RNG) ride along."""
    config = SimConfig(workload="lbm", policy="Norm", seed=9,
                       dram_buffer_entries=16,
                       flip_n_write=True).scaled(0.02)
    assert _sliced_json(config, 800, tmp_path) == _straight_json(config)


def test_telemetry_bundle_byte_identity_sliced(tmp_path: Path) -> None:
    """The full telemetry bundle must be byte-identical between a sliced
    and a straight run - epochs, trace ring, heatmaps, manifest."""
    bundles = {}
    for mode in ("straight", "sliced"):
        out = tmp_path / f"telemetry-{mode}"
        config = SimConfig(workload="lbm", policy="BE-Mellow+SC", seed=11,
                           telemetry=True,
                           telemetry_dir=str(out)).scaled(0.02)
        if mode == "straight":
            System(config).run()
        else:
            _sliced_json(config, 900, tmp_path)
        bundles[mode] = {path.name: path.read_bytes()
                         for path in sorted(out.iterdir())}
    assert bundles["straight"].keys() == bundles["sliced"].keys()
    for name, payload in bundles["straight"].items():
        assert payload == bundles["sliced"][name], f"{name} diverged"


def test_sliced_bit_identity_sanitizer_armed(
        monkeypatch: pytest.MonkeyPatch, tmp_path: Path) -> None:
    """REPRO_SANITIZE=1 arms the runtime invariant checks; the restored
    run must pass them and still match bit-for-bit."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    config = SimConfig(workload="hmmer", policy="Slow+SC", seed=3,
                       sanitize=True).scaled(0.02)
    assert _sliced_json(config, 700, tmp_path) == _straight_json(config)


def test_sliced_bit_identity_reference_mode(
        monkeypatch: pytest.MonkeyPatch, tmp_path: Path) -> None:
    """With the fastpath disabled the reference drain loop handles the
    pause; the snapshot mode flag records the environment."""
    monkeypatch.setenv(FASTPATH_ENV, "1")
    config = SimConfig(workload="hmmer", policy="BE-Mellow+SC",
                       seed=3).scaled(0.02)
    assert _sliced_json(config, 900, tmp_path) == _straight_json(config)


def test_mode_mismatch_rejected(monkeypatch: pytest.MonkeyPatch,
                                tmp_path: Path) -> None:
    """A snapshot captured under the fastpath must refuse to restore in
    a reference-mode environment (and name the env var)."""
    monkeypatch.delenv(FASTPATH_ENV, raising=False)
    config = SimConfig(workload="hmmer", policy="Norm", seed=3,
                       checkpoint_every=900).scaled(0.02)
    system = System(config)
    system.start_run()
    assert system.continue_run() is None
    path = save_snapshot(system, tmp_path / "fast.ckpt")
    monkeypatch.setenv(FASTPATH_ENV, "1")
    with pytest.raises(CheckpointError, match="REPRO_NO_FASTPATH"):
        restore_system(path)


def test_run_with_checkpoint_dir_writes_snapshots(tmp_path: Path) -> None:
    """checkpoint_dir makes run() drop chronologically sorting snapshot
    files at every pause without changing the result."""
    out = tmp_path / "snaps"
    config = SimConfig(workload="hmmer", policy="Norm", seed=3).scaled(0.02)
    sliced = dataclasses.replace(config, checkpoint_every=900,
                                 checkpoint_dir=str(out))
    result = json.dumps(run_result_to_dict(System(sliced).run()),
                        sort_keys=True)
    assert result == _straight_json(config)
    names = sorted(path.name for path in out.iterdir())
    assert names, "no snapshots written"
    assert all(name.startswith("checkpoint-") and name.endswith(".ckpt")
               for name in names)
    # Each snapshot must itself be loadable and resumable to the same end.
    resumed = restore_system(out / names[-1]).finish_run()
    assert json.dumps(run_result_to_dict(resumed),
                      sort_keys=True) == result


def test_pause_without_dir_is_invisible(tmp_path: Path) -> None:
    """checkpoint_every alone pauses and continues; nothing is written
    and the result is unchanged."""
    config = SimConfig(workload="hmmer", policy="Norm", seed=4).scaled(0.02)
    sliced = dataclasses.replace(config, checkpoint_every=500)
    assert json.dumps(run_result_to_dict(System(sliced).run()),
                      sort_keys=True) == _straight_json(config)


# ---------------------------------------------------------------------------
# Property tests: arbitrary boundaries and round-trip idempotence.
# ---------------------------------------------------------------------------

_PROP_CONFIG = SimConfig(workload="hmmer", policy="BE-Mellow+SC",
                         seed=13).scaled(0.02)
_PROP_STRAIGHT: dict = {}


def _prop_straight_json() -> str:
    if "json" not in _PROP_STRAIGHT:
        _PROP_STRAIGHT["json"] = _straight_json(_PROP_CONFIG)
    return _PROP_STRAIGHT["json"]


@settings(max_examples=8)
@given(every=st.integers(min_value=150, max_value=4000))
def test_checkpoint_at_arbitrary_boundary(tmp_path_factory, every: int
                                          ) -> None:
    """Wherever the pause lands - warmup, measurement, right before the
    end - the sliced run matches the straight one."""
    tmp = tmp_path_factory.mktemp("boundary")
    assert _sliced_json(_PROP_CONFIG, every, tmp) == _prop_straight_json()


@settings(max_examples=6)
@given(every=st.integers(min_value=200, max_value=2500))
def test_double_round_trip_idempotent(tmp_path_factory, every: int) -> None:
    """restore(snapshot) must re-capture to the identical bytes: the
    rebuilt callback closures and identity tables are shape-exact."""
    tmp = tmp_path_factory.mktemp("roundtrip")
    system = System(dataclasses.replace(_PROP_CONFIG,
                                        checkpoint_every=every))
    system.start_run()
    assert system.continue_run() is None
    path = save_snapshot(system, tmp / "first.ckpt")
    first = path.read_bytes()
    assert snapshot_bytes(restore_system(path)) == first


@settings(max_examples=20)
@given(st.builds(
    SimConfig,
    workload=st.sampled_from(["hmmer", "lbm", "zeusmp", "gups"]),
    policy=st.sampled_from(["Norm", "Slow+SC", "BE-Mellow+SC", "E-Norm"]),
    seed=st.integers(min_value=1, max_value=10_000),
    slow_factor=st.sampled_from([2.0, 3.0]),
    num_banks=st.sampled_from([4, 8]),
    checkpoint_every=st.one_of(st.none(),
                               st.integers(min_value=1, max_value=10**6)),
    faults=st.one_of(st.none(), st.builds(
        FaultConfig,
        wear_acceleration=st.sampled_from([1e6, 5e6]),
        spare_lines_per_bank=st.integers(min_value=0, max_value=8),
        max_write_retries=st.integers(min_value=0, max_value=2),
    )),
))
def test_config_codec_round_trip(config: SimConfig) -> None:
    """config -> dict -> JSON -> dict -> config is the identity."""
    data = json.loads(json.dumps(config_to_dict(config), sort_keys=True))
    assert config_from_dict(data) == config


# ---------------------------------------------------------------------------
# Corruption: damaged snapshots fail loudly with a structured error.
# ---------------------------------------------------------------------------


def _one_snapshot(tmp_path: Path) -> Path:
    config = SimConfig(workload="hmmer", policy="Norm", seed=3,
                       checkpoint_every=900).scaled(0.02)
    system = System(config)
    system.start_run()
    assert system.continue_run() is None
    return save_snapshot(system, tmp_path / "good.ckpt")


def test_corrupt_truncated(tmp_path: Path) -> None:
    path = _one_snapshot(tmp_path)
    raw = path.read_bytes()
    for cut in (0, 1, len(raw) // 2, len(raw) - 2):
        path.write_bytes(raw[:cut])
        with pytest.raises(CheckpointCorruptionError) as excinfo:
            load_snapshot(path)
        assert excinfo.value.path == path
        assert excinfo.value.reason


def test_corrupt_bit_flip(tmp_path: Path) -> None:
    """A single flipped bit anywhere in the body is caught (digest,
    base64, zlib, or JSON layer - whichever trips first)."""
    path = _one_snapshot(tmp_path)
    raw = bytearray(path.read_bytes())
    body_at = raw.index(b'"body"') + 10   # inside the base64 payload
    for offset in (body_at, body_at + len(raw) // 3, len(raw) - 20):
        flipped = bytearray(raw)
        flipped[offset] ^= 0x04
        path.write_bytes(bytes(flipped))
        with pytest.raises(CheckpointCorruptionError):
            load_snapshot(path)


def test_corrupt_garbage_and_schema(tmp_path: Path) -> None:
    path = tmp_path / "bad.ckpt"
    path.write_bytes(b"\x00\x01 not json")
    with pytest.raises(CheckpointCorruptionError, match="envelope"):
        load_snapshot(path)
    path.write_text(json.dumps({"schema": 999, "sha256": "0" * 64,
                                "body": ""}))
    with pytest.raises(CheckpointCorruptionError, match="schema"):
        load_snapshot(path)
    path.write_text(json.dumps({"schema": 1}))
    with pytest.raises(CheckpointCorruptionError, match="missing keys"):
        load_snapshot(path)


def test_corrupt_digest_mismatch(tmp_path: Path) -> None:
    path = _one_snapshot(tmp_path)
    envelope = json.loads(path.read_text())
    envelope["sha256"] = "0" * 64
    path.write_text(json.dumps(envelope))
    with pytest.raises(CheckpointCorruptionError, match="digest mismatch"):
        load_snapshot(path)


def test_missing_snapshot_is_not_corruption(tmp_path: Path) -> None:
    with pytest.raises(FileNotFoundError):
        load_snapshot(tmp_path / "never-written.ckpt")


def test_mix_workload_not_checkpointable() -> None:
    """Generator-backed workload mixes cannot be captured; the refusal
    is structured and immediate, not a crash mid-save."""
    system = System(SimConfig(workload="mix_write_heavy", policy="Norm"))
    with pytest.raises(CheckpointUnsupportedError, match="mix"):
        capture_state(system)


def test_checkpoint_every_validated() -> None:
    with pytest.raises(ValueError, match="checkpoint_every"):
        SimConfig(workload="hmmer", checkpoint_every=0)


# ---------------------------------------------------------------------------
# Cache-key discipline: checkpoint knobs never enter the cache key.
# ---------------------------------------------------------------------------


def test_checkpoint_fields_not_in_cache_key(tmp_path: Path) -> None:
    base = SimConfig(workload="lbm", policy="Norm")
    sliced = dataclasses.replace(base, checkpoint_every=5000,
                                 checkpoint_dir=str(tmp_path))
    assert sliced.cache_key() == base.cache_key()
    assert sliced.cache_digest() == base.cache_digest()


def test_checkpoint_fields_registered_as_excluded() -> None:
    assert "checkpoint_every" in CACHE_KEY_EXCLUDED
    assert "checkpoint_dir" in CACHE_KEY_EXCLUDED


def test_cache_digests_pinned() -> None:
    """Adding the checkpoint fields must not have moved any existing
    cache digest; these literals predate the feature."""
    assert (SimConfig(workload="lbm", policy="Norm").cache_digest()
            == "244de89cfa2ec43abc490663")
    faulty = SimConfig(workload="zeusmp", policy="BE-Mellow+SC", seed=42,
                       faults=FaultConfig(wear_acceleration=5e6,
                                          spare_lines_per_bank=8,
                                          max_write_retries=1))
    assert faulty.cache_digest() == "33f4ef3c9c68704638415ff4"
