"""Integration tests: the full system (core + LLC + controller + wear).

These use reduced windows (a few thousand LLC accesses) so the whole file
runs in seconds while still exercising every mechanism end to end.
"""

import pytest

from repro import SimConfig, run_simulation
from repro.sim.system import System

# A 256 KB LLC fills within the short warmup, so writebacks and eager
# writes flow; mechanism behaviour is identical to the 2 MB configuration.
FAST = dict(warmup_accesses=8000, measure_accesses=15000,
            llc_size_bytes=256 * 1024)


def run(workload="GemsFDTD", policy="Norm", **kwargs):
    merged = dict(FAST)
    merged.update(kwargs)
    return run_simulation(SimConfig(workload=workload, policy=policy, **merged))


class TestBasicInvariants:
    @pytest.mark.parametrize("policy", [
        "Norm", "Slow+SC", "B-Mellow+SC", "BE-Mellow+SC", "E-Norm+NC",
    ])
    def test_sane_metrics(self, policy):
        r = run(policy=policy)
        assert r.ipc > 0
        assert r.window_ns > 0
        assert 0 <= r.bank_utilization <= 1.0
        assert 0 <= r.drain_fraction <= 1.0
        assert r.lifetime_years > 0
        assert r.instructions > 0
        assert r.accesses == FAST["measure_accesses"]

    def test_determinism(self):
        a = run(policy="BE-Mellow+SC")
        b = run(policy="BE-Mellow+SC")
        assert a.ipc == b.ipc
        assert a.lifetime_years == b.lifetime_years
        assert a.writes_issued_slow == b.writes_issued_slow
        assert a.cancellations == b.cancellations

    def test_seed_changes_results(self):
        a = run(seed=1)
        b = run(seed=2)
        assert a.ipc != b.ipc

    def test_request_conservation(self):
        """Reads issued to banks >= reads from LLC (cancels re-read nothing;
        every LLC miss produces exactly one fill read)."""
        r = run(policy="Norm")
        assert r.reads_issued >= r.llc_misses * 0.95
        assert r.read_row_hits + r.read_row_misses == r.reads_issued


class TestPolicyBehaviour:
    def test_norm_issues_no_slow_writes(self):
        r = run(policy="Norm")
        assert r.writes_issued_slow == 0
        assert r.writes_issued_normal > 0

    def test_slow_issues_no_normal_writes(self):
        r = run(policy="Slow+SC")
        assert r.writes_issued_normal == 0
        assert r.writes_issued_slow > 0

    def test_slow_extends_lifetime(self):
        norm = run(policy="Norm")
        slow = run(policy="Slow+SC")
        assert slow.lifetime_years > norm.lifetime_years * 2

    def test_bank_aware_mixes_speeds(self):
        r = run(policy="B-Mellow+SC", workload="lbm")
        assert r.writes_issued_slow > 0
        assert r.writes_issued_normal > 0

    def test_bank_aware_improves_lifetime_cheaply(self):
        norm = run(policy="Norm")
        mellow = run(policy="B-Mellow+SC")
        assert mellow.lifetime_years > norm.lifetime_years
        assert mellow.ipc > norm.ipc * 0.9

    def test_eager_only_with_eager_policy(self):
        assert run(policy="Norm").eager_writebacks == 0
        assert run(policy="B-Mellow+SC").eager_writebacks == 0
        assert run(policy="BE-Mellow+SC").eager_writebacks > 0

    def test_eager_writes_are_slow_except_e_norm(self):
        be = run(policy="BE-Mellow+SC")
        assert be.eager_issued > 0
        e_norm = run(policy="E-Norm+NC")
        assert e_norm.writes_issued_slow == 0   # eager but at normal speed

    def test_cancellations_only_with_cancellable_policy(self):
        assert run(policy="Slow").cancellations == 0
        assert run(policy="Slow+SC").cancellations > 0

    def test_e_norm_nc_shortest_lifetime(self):
        """Figure 11's headline: eager + cancellation at normal speed costs
        lifetime (extra writes, no endurance benefit)."""
        norm = run(policy="Norm")
        e_norm = run(policy="E-Norm+NC")
        assert e_norm.lifetime_years < norm.lifetime_years


class TestWearQuota:
    def test_quota_forces_slow_writes_on_heavy_workload(self):
        r = run(workload="lbm", policy="Norm+WQ")
        assert r.writes_issued_slow > 0

    def test_quota_lengthens_lifetime_of_heavy_workload(self):
        # A shorter sample period lets the gate engage several times within
        # the reduced test window.
        norm = run(workload="lbm", policy="Norm", sample_period_ns=50_000)
        quota = run(workload="lbm", policy="Norm+WQ", sample_period_ns=50_000)
        assert quota.lifetime_years > norm.lifetime_years * 1.5

    def test_quota_idle_on_light_workload(self):
        norm = run(workload="hmmer", policy="Norm")
        quota = run(workload="hmmer", policy="Norm+WQ")
        # hmmer is far under quota: behaviour should be unchanged.
        assert quota.writes_issued_slow == 0
        assert quota.ipc == pytest.approx(norm.ipc, rel=0.02)


class TestExpoReevaluation:
    def test_default_expo_matches_recorded_lifetime(self):
        r = run(policy="BE-Mellow+SC")
        assert r.lifetime_for_expo(2.0) == pytest.approx(
            r.lifetime_years, rel=1e-9
        )

    def test_norm_lifetime_independent_of_expo(self):
        """A system issuing only normal writes wears identically under any
        exponent."""
        r = run(policy="Norm")
        assert r.lifetime_for_expo(1.0) == pytest.approx(
            r.lifetime_for_expo(3.0)
        )

    def test_slow_lifetime_grows_with_expo(self):
        r = run(policy="Slow+SC")
        lives = [r.lifetime_for_expo(e) for e in (1.0, 1.5, 2.0, 2.5, 3.0)]
        assert lives == sorted(lives)
        assert lives[-1] > lives[0] * 2


class TestBankSensitivity:
    def test_fewer_banks_higher_utilization(self):
        wide = run(num_banks=16, num_ranks=4)
        narrow = run(num_banks=4, num_ranks=1)
        assert narrow.bank_utilization > wide.bank_utilization

    def test_fewer_banks_fewer_eager_writes(self):
        wide = run(policy="BE-Mellow+SC", num_banks=16, num_ranks=4)
        narrow = run(policy="BE-Mellow+SC", num_banks=4, num_ranks=1)
        assert narrow.eager_issued < wide.eager_issued


class TestEnergyAccounting:
    def test_energy_positive_and_decomposed(self):
        r = run(policy="BE-Mellow+SC")
        assert r.read_energy_pj > 0
        assert r.write_energy_pj > 0
        assert r.total_energy_pj == r.read_energy_pj + r.write_energy_pj

    def test_mellow_writes_cost_more_write_energy(self):
        norm = run(policy="Norm", workload="GemsFDTD")
        mellow = run(policy="BE-Mellow+SC", workload="GemsFDTD")
        assert mellow.write_energy_pj > norm.write_energy_pj


class TestSystemConstruction:
    def test_invalid_workload(self):
        with pytest.raises(KeyError):
            System(SimConfig(workload="nosuch"))

    def test_invalid_windows(self):
        with pytest.raises(ValueError):
            SimConfig(workload="lbm", measure_accesses=0)

    def test_scaled_config(self):
        cfg = SimConfig(workload="lbm").scaled(0.1)
        assert cfg.measure_accesses == 12000
        assert cfg.warmup_accesses == 3000
