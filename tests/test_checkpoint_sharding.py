"""Sharded survival studies: process-sliced must equal serial exactly.

Satellite tests for the checkpoint layer's consumer: a long-horizon
study cut into seeds x time slices and scattered over a process pool
must merge to byte-identical survival records, and a study killed by
SIGTERM mid-run must resume from its last snapshot to the same result
an uninterrupted run produces.
"""
from __future__ import annotations

import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.export import run_result_to_dict
from repro.checkpoint import restore_system
from repro.experiments.faults import (default_fault_config,
                                      sharded_survival_study,
                                      sliced_survival_configs,
                                      survival_configs, survival_records)
from repro.experiments.runner import Runner, _advance_slice
from repro.sim.config import SimConfig
from repro.sim.system import System
from repro.store import result_from_dict, store_from_url

POLICIES = ("Norm", "Slow+SC")
SEEDS = 3
SCALE = 0.01


def _memory_runner() -> Runner:
    return Runner(store=store_from_url("memory:"))


def _records_json(records) -> str:
    return json.dumps(records, sort_keys=True)


def test_serial_vs_sharded_records_byte_identical() -> None:
    """The merged right-censored records of a process-sharded study are
    byte-for-byte those of a serial sweep over the same grid.  Separate
    in-memory stores rule out cache cross-talk making this trivial."""
    serial = _memory_runner()
    results = serial.sweep(
        survival_configs(policies=POLICIES, seeds=SEEDS, scale=SCALE),
        jobs=1)
    serial_records = survival_records(POLICIES, SEEDS, results)

    sharded = _memory_runner()
    sharded_records = sharded_survival_study(
        runner=sharded, policies=POLICIES, seeds=SEEDS, scale=SCALE,
        slices=3, jobs=2)
    assert _records_json(sharded_records) == _records_json(serial_records)
    assert sharded.simulated == len(POLICIES) * SEEDS


def test_sliced_serial_path_matches_pool_path(tmp_path: Path) -> None:
    """jobs=1 drives the same snapshot chain without a pool; records
    must not depend on which execution path ran the slices."""
    pooled = sharded_survival_study(
        runner=_memory_runner(), policies=POLICIES, seeds=SEEDS,
        scale=SCALE, slices=3, jobs=2)
    serial = sharded_survival_study(
        runner=_memory_runner(), policies=POLICIES, seeds=SEEDS,
        scale=SCALE, slices=3, jobs=1,
        checkpoint_dir=tmp_path / "slices")
    assert _records_json(serial) == _records_json(pooled)


def test_sliced_configs_share_cache_entries() -> None:
    """checkpoint_every stays outside the cache key, so a sliced study
    re-reads a serial study's entries instead of re-simulating."""
    runner = _memory_runner()
    runner.sweep(
        survival_configs(policies=POLICIES, seeds=SEEDS, scale=SCALE),
        jobs=1)
    simulated_before = runner.simulated
    sharded_survival_study(runner=runner, policies=POLICIES, seeds=SEEDS,
                           scale=SCALE, slices=3, jobs=2)
    assert runner.simulated == simulated_before


def test_advance_slice_resimulates_on_corrupt_snapshot(
        tmp_path: Path, caplog: pytest.LogCaptureFixture) -> None:
    """The Runner-path fallback: an unusable snapshot warns and
    re-simulates from scratch, bit-identical to the intended run."""
    config = sliced_survival_configs(policies=("Norm",), seeds=1,
                                     scale=SCALE, slices=3)[0]
    bad = tmp_path / "bad.ckpt"
    bad.write_bytes(b"not a snapshot")
    with caplog.at_level("WARNING", logger="repro.experiments.runner"):
        status, payload = _advance_slice(config, str(bad),
                                         str(tmp_path / "next.ckpt"))
    assert status == "done"
    assert any("re-simulating" in record.message
               for record in caplog.records)
    resimulated = run_result_to_dict(result_from_dict(payload))
    straight = run_result_to_dict(System(config).run())
    assert (json.dumps(resimulated, sort_keys=True)
            == json.dumps(straight, sort_keys=True))


_CHILD_SCRIPT = """
import sys
from dataclasses import replace
from repro.experiments.faults import default_fault_config
from repro.sim.config import SimConfig
from repro.sim.system import System

config = SimConfig(workload="zeusmp", policy="Slow+SC", seed=2,
                   faults=default_fault_config(),
                   checkpoint_every=400,
                   checkpoint_dir=sys.argv[1]).scaled(0.01)
System(config).run()
"""


def test_sigterm_resume_equals_uninterrupted(tmp_path: Path) -> None:
    """Kill a checkpointing run with SIGTERM mid-flight, resume from the
    newest snapshot, and require the exact uninterrupted result.
    Atomic snapshot writes guarantee the newest file is complete even
    though the process died without warning."""
    snap_dir = tmp_path / "snaps"
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD_SCRIPT, str(snap_dir)],
        env={**__import__("os").environ, "PYTHONPATH": "src"},
        cwd=str(Path(__file__).resolve().parent.parent),
    )
    try:
        deadline = time.monotonic() + 120.0   # simlint: ignore[SIM003] -- real child wait
        while time.monotonic() < deadline:   # simlint: ignore[SIM003] -- real child wait
            if snap_dir.is_dir() and any(snap_dir.glob("*.ckpt")):
                break
            if child.poll() is not None:
                break
            time.sleep(0.02)
        else:
            pytest.fail("child never wrote a snapshot")
        child.send_signal(signal.SIGTERM)
        child.wait(timeout=60)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=60)

    snapshots = sorted(snap_dir.glob("*.ckpt"))
    assert snapshots, "no snapshot survived the SIGTERM"
    resumed = restore_system(snapshots[-1]).finish_run()

    straight_config = SimConfig(workload="zeusmp", policy="Slow+SC", seed=2,
                                faults=default_fault_config()).scaled(0.01)
    straight = System(straight_config).run()
    assert (json.dumps(run_result_to_dict(resumed), sort_keys=True)
            == json.dumps(run_result_to_dict(straight), sort_keys=True))
