"""Tests for the energy models (Tables V and VI, Figure 16 accounting)."""

import pytest

from repro import params
from repro.energy.accounting import EnergyAccount
from repro.energy.cells import CELLS, get_cell
from repro.energy.nvsim import LineEnergyModel, table_vi_rows


class TestCells:
    def test_table_v_cell_energies(self):
        assert get_cell("CellA").set_energy_pj == 0.1
        assert get_cell("CellC").set_energy_pj == 0.4
        assert get_cell("CellE").set_energy_pj == 1.6

    def test_slow_write_cell_energy_is_2_3x(self):
        cell = get_cell("CellC")
        assert cell.cell_write_energy_pj(slow=True) == pytest.approx(0.92)
        assert cell.cell_write_energy_pj(slow=False) == pytest.approx(0.4)

    def test_slow_power_is_lower_despite_higher_energy(self):
        """3x pulse at 0.767x power => 2.3x energy (the paper's assumption)."""
        assert params.SLOW_POWER_RATIO * 3.0 == pytest.approx(
            params.SLOW_CELL_ENERGY_RATIO, rel=0.01
        )

    def test_unknown_cell(self):
        with pytest.raises(KeyError):
            get_cell("CellZ")

    def test_five_cells(self):
        assert len(CELLS) == 5


# Table VI published rows: (cell, norm write, slow write, ratio).
TABLE_VI = [
    ("CellA", 248.8, 314.5, 1.26),
    ("CellB", 300.0, 432.3, 1.44),
    ("CellC", 402.4, 667.8, 1.66),
    ("CellD", 607.2, 1138.8, 1.88),
    ("CellE", 1016.8, 2080.9, 2.05),
]


class TestTableVI:
    @pytest.mark.parametrize("cell,norm,slow,ratio", TABLE_VI)
    def test_write_energies_match_paper(self, cell, norm, slow, ratio):
        model = LineEnergyModel.for_cell(cell)
        assert model.write_energy_pj(False) == pytest.approx(norm, rel=0.01)
        assert model.write_energy_pj(True) == pytest.approx(slow, rel=0.01)

    @pytest.mark.parametrize("cell,norm,slow,ratio", TABLE_VI)
    def test_slow_norm_ratio_matches_paper(self, cell, norm, slow, ratio):
        model = LineEnergyModel.for_cell(cell)
        assert model.slow_norm_ratio == pytest.approx(ratio, abs=0.01)

    def test_buffer_read_energy(self):
        model = LineEnergyModel.for_cell("CellC")
        assert model.read_energy_pj(row_hit=False) == 1503.0
        assert model.read_energy_pj(row_hit=True) == 100.0

    def test_ratio_shrinks_with_cell_energy(self):
        """Peripheral energy dominates small cells: CellA ratio < CellE."""
        ratios = [LineEnergyModel.for_cell(c).slow_norm_ratio
                  for c in ("CellA", "CellB", "CellC", "CellD", "CellE")]
        assert ratios == sorted(ratios)

    def test_table_vi_rows_complete(self):
        rows = table_vi_rows()
        assert [r["cell"] for r in rows] == list(params.CELL_ENERGIES_PJ)
        assert all(r["buffer_read_pj"] == 1503.0 for r in rows)


class TestEnergyAccount:
    def test_read_charging(self):
        account = EnergyAccount()
        account.charge_read(row_hit=True)
        account.charge_read(row_hit=False)
        assert account.read_energy_pj == pytest.approx(100.0 + 1503.0)

    def test_write_charging(self):
        account = EnergyAccount()
        account.charge_write(slow=False)
        account.charge_write(slow=True)
        assert account.write_energy_pj == pytest.approx(402.4 + 667.8, rel=0.01)

    def test_fractional_cancelled_attempt(self):
        account = EnergyAccount()
        account.charge_write(slow=True, fraction=0.5)
        assert account.write_energy_pj == pytest.approx(667.8 / 2, rel=0.01)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            EnergyAccount().charge_write(slow=False, fraction=1.5)

    def test_total_and_reset(self):
        account = EnergyAccount()
        account.charge_read(row_hit=True)
        account.charge_write(slow=False)
        assert account.total_pj == pytest.approx(
            account.read_energy_pj + account.write_energy_pj
        )
        account.reset()
        assert account.total_pj == 0.0
