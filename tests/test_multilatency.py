"""Tests for multi-latency Mellow Writes (+ML, Section VI-I future work)."""

import pytest

from repro.core.decision import choose_write_factor
from repro.core.policies import parse_policy
from repro.memory.queues import EAGER, WRITE


def decide(policy_name, **kwargs):
    defaults = dict(kind=WRITE, other_writes_for_bank=0, reads_for_bank=0,
                    quota_exceeded=False)
    defaults.update(kwargs)
    return choose_write_factor(parse_policy(policy_name), **defaults)


def test_ml_suffix_parses():
    p = parse_policy("B-Mellow+SC+ML")
    assert p.multi_latency and p.bank_aware
    assert p.mid_factor == 1.5


def test_ml_requires_bank_aware():
    with pytest.raises(ValueError):
        parse_policy("Norm+ML")


def test_alone_in_queue_gets_full_slowdown():
    assert decide("B-Mellow+SC+ML") == 3.0


def test_one_other_write_gets_mid_factor():
    assert decide("B-Mellow+SC+ML", other_writes_for_bank=1) == 1.5


def test_two_others_fall_back_to_normal():
    assert decide("B-Mellow+SC+ML", other_writes_for_bank=2) == 1.0


def test_pending_read_disables_mid_factor():
    assert decide("B-Mellow+SC+ML", other_writes_for_bank=1,
                  reads_for_bank=1) == 1.0


def test_without_ml_one_other_is_normal():
    assert decide("B-Mellow+SC", other_writes_for_bank=1) == 1.0


def test_eager_always_full_slow():
    assert decide("BE-Mellow+SC+ML", kind=EAGER,
                  other_writes_for_bank=5) == 3.0


def test_binary_policies_unchanged():
    assert decide("Norm") == 1.0
    assert decide("Slow+SC", other_writes_for_bank=4) == 3.0


def test_ml_integration_issues_mid_latency_writes():
    """End-to-end: the +ML system records wear at three distinct factors."""
    from repro import SimConfig, run_simulation
    result = run_simulation(SimConfig(
        workload="lbm", policy="B-Mellow+SC+ML",
        warmup_accesses=6000, measure_accesses=12000,
        llc_size_bytes=256 * 1024,
    ))
    factors = set()
    for record in result.wear_records:
        factors.update(record.slow_writes_by_factor)
    assert 1.5 in factors
    assert 3.0 in factors
    assert result.writes_issued_normal > 0


def test_ml_lifetime_between_binary_extremes():
    from repro import SimConfig, run_simulation
    fast = dict(workload="lbm", warmup_accesses=6000,
                measure_accesses=12000, llc_size_bytes=256 * 1024)
    binary = run_simulation(SimConfig(policy="B-Mellow+SC", **fast))
    ml = run_simulation(SimConfig(policy="B-Mellow+SC+ML", **fast))
    # The mid tier converts some normal writes to 1.5x: lifetime rises.
    assert ml.lifetime_years > binary.lifetime_years * 0.95
