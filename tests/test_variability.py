"""Tests for endurance variability + ECC order-statistics model."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.endurance.variability import EnduranceVariability, _normal_quantile


class TestNormalQuantile:
    @pytest.mark.parametrize("p,z", [
        (0.5, 0.0), (0.8413, 1.0), (0.1587, -1.0),
        (0.9772, 2.0), (0.00135, -3.0),
    ])
    def test_known_points(self, p, z):
        assert _normal_quantile(p) == pytest.approx(z, abs=2e-3)

    def test_symmetry(self):
        assert _normal_quantile(0.3) == pytest.approx(
            -_normal_quantile(0.7), abs=1e-9,
        )

    def test_domain(self):
        with pytest.raises(ValueError):
            _normal_quantile(0.0)
        with pytest.raises(ValueError):
            _normal_quantile(1.0)

    @given(p=st.floats(min_value=1e-6, max_value=1 - 1e-6))
    @settings(max_examples=100)
    def test_monotone(self, p):
        assert _normal_quantile(p) <= _normal_quantile(min(1 - 1e-7, p + 1e-6)) + 1e-6


class TestVariability:
    def test_deterministic_when_sigma_zero(self):
        model = EnduranceVariability(sigma=0.0)
        assert model.weakest_block_endurance(10 ** 6) == 5e6
        assert model.lifetime_scale_factor(10 ** 6) == 1.0

    def test_variation_shrinks_first_death(self):
        """The weakest of a million lognormal blocks dies far below median."""
        model = EnduranceVariability(sigma=0.5)
        weakest = model.weakest_block_endurance(10 ** 6)
        assert weakest < 5e6 * 0.2
        assert weakest > 0

    def test_more_blocks_weaker_minimum(self):
        model = EnduranceVariability(sigma=0.5)
        assert (model.weakest_block_endurance(10 ** 6)
                < model.weakest_block_endurance(10 ** 3))

    def test_ecc_recovers_lifetime(self):
        none = EnduranceVariability(sigma=0.5, tolerated_failures=0)
        ecc = EnduranceVariability(sigma=0.5, tolerated_failures=100)
        n = 10 ** 6
        assert (ecc.weakest_block_endurance(n)
                > none.weakest_block_endurance(n) * 1.3)
        assert ecc.ecc_gain(n) > 1.3

    def test_ecc_gain_is_one_without_variation(self):
        assert EnduranceVariability(sigma=0.0,
                                    tolerated_failures=50).ecc_gain(1000) == 1.0

    def test_order_statistic_against_monte_carlo(self):
        """Blom's approximation tracks an empirical minimum."""
        rng = random.Random(7)
        sigma, n = 0.4, 2000
        minima = []
        for _ in range(60):
            samples = [math.exp(sigma * rng.gauss(0, 1)) for _ in range(n)]
            minima.append(min(samples))
        empirical = sum(minima) / len(minima)
        model = EnduranceVariability(median_endurance=1.0, sigma=sigma)
        predicted = model.weakest_block_endurance(n)
        assert predicted == pytest.approx(empirical, rel=0.15)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            EnduranceVariability(median_endurance=0)
        with pytest.raises(ValueError):
            EnduranceVariability(sigma=-1)
        with pytest.raises(ValueError):
            EnduranceVariability(tolerated_failures=-1)
        with pytest.raises(ValueError):
            EnduranceVariability().weakest_block_endurance(0)

    def test_scale_factor_composes_with_run_results(self):
        """End-to-end: variability rescales a simulated lifetime."""
        from repro import SimConfig, run_simulation
        result = run_simulation(SimConfig(
            workload="lbm", policy="Norm", warmup_accesses=5000,
            measure_accesses=10000, llc_size_bytes=256 * 1024,
            functional_warmup_max=30000,
        ))
        model = EnduranceVariability(sigma=0.5, tolerated_failures=1000)
        scaled = result.lifetime_years * model.lifetime_scale_factor(
            result.blocks_per_bank,
        )
        assert 0 < scaled < result.lifetime_years
