"""Tests for multiprogrammed workload mixes."""

import itertools

import pytest

from repro.cpu.trace import TraceRecord
from repro.workloads.mix import MIXES, WorkloadMix, get_mix, mix_traces


def make_trace(blocks, gap=10):
    return iter([TraceRecord(gap, b, False) for b in blocks])


class TestMixTraces:
    def test_interleaves_by_instruction_progress(self):
        # Component 0 accesses every 10 instructions, component 1 every 30:
        # the output should contain ~3x more of component 0.
        a = iter([TraceRecord(10, 1, False)] * 30)
        b = iter([TraceRecord(30, 2, False)] * 30)
        out = list(itertools.islice(mix_traces([a, b], relocate=False), 40))
        from_a = sum(1 for r in out if r.block == 1)
        from_b = sum(1 for r in out if r.block == 2)
        assert from_a > from_b * 2

    def test_relocation_separates_address_spaces(self):
        a = make_trace([5])
        b = make_trace([5])
        out = list(mix_traces([a, b]))
        assert out[0].block != out[1].block

    def test_no_relocation_keeps_blocks(self):
        a = make_trace([5])
        out = list(mix_traces([a], relocate=False))
        assert out[0].block == 5

    def test_exhausts_finite_traces(self):
        a = make_trace([1, 2, 3])
        b = make_trace([4, 5])
        assert len(list(mix_traces([a, b]))) == 5

    def test_empty_component_list_rejected(self):
        with pytest.raises(ValueError):
            next(mix_traces([]))


class TestWorkloadMix:
    def test_builtin_mixes_valid(self):
        assert "mix_write_heavy" in MIXES
        for mix in MIXES.values():
            assert len(mix.components) >= 2

    def test_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            WorkloadMix("bad", ("lbm", "nosuch"))

    def test_single_component_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMix("bad", ("lbm",))

    def test_get_mix_unknown(self):
        with pytest.raises(KeyError):
            get_mix("nosuch")

    def test_trace_is_deterministic(self):
        mix = get_mix("mix_lat_bw")
        a = list(itertools.islice(mix.trace(seed=3), 100))
        b = list(itertools.islice(mix.trace(seed=3), 100))
        assert a == b

    def test_trace_contains_both_components(self):
        mix = get_mix("mix_lat_bw")
        records = list(itertools.islice(mix.trace(seed=1), 2000))
        spaces = {r.block >> 34 for r in records}
        assert len(spaces) == 2

    def test_base_cpi_averages(self):
        mix = get_mix("mix_write_heavy")
        cpis = [p.base_cpi for p in mix.profiles]
        assert mix.base_cpi == pytest.approx(sum(cpis) / len(cpis))

    def test_mix_runs_through_system(self):
        from repro import SimConfig, run_simulation
        result = run_simulation(SimConfig(
            workload="mix_light_heavy", policy="B-Mellow+SC",
            warmup_accesses=4000, measure_accesses=8000,
            llc_size_bytes=256 * 1024, functional_warmup_max=30000,
        ))
        assert result.ipc > 0
        assert result.lifetime_years > 0
