"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "lbm" in out
    assert "BE-Mellow+SC+WQ" in out
    assert "fig11" in out
    assert "abl_flip_n_write" in out


def test_run_command(capsys):
    code = main([
        "run", "--workload", "hmmer", "--policy", "B-Mellow+SC",
        "--scale", "0.05",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "hmmer" in out
    assert "B-Mellow+SC" in out
    assert "lifetime_years" in out


def test_sweep_command(capsys):
    code = main([
        "sweep", "--workloads", "hmmer", "--policies", "Norm,Slow",
        "--scale", "0.05",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert out.count("hmmer") >= 2


def test_sweep_rejects_unknown_workload(capsys):
    code = main([
        "sweep", "--workloads", "nosuch", "--policies", "Norm",
        "--scale", "0.05",
    ])
    assert code == 1
    assert "unknown workload" in capsys.readouterr().err


def test_sweep_rejects_unknown_policy(capsys):
    code = main(["sweep", "--workloads", "hmmer", "--policies", "Bogus"])
    assert code == 1
    assert "unknown base policy" in capsys.readouterr().err


def test_figure_command_analytic(capsys):
    assert main(["figure", "fig01"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out


def test_figure_command_table_vi(capsys):
    assert main(["figure", "tab06"]) == 0
    assert "CellC" in capsys.readouterr().out


def test_figure_unknown(capsys):
    assert main(["figure", "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_ablation_unknown(capsys):
    assert main(["ablation", "abl_nope"]) == 2
    assert "unknown ablation" in capsys.readouterr().err


def test_run_requires_workload():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run"])


def test_run_rejects_unknown_workload(capsys):
    # A typo'd name is one clear line on stderr and exit 1 - never an
    # argparse SystemExit or a KeyError traceback.
    code = main(["run", "--workload", "bogus"])
    assert code == 1
    err = capsys.readouterr().err
    assert "unknown workload" in err
    assert "bogus" in err
    assert "Traceback" not in err


def test_run_rejects_unknown_policy(capsys):
    code = main(["run", "--workload", "hmmer", "--policy", "Slow+XX"])
    assert code == 1
    err = capsys.readouterr().err
    assert "unknown policy suffix" in err


def test_profile_rejects_unknown_workload(capsys):
    code = main(["profile", "--workload", "nope"])
    assert code == 1
    assert "unknown workload" in capsys.readouterr().err


def test_profile_rejects_unknown_policy(capsys):
    code = main(["profile", "--workload", "hmmer", "--policy", "Wrong"])
    assert code == 1
    assert "unknown base policy" in capsys.readouterr().err


def test_faults_rejects_unknown_policy(capsys):
    code = main(["faults", "--policies", "Norm,Bogus"])
    assert code == 1
    assert "unknown base policy" in capsys.readouterr().err


def test_faults_rejects_bad_seed_count(capsys):
    code = main(["faults", "--seeds", "0"])
    assert code == 1
    assert "--seeds" in capsys.readouterr().err


def test_faults_command(tmp_path, capsys):
    out = tmp_path / "faults.json"
    code = main([
        "faults", "--workload", "zeusmp", "--seeds", "2",
        "--scale", "0.01", "--quiet", "--output", str(out),
    ])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "Lifetime to failure" in stdout
    assert "Norm" in stdout and "Slow+SC" in stdout
    import json
    doc = json.loads(out.read_text())
    by_policy = {row["policy"]: row for row in doc["rows"]}
    assert set(by_policy) == {"Norm", "BE-Mellow+SC", "Slow+SC"}
    assert (by_policy["Slow+SC"]["mean_survival_ns"]
            > by_policy["Norm"]["mean_survival_ns"])


def test_figure_export_csv(tmp_path, capsys):
    out = tmp_path / "fig01.csv"
    assert main(["figure", "fig01", "--output", str(out)]) == 0
    assert out.exists()
    assert "latency_ns" in out.read_text()


def test_figure_export_json(tmp_path, capsys):
    out = tmp_path / "tab06.json"
    assert main(["figure", "tab06", "--output", str(out)]) == 0
    import json
    data = json.loads(out.read_text())
    assert data["rows"][0]["cell"] == "CellA"


def test_compare_command(capsys):
    code = main([
        "compare", "--workload", "hmmer", "--policy", "B-Mellow+SC",
        "--against", "Norm", "--scale", "0.05",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Comparison" in out
    assert "lifetime (years)" in out


def test_compare_rejects_bad_policy(capsys):
    assert main([
        "compare", "--workload", "hmmer", "--policy", "Bogus",
    ]) == 2


def test_sweep_accepts_mixes(capsys):
    code = main([
        "sweep", "--workloads", "mix_light_heavy", "--policies", "Norm",
        "--scale", "0.05",
    ])
    assert code == 0
    assert "mix_light_heavy" in capsys.readouterr().out


def test_run_with_telemetry_and_output(tmp_path, capsys):
    out = tmp_path / "run.json"
    code = main([
        "run", "--workload", "hmmer", "--policy", "BE-Mellow+SC",
        "--scale", "0.05", "--telemetry", "--output", str(out),
    ])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "telemetry bundle:" in stdout
    import json
    document = json.loads(out.read_text())
    assert set(document) == {"result", "telemetry"}
    assert document["telemetry"]["metrics"]["sample_times_ns"]
    assert document["result"]["wear_records"][0]["bank"] == 0


def test_trace_command(tmp_path, capsys):
    out = tmp_path / "trace.json"
    code = main([
        "trace", "--workload", "hmmer", "--policy", "BE-Mellow+SC",
        "--scale", "0.05", "--output", str(out),
    ])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "events retained" in stdout
    assert "epochs sampled" in stdout
    assert "ui.perfetto.dev" in stdout
    import json
    doc = json.loads(out.read_text())
    assert doc["traceEvents"]


def test_metrics_command(capsys):
    code = main([
        "metrics", "--workload", "hmmer", "--policy", "Norm",
        "--scale", "0.05",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Telemetry metrics" in out
    assert "queue.write.depth" in out
    assert "ctrl.writes_normal" in out


def test_metrics_match_filter(capsys):
    code = main([
        "metrics", "--workload", "hmmer", "--policy", "Norm",
        "--scale", "0.05", "--match", "queue.",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "queue.read.depth" in out
    assert "ctrl.reads_issued" not in out


def test_metrics_match_without_hit_fails(capsys):
    code = main([
        "metrics", "--workload", "hmmer", "--policy", "Norm",
        "--scale", "0.05", "--match", "nosuchseries",
    ])
    assert code == 1
    assert "no series matching" in capsys.readouterr().err
