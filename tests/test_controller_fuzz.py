"""Property/fuzz tests: random request storms against controller invariants.

Hypothesis drives randomized request sequences (kind, bank, arrival
spacing) through every policy family and checks the invariants that every
correct memory controller must keep:

* every submitted read eventually completes, exactly once;
* every accepted write eventually completes (drains), exactly once;
* completions never run while another operation holds the bank;
* wear bookkeeping matches the number of completed writes (plus partial
  attempts), never less;
* the controller goes quiescent: queues empty, banks idle.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.policies import parse_policy
from repro.core.wear_quota import WearQuota
from repro.endurance.wear import WearTracker
from repro.memory.address import AddressMap
from repro.memory.controller import MemoryController
from repro.sim.events import EventQueue

AMAP = AddressMap(num_banks=4, num_ranks=1, capacity_bytes=64 * 1024 * 1024)

POLICIES = [
    "Norm", "Slow", "Slow+SC", "E-Norm+NC", "B-Mellow+SC",
    "BE-Mellow+SC", "BE-Mellow+SC+WQ", "B-Mellow+SC+ML", "Slow+SC+WP",
]

request_strategy = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "eager"]),
        st.integers(min_value=0, max_value=3),       # bank
        st.integers(min_value=0, max_value=63),      # bank-local block
        st.integers(min_value=0, max_value=300),     # gap to next submit, ns
    ),
    min_size=1,
    max_size=80,
)


def run_storm(policy_name, sequence):
    events = EventQueue()
    policy = parse_policy(policy_name)
    quota = None
    if policy.wear_quota:
        quota = WearQuota(AMAP.num_banks, AMAP.blocks_per_bank)
    wear = WearTracker(AMAP.num_banks, AMAP.blocks_per_bank)
    controller = MemoryController(
        events=events, policy=policy, address_map=AMAP,
        wear=wear, quota=quota,
    )

    completions = {"read": [], "write": []}
    submitted = {"read": 0, "write": 0}
    clock = 0.0
    for kind, bank, local, gap in sequence:
        clock += gap
        events.run_until(clock)
        block = AMAP.encode(bank, local)
        if kind == "read":
            if controller.submit_read(block, completions["read"].append):
                submitted["read"] += 1
        elif kind == "write":
            if controller.submit_write(block, completions["write"].append):
                submitted["write"] += 1
        else:
            if policy.eager:
                controller.submit_eager(block,
                                        completions["write"].append)
                submitted["write"] += 1
    events.run_all(max_events=100_000)
    return controller, submitted, completions


@pytest.mark.parametrize("policy_name", POLICIES)
@given(sequence=request_strategy)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_all_requests_complete(policy_name, sequence):
    controller, submitted, completions = run_storm(policy_name, sequence)
    assert len(completions["read"]) == submitted["read"]
    assert len(completions["write"]) == submitted["write"]
    # Quiescence: nothing left anywhere.
    assert len(controller.read_q) == 0
    assert len(controller.write_q) == 0
    assert len(controller.eager_q) == 0
    for bank in controller.banks:
        assert bank.in_flight is None


@pytest.mark.parametrize("policy_name", ["Norm", "BE-Mellow+SC", "Slow+SC"])
@given(sequence=request_strategy)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_completion_times_monotone_per_submission(policy_name, sequence):
    controller, _submitted, completions = run_storm(policy_name, sequence)
    for times in completions.values():
        assert all(t >= 0 for t in times)


@pytest.mark.parametrize("policy_name", ["Norm", "Slow+SC", "BE-Mellow+SC"])
@given(sequence=request_strategy)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_wear_matches_completed_writes(policy_name, sequence):
    controller, submitted, _completions = run_storm(policy_name, sequence)
    total_wear_writes = controller.wear.total_writes()
    # Completed writes each deposit >= their final full attempt; cancelled
    # attempts add partial extras, so wear >= completed count (within
    # floating-point) and is bounded by attempts.
    assert total_wear_writes >= submitted["write"] - 1e-6
    max_attempts = submitted["write"] + controller.stats.cancellations + 1e-6
    assert total_wear_writes <= max_attempts


@given(sequence=request_strategy)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_pausing_wear_never_exceeds_one_write_each(sequence):
    """With +WP (no restarts) total wear == exactly one write per write."""
    controller, submitted, _completions = run_storm("Slow+SC+WP", sequence)
    assert controller.wear.total_writes() == pytest.approx(
        submitted["write"], abs=1e-6,
    )


@given(sequence=request_strategy)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_determinism_of_storms(sequence):
    a = run_storm("BE-Mellow+SC", sequence)
    b = run_storm("BE-Mellow+SC", sequence)
    assert a[2] == b[2]
    assert a[0].stats.cancellations == b[0].stats.cancellations
