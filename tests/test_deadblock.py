"""Tests for the decay-style dead-block predictor (future-work extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.deadblock import DeadBlockPredictor


def test_untrained_predicts_nothing_dead():
    predictor = DeadBlockPredictor()
    assert not predictor.is_dead(10 ** 6)


def test_threshold_from_concentrated_reuse():
    predictor = DeadBlockPredictor(tail_ratio=1.0 / 32.0)
    for _ in range(1000):
        predictor.record_reuse(2)
    threshold = predictor.end_sample_period()
    assert threshold < float("inf")
    assert predictor.is_dead(int(threshold) + 1)
    assert not predictor.is_dead(1)


def test_heavy_tail_keeps_threshold_high():
    """If >= tail_ratio of reuses are very old, the threshold lands above
    them - ages in the observed heavy tail are never predicted dead."""
    predictor = DeadBlockPredictor(tail_ratio=0.25)
    for _ in range(70):
        predictor.record_reuse(2)
    for _ in range(30):
        predictor.record_reuse(10_000)
    threshold = predictor.compute_threshold()
    assert threshold > 10_000
    assert not predictor.is_dead(10_000)


def test_horizon_caps_threshold():
    predictor = DeadBlockPredictor(tail_ratio=0.25, horizon=16.0)
    for _ in range(70):
        predictor.record_reuse(2)
    for _ in range(30):
        predictor.record_reuse(10_000)
    assert predictor.compute_threshold() == 16.0


def test_histogram_resets_each_period():
    predictor = DeadBlockPredictor()
    predictor.record_reuse(5)
    predictor.end_sample_period()
    assert predictor.total_reuses == 0
    assert predictor.samples_taken == 1


def test_negative_age_rejected():
    with pytest.raises(ValueError):
        DeadBlockPredictor().record_reuse(-1)


def test_invalid_construction():
    with pytest.raises(ValueError):
        DeadBlockPredictor(tail_ratio=0.0)
    with pytest.raises(ValueError):
        DeadBlockPredictor(horizon=0.0)


def test_bucket_of_saturates():
    assert DeadBlockPredictor._bucket_of(2 ** 40) == DeadBlockPredictor.MAX_BUCKET
    assert DeadBlockPredictor._bucket_of(0) == 0


@given(ages=st.lists(st.integers(min_value=0, max_value=2 ** 20),
                     min_size=1, max_size=200))
@settings(max_examples=50)
def test_threshold_tail_budget_property(ages):
    """Property: at most tail_ratio of observed reuses lie strictly beyond
    the trained threshold (when it is finite and uncapped)."""
    predictor = DeadBlockPredictor(tail_ratio=1.0 / 8.0)
    for age in ages:
        predictor.record_reuse(age)
    threshold = predictor.compute_threshold()
    if threshold == float("inf"):
        return
    # Bucketing is log2-granular; compare against the bucket boundary.
    beyond = sum(1 for a in ages if a > 2 * threshold)
    assert beyond <= len(ages) / 8.0 + 1
