"""Tests for the controller request queues."""

import pytest

from repro.memory.queues import EAGER, READ, WRITE, Request, RequestQueue


def make_request(bank=0, kind=WRITE, block=None):
    if block is None:
        block = bank
    return Request(kind=kind, block=block, bank=bank, rank=0,
                   row=0, arrival_ns=0.0)


def test_push_and_pop_fifo_per_bank():
    q = RequestQueue(8, "write")
    first = make_request(bank=1)
    second = make_request(bank=1)
    q.push(first)
    q.push(second)
    assert q.pop_bank(1) is first
    assert q.pop_bank(1) is second


def test_per_bank_isolation():
    q = RequestQueue(8, "write")
    a = make_request(bank=0)
    b = make_request(bank=3)
    q.push(a)
    q.push(b)
    assert q.count_bank(0) == 1
    assert q.count_bank(3) == 1
    assert q.count_bank(1) == 0
    assert q.pop_bank(3) is b


def test_capacity_enforced():
    q = RequestQueue(2, "write")
    q.push(make_request())
    q.push(make_request())
    assert q.full
    with pytest.raises(OverflowError):
        q.push(make_request())


def test_push_front_returns_cancelled_request_to_head():
    q = RequestQueue(4, "write")
    first = make_request(bank=2)
    second = make_request(bank=2)
    q.push(first)
    q.push(second)
    victim = q.pop_bank(2)
    q.push_front(victim)
    assert q.pop_bank(2) is victim


def test_peek_does_not_remove():
    q = RequestQueue(4, "read")
    r = make_request(bank=0, kind=READ)
    q.push(r)
    assert q.peek_bank(0) is r
    assert len(q) == 1


def test_pop_empty_bank_raises():
    q = RequestQueue(4, "read")
    with pytest.raises(LookupError):
        q.pop_bank(0)


def test_banks_with_requests():
    q = RequestQueue(8, "eager")
    q.push(make_request(bank=5, kind=EAGER))
    q.push(make_request(bank=7, kind=EAGER))
    q.pop_bank(5)
    assert q.banks_with_requests() == [7]


def test_len_tracks_all_banks():
    q = RequestQueue(8, "write")
    for bank in range(4):
        q.push(make_request(bank=bank))
    assert len(q) == 4
    q.pop_bank(2)
    assert len(q) == 3


def test_request_is_write_flag():
    assert make_request(kind=WRITE).is_write
    assert make_request(kind=EAGER).is_write
    assert not make_request(kind=READ).is_write


def test_request_ids_unique():
    a, b = make_request(), make_request()
    assert a.req_id != b.req_id


def test_invalid_capacity():
    with pytest.raises(ValueError):
        RequestQueue(0, "bad")


class TestQueueDepthTracking:
    def test_average_depth_time_weighted(self):
        clock = {"now": 0.0}
        q = RequestQueue(8, "write", clock=lambda: clock["now"])
        q.push(make_request(bank=0))          # depth 1 from t=0
        clock["now"] = 10.0
        q.push(make_request(bank=0))          # depth 2 from t=10
        clock["now"] = 20.0
        q.pop_bank(0)                          # depth 1 from t=20
        clock["now"] = 40.0
        # Integral: 1*10 + 2*10 + 1*20 = 50 over a 40 ns window.
        assert q.average_depth(40.0) == pytest.approx(1.25)

    def test_average_depth_without_clock_is_zero(self):
        q = RequestQueue(8, "write")
        q.push(make_request())
        assert q.average_depth(100.0) == 0.0

    def test_reset_depth_statistics(self):
        clock = {"now": 0.0}
        q = RequestQueue(8, "write", clock=lambda: clock["now"])
        q.push(make_request())
        clock["now"] = 10.0
        q.reset_depth_statistics()
        clock["now"] = 20.0
        assert q.average_depth(10.0) == pytest.approx(1.0)

    def test_zero_window(self):
        q = RequestQueue(8, "write", clock=lambda: 0.0)
        assert q.average_depth(0.0) == 0.0
