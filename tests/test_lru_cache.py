"""Tests for the set-associative LRU cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.lru import LRUCache


def test_miss_then_hit():
    cache = LRUCache(num_sets=4, assoc=2)
    first = cache.access(0, is_write=False)
    assert not first.hit
    second = cache.access(0, is_write=False)
    assert second.hit
    assert second.stack_position == 0


def test_stack_positions_follow_lru_order():
    cache = LRUCache(num_sets=1, assoc=4)
    for block in range(4):
        cache.access(block, is_write=False)
    # block 0 is now LRU (position 3), block 3 is MRU (position 0).
    assert cache.access(0, is_write=False).stack_position == 3
    # After that access block 0 is MRU again.
    assert cache.access(0, is_write=False).stack_position == 0


def test_eviction_is_lru():
    cache = LRUCache(num_sets=1, assoc=2)
    cache.access(0, is_write=False)
    cache.access(1, is_write=False)
    result = cache.access(2, is_write=False)
    assert result.victim is not None
    assert result.victim.tag == cache.tag_of(0)


def test_write_sets_dirty():
    cache = LRUCache(num_sets=2, assoc=2)
    cache.access(0, is_write=True)
    assert cache.lookup(0).dirty
    cache.access(1, is_write=False)
    assert not cache.lookup(1).dirty


def test_dirty_victim_reported():
    cache = LRUCache(num_sets=1, assoc=1)
    cache.access(0, is_write=True)
    result = cache.access(1, is_write=False)
    assert result.victim.dirty


def test_mark_clean_eager():
    cache = LRUCache(num_sets=1, assoc=2)
    cache.access(0, is_write=True)
    assert cache.mark_clean(0, eager=True)
    line = cache.lookup(0)
    assert not line.dirty and line.eager_cleaned


def test_mark_clean_on_clean_line_returns_false():
    cache = LRUCache(num_sets=1, assoc=2)
    cache.access(0, is_write=False)
    assert not cache.mark_clean(0)
    assert not cache.mark_clean(99)


def test_rewrite_of_eager_cleaned_line_detected():
    """Dirtying an eager-cleaned line means the eager write was wasted."""
    cache = LRUCache(num_sets=1, assoc=2)
    cache.access(0, is_write=True)
    cache.mark_clean(0, eager=True)
    result = cache.access(0, is_write=True)
    assert result.hit and result.rewrote_eager_clean
    line = cache.lookup(0)
    assert line.dirty and not line.eager_cleaned


def test_plain_rewrite_not_flagged():
    cache = LRUCache(num_sets=1, assoc=2)
    cache.access(0, is_write=True)
    result = cache.access(0, is_write=True)
    assert not result.rewrote_eager_clean


def test_set_and_tag_mapping_roundtrip():
    cache = LRUCache(num_sets=8, assoc=2)
    for block in (0, 7, 8, 123):
        s, t = cache.set_index(block), cache.tag_of(block)
        assert cache.block_of(s, t) == block


def test_dirty_lines_in_set_order():
    cache = LRUCache(num_sets=1, assoc=4)
    cache.access(0, is_write=True)
    cache.access(1, is_write=False)
    cache.access(2, is_write=True)
    pairs = cache.dirty_lines_in_set(0)
    # MRU-first: block 2 at position 0, block 0 at position 2.
    assert [(pos, cache.block_of(0, line.tag)) for pos, line in pairs] == [
        (0, 2), (2, 0),
    ]


def test_occupancy_and_dirty_count():
    cache = LRUCache(num_sets=2, assoc=2)
    cache.access(0, is_write=True)
    cache.access(1, is_write=False)
    assert cache.occupancy() == 2
    assert cache.dirty_count() == 1


def test_from_geometry():
    cache = LRUCache.from_geometry(2 * 1024 * 1024, 16, 64)
    assert cache.num_sets == 2048
    assert cache.assoc == 16


def test_invalid_geometry():
    with pytest.raises(ValueError):
        LRUCache.from_geometry(1000, 16, 64)
    with pytest.raises(ValueError):
        LRUCache(0, 4)


@given(
    blocks=st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=200),
)
@settings(max_examples=50)
def test_occupancy_never_exceeds_capacity(blocks):
    cache = LRUCache(num_sets=4, assoc=2)
    for block in blocks:
        cache.access(block, is_write=block % 3 == 0)
    assert cache.occupancy() <= 8
    for set_index in range(4):
        assert len(cache.sets[set_index]) <= 2


@given(
    blocks=st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                    max_size=300),
)
@settings(max_examples=50)
def test_lru_inclusion_property(blocks):
    """Stack property: anything resident in a 2-way cache is also resident
    in a 4-way cache with the same set count (LRU is a stack algorithm)."""
    small = LRUCache(num_sets=2, assoc=2)
    large = LRUCache(num_sets=2, assoc=4)
    for block in blocks:
        small.access(block, is_write=False)
        large.access(block, is_write=False)
    for set_index in range(2):
        small_tags = {line.tag for line in small.sets[set_index]}
        large_tags = {line.tag for line in large.sets[set_index]}
        assert small_tags <= large_tags
