"""Tests for the functional LLC warmup phase."""

from repro import SimConfig
from repro.sim.system import System


def make_system(**kwargs):
    defaults = dict(workload="hmmer", policy="Norm",
                    warmup_accesses=2000, measure_accesses=3000,
                    llc_size_bytes=256 * 1024)
    defaults.update(kwargs)
    return System(SimConfig(**defaults))


def test_warmup_fills_the_llc():
    system = make_system(functional_warmup_max=300_000)
    consumed = system._functional_warmup()
    capacity = system.llc.cache.num_sets * system.llc.cache.assoc
    assert system.llc.cache.occupancy() >= 0.9 * capacity
    assert consumed > 0


def test_warmup_stops_at_cap():
    system = make_system(functional_warmup_max=500)
    consumed = system._functional_warmup()
    assert consumed == 500


def test_warmup_resets_llc_statistics():
    system = make_system(functional_warmup_max=10_000)
    system._functional_warmup()
    assert system.llc.stats.accesses == 0
    assert system.llc.stats.writebacks == 0


def test_warmup_leaves_dirty_lines_for_writeback_flow():
    system = make_system(workload="lbm", functional_warmup_max=100_000)
    system._functional_warmup()
    assert system.llc.cache.dirty_count() > 100


def test_warmup_trace_continuity():
    """The timed phase continues the same trace - no replay overlap."""
    system = make_system(functional_warmup_max=1000)
    first_before = next(system.profile.trace(system.config.seed))
    system._functional_warmup()
    record = next(system._trace)
    # After consuming 1000 records the next one differs from record #0
    # (astronomically unlikely to collide for these generators).
    assert (record.block, record.gap_insts) != (
        first_before.block, first_before.gap_insts,
    )


def test_warmup_prefills_dram_buffer():
    system = make_system(workload="lbm", dram_buffer_entries=512,
                         functional_warmup_max=200_000)
    system._functional_warmup()
    assert system.dram_buffer.full
    assert system.dram_buffer.stats.writebacks_in == 0   # stats reset


def test_zero_timed_warmup_still_works():
    system = make_system(warmup_accesses=0, measure_accesses=2000,
                         functional_warmup_max=50_000)
    result = system.run()
    assert result.accesses == 2000
