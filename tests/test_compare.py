"""Tests for the configuration comparison helper."""

import pytest

from repro.experiments.compare import compare_configs
from repro.experiments.runner import Runner
from repro.sim.config import SimConfig

TINY = dict(warmup_accesses=3000, measure_accesses=6000,
            llc_size_bytes=128 * 1024, functional_warmup_max=15000)


@pytest.fixture()
def runner(tmp_path):
    return Runner(cache_dir=tmp_path)


def test_compare_structure(runner):
    table = compare_configs(
        SimConfig(workload="lbm", policy="Norm", **TINY),
        SimConfig(workload="lbm", policy="Slow+SC", **TINY),
        runner,
    )
    metrics = table.column("metric")
    assert "IPC" in metrics and "lifetime (years)" in metrics
    assert len(table.columns) == 5


def test_slow_policy_verdicts(runner):
    table = compare_configs(
        SimConfig(workload="lbm", policy="Norm", **TINY),
        SimConfig(workload="lbm", policy="Slow+SC", **TINY),
        runner,
    )
    rows = {r[0]: r for r in table.rows}
    # All-slow multiplies lifetime: the verdict says "better".
    assert rows["lifetime (years)"][4] == "better"
    assert rows["lifetime (years)"][3] > 2.0


def test_labels_default_to_workload_policy(runner):
    table = compare_configs(
        SimConfig(workload="hmmer", policy="Norm", **TINY),
        SimConfig(workload="hmmer", policy="B-Mellow+SC", **TINY),
        runner,
    )
    assert "hmmer/Norm" in table.columns
    assert "hmmer/B-Mellow+SC" in table.columns


def test_custom_labels(runner):
    table = compare_configs(
        SimConfig(workload="hmmer", policy="Norm", **TINY),
        SimConfig(workload="hmmer", policy="Norm", seed=2, **TINY),
        runner,
        baseline_label="seed1", candidate_label="seed2",
    )
    assert "seed1" in table.columns and "seed2" in table.columns
