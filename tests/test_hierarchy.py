"""Tests for the L1/L2 trace filter (Table I upper hierarchy)."""

import itertools

import pytest

from repro.cache.hierarchy import TwoLevelFilter
from repro.cpu.trace import TraceRecord


def reads(blocks, gap=1):
    return [TraceRecord(gap, b, False) for b in blocks]


def test_repeated_access_filtered_by_l1():
    filt = TwoLevelFilter()
    out = list(filt.filter_trace(reads([7] * 100)))
    assert len(out) == 1           # one cold miss, then L1 hits
    assert filt.stats.l1_hit_ratio == pytest.approx(0.99)


def test_instruction_gaps_conserved():
    """Total instruction count must survive filtering."""
    filt = TwoLevelFilter()
    records = reads(list(range(64)) + [0, 1, 2, 3] * 50, gap=7)
    total_in = sum(r.gap_insts for r in records)
    out = list(filt.filter_trace(records))
    # Hits at the tail leave a pending gap that never flushes - allow it.
    total_out = sum(r.gap_insts for r in out)
    assert total_in - total_out <= 7 * 200
    assert total_out > 0


def test_l1_victim_dirty_goes_to_l2_not_memory():
    """A dirty L1 eviction lands in L2; nothing reaches the LLC level."""
    filt = TwoLevelFilter(l1_size_bytes=64 * 2, l1_assoc=1)
    # Write block 0 (L1+L2 fill), then read block 2 mapping to the same
    # L1 set (2 sets of 1 way): block 0's dirty line moves into L2.
    out = list(filt.filter_trace([
        TraceRecord(1, 0, True),
        TraceRecord(1, 2, False),
    ]))
    blocks = [r.block for r in out]
    # Both fills pass through (cold L2 misses), but no extra writeback:
    # block 0's dirty copy is retained by L2.
    assert blocks.count(0) == 1
    assert filt.stats.writebacks_emitted == 0


def test_l2_dirty_eviction_emits_writeback():
    filt = TwoLevelFilter(
        l1_size_bytes=64, l1_assoc=1, l2_size_bytes=64 * 2, l2_assoc=1,
    )
    # L2 has 2 sets x 1 way. Write block 0, then stream blocks 2, 4
    # (same L2 set as 0): block 0's dirty line must eventually wash out.
    out = list(filt.filter_trace([
        TraceRecord(1, 0, True),
        TraceRecord(1, 2, False),
        TraceRecord(1, 4, False),
    ]))
    writebacks = [r for r in out if r.is_write]
    assert filt.stats.writebacks_emitted >= 1
    assert any(r.block == 0 for r in writebacks)


def test_dependence_preserved_on_misses():
    filt = TwoLevelFilter()
    out = list(filt.filter_trace([TraceRecord(1, 9, False, dependent=True)]))
    assert out[0].dependent


def test_streaming_passes_through():
    filt = TwoLevelFilter()
    out = list(filt.filter_trace(reads(range(100_000 // 64 * 64))))
    # No reuse: every access misses both levels (after cold fill noise).
    assert len(out) > 90_000 // 64 * 60


def test_filtered_trace_drives_the_system():
    """End-to-end: L1-level synthetic input -> filter -> simulator."""
    from repro import SimConfig
    from repro.sim.system import System

    config = SimConfig(workload="lbm", policy="Norm",
                       warmup_accesses=2000, measure_accesses=4000,
                       llc_size_bytes=256 * 1024,
                       functional_warmup_max=10000)
    system = System(config)
    # Replace the trace with a filtered L1-level stream.
    filt = TwoLevelFilter()
    l1_level = (TraceRecord(1, b % 50_000, b % 3 == 0)
                for b in itertools.count())
    system._trace = filt.filter_trace(l1_level)
    system.core.trace = system._trace
    result = system.run()
    assert result.ipc > 0
    assert result.accesses == 4000
