"""Regression tests for bugs found during bring-up (see DESIGN.md §7).

Each test pins the exact scenario that once broke, so refactors cannot
silently reintroduce the failure mode.
"""

import pytest

from repro.core.policies import parse_policy
from repro.endurance.startgap import StartGap
from repro.endurance.wear import WearTracker
from repro.memory.address import AddressMap
from repro.memory.controller import MemoryController
from repro.sim.events import EventQueue

AMAP = AddressMap(num_banks=4, num_ranks=1, capacity_bytes=64 * 1024 * 1024)


def make_controller(policy="Slow+SC", **kwargs):
    events = EventQueue()
    ctrl = MemoryController(
        events=events, policy=parse_policy(policy), address_map=AMAP,
        wear=WearTracker(AMAP.num_banks, AMAP.blocks_per_bank), **kwargs,
    )
    return events, ctrl


def block_for_bank(bank, index=0):
    return AMAP.encode(bank, index)


def test_same_instant_issue_does_not_lose_completions():
    """Bug 1: at an operation's exact finish time, another event could run
    before the completion event, see busy_until == now, and overwrite the
    in-flight operation - silently dropping the old completion callback.
    The CPU then waited forever on a read that 'never returned'.

    Reproduction: a request submitted at exactly a prior read's completion
    instant.  Both callbacks must fire.
    """
    events, ctrl = make_controller("Norm")
    done = []
    ctrl.submit_read(block_for_bank(0, 0), lambda t: done.append("first"))
    # Schedule a submission at exactly the completion time (142.5 ns),
    # ordered BEFORE the completion event (FIFO tie-break by insertion
    # is not available for later inserts, so force via an event at 142.5
    # that was scheduled... the submission path itself runs through an
    # event placed after; instead drive the race directly:
    events.schedule(142.5, lambda: ctrl.submit_read(
        block_for_bank(0, 16), lambda t: done.append("second"),
    ))
    events.run_all()
    assert done == ["first", "second"]


def test_cancelled_write_bank_rearms():
    """Bug 2: after a cancellation, the stale completion event returned
    without re-arming the bank, deadlocking it with queued work."""
    events, ctrl = make_controller("Slow+SC")
    done = []
    ctrl.submit_write(block_for_bank(0, 32), lambda t: done.append("w1"))
    events.run_until(100)                        # write pulse in flight
    ctrl.submit_read(block_for_bank(0, 0), lambda t: done.append("r"))
    # Queue a second write that can only issue if the bank re-arms.
    ctrl.submit_write(block_for_bank(0, 64), lambda t: done.append("w2"))
    events.run_all()
    assert set(done) == {"w1", "r", "w2"}
    assert ctrl.stats.cancellations == 1


def test_start_gap_never_maps_to_gap_slot_after_wrap():
    """Bug 3: the remap used mod (N+1) instead of mod N, so after the gap
    wrapped to slot 0 a logical line could map onto the gap itself and
    two lines could collide."""
    sg = StartGap(num_lines=16, psi=1)
    for _ in range(17):                 # drive the gap through a full wrap
        sg.record_write()
    mapped = [sg.remap(i) for i in range(16)]
    assert sg.gap not in mapped
    assert len(set(mapped)) == 16


def test_drain_blocks_reads_globally():
    """Bug 4: per-bank-only drain priority made global slow writes nearly
    free; the paper's drains stall reads system-wide."""
    events, ctrl = make_controller(
        "Norm", drain_low=1, drain_high=2, write_queue_entries=4,
    )
    order = []
    # Bank 0 busy; two writes for bank 0 trigger drain mode.
    ctrl.submit_read(block_for_bank(0, 0), lambda t: order.append("r0"))
    ctrl.submit_write(block_for_bank(0, 32))
    ctrl.submit_write(block_for_bank(0, 64))
    assert ctrl.drain_mode
    # A read for a *different*, idle bank must still wait out the drain.
    ctrl.submit_read(block_for_bank(1, 0), lambda t: order.append("r1"))
    events.run_until(200)     # drain still in progress (write until ~312)
    assert "r1" not in order


def test_quota_gate_survives_warmup_reset():
    """Bug 5: resetting Wear Quota statistics at warmup end cleared the
    slow-only gates, giving every measurement window one ungated burst."""
    from repro.core.wear_quota import WearQuota
    quota = WearQuota(num_banks=2, blocks_per_bank=100)
    quota.record_wear(0, quota.wear_bound_bank * 50)
    quota.start_period()
    assert quota.is_slow_only(0)
    quota.reset_statistics()
    assert quota.is_slow_only(0)


def test_wear_fraction_zero_during_data_burst():
    """Cancelling during the 20 ns data burst (before the pulse starts)
    must not record negative or spurious wear."""
    events, ctrl = make_controller("Slow+SC")
    ctrl.submit_write(block_for_bank(0, 32))
    events.run_until(5)                          # still in the burst
    ctrl.submit_read(block_for_bank(0, 0))
    events.run_all()
    record = ctrl.wear.records[0]
    # Only the final successful write wore the cell.
    assert record.slow_writes_by_factor[3.0] == pytest.approx(1.0)
