"""Smoke tests: every example runs end to end at reduced scale."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name, *args, timeout=300):
    env = dict(os.environ, REPRO_SCALE="0.05")
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True, text=True, timeout=timeout, env=env,
    )


def test_every_example_is_tested():
    covered = {
        "quickstart.py", "policy_comparison.py", "lifetime_guarantee.py",
        "endurance_tradeoff.py", "custom_workload.py",
        "wear_limiting_zoo.py", "trace_a_run.py",
    }
    assert set(ALL_EXAMPLES) == covered


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_parses(name):
    compile((EXAMPLES_DIR / name).read_text(), name, "exec")


def test_quickstart_runs():
    proc = run_example("quickstart.py", "hmmer")
    assert proc.returncode == 0, proc.stderr
    assert "Mellow Writes vs baseline" in proc.stdout
    assert "lifetime" in proc.stdout


def test_endurance_tradeoff_runs():
    proc = run_example("endurance_tradeoff.py")
    assert proc.returncode == 0, proc.stderr
    assert "Figure 1" in proc.stdout
    assert "expo" in proc.stdout


def test_custom_workload_runs():
    proc = run_example("custom_workload.py")
    assert proc.returncode == 0, proc.stderr
    assert "custom tiled kernel" in proc.stdout
    assert "replayed" in proc.stdout
    assert "multiprogrammed mix" in proc.stdout


def test_lifetime_guarantee_runs():
    proc = run_example("lifetime_guarantee.py", "gups")
    assert proc.returncode == 0, proc.stderr
    assert "Norm baseline" in proc.stdout


def test_trace_a_run_runs(tmp_path):
    proc = run_example("trace_a_run.py", "hmmer", str(tmp_path / "bundle"))
    assert proc.returncode == 0, proc.stderr
    assert "bit-identical to untraced run: True" in proc.stdout
    assert "wear heatmap" in proc.stdout
    assert "ui.perfetto.dev" in proc.stdout
    assert (tmp_path / "bundle" / "manifest.json").is_file()
