"""Tests for the Figure-9 decision tree and Bank-Aware predicate."""

import pytest

from repro.core.bank_aware import bank_aware_wants_slow
from repro.core.decision import choose_write_speed
from repro.core.policies import parse_policy
from repro.memory.queues import EAGER, READ, WRITE


class TestBankAwarePredicate:
    def test_single_request_goes_slow(self):
        assert bank_aware_wants_slow(0, 0)

    def test_second_write_forces_normal(self):
        assert not bank_aware_wants_slow(1, 0)

    def test_pending_read_forces_normal(self):
        assert not bank_aware_wants_slow(0, 2)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            bank_aware_wants_slow(-1, 0)


class TestFigure9Tree:
    def decide(self, policy_name, **kwargs):
        defaults = dict(kind=WRITE, other_writes_for_bank=0,
                        reads_for_bank=0, quota_exceeded=False)
        defaults.update(kwargs)
        return choose_write_speed(parse_policy(policy_name), **defaults)

    def test_single_request_slow(self):
        assert self.decide("BE-Mellow+SC+WQ") is True

    def test_multiple_requests_quota_exceeded_slow(self):
        assert self.decide("BE-Mellow+SC+WQ", other_writes_for_bank=3,
                           quota_exceeded=True) is True

    def test_multiple_requests_quota_ok_normal(self):
        assert self.decide("BE-Mellow+SC+WQ", other_writes_for_bank=3) is False

    def test_eager_requests_are_slow(self):
        assert self.decide("BE-Mellow+SC", kind=EAGER,
                           other_writes_for_bank=5) is True

    def test_e_norm_eager_requests_are_normal(self):
        assert self.decide("E-Norm+NC", kind=EAGER) is False

    def test_norm_policy_never_slow(self):
        assert self.decide("Norm") is False
        assert self.decide("Norm", other_writes_for_bank=0) is False

    def test_norm_wq_slow_only_when_gated(self):
        assert self.decide("Norm+WQ", quota_exceeded=True) is True
        assert self.decide("Norm+WQ", quota_exceeded=False) is False

    def test_slow_policy_always_slow(self):
        assert self.decide("Slow+SC", other_writes_for_bank=9) is True

    def test_quota_ignored_without_wq(self):
        assert self.decide("B-Mellow+SC", other_writes_for_bank=2,
                           quota_exceeded=True) is False

    def test_read_kind_rejected(self):
        with pytest.raises(ValueError):
            self.decide("Norm", kind=READ)

    def test_eager_without_eager_policy_rejected(self):
        with pytest.raises(ValueError):
            self.decide("Norm", kind=EAGER)
