"""System-level Wear Quota dynamics under phased and steady traffic."""


from repro import SimConfig
from repro.cpu.trace import TraceRecord
from repro.sim.system import System
from repro.workloads.patterns import PhasedPattern, SequentialStream

FAST = dict(warmup_accesses=4000, measure_accesses=20000,
            llc_size_bytes=256 * 1024, functional_warmup_max=20000,
            sample_period_ns=50_000)


def phased_trace(phase_length=4000):
    """Alternating read-mostly and write-heavy phases."""
    import random
    rng = random.Random(11)
    pattern = PhasedPattern(
        SequentialStream(0, 200_000, write_ratio=0.05),
        SequentialStream(10_000_000, 200_000, write_ratio=0.9),
        phase_length=phase_length,
    )
    while True:
        block, is_write, dependent = pattern.next(rng)
        gap = int(rng.expovariate(1 / 40.0))
        yield TraceRecord(gap, block, is_write, dependent)


def run_phased(policy):
    config = SimConfig(workload="lbm", policy=policy, **FAST)
    system = System(config)
    system._trace = phased_trace()
    system.core.trace = system._trace
    return system.run()


def test_quota_banks_credit_in_quiet_phases():
    """Phased traffic: the quota's cumulative budget lets write bursts
    borrow against quiet phases, so a phased workload keeps more normal
    writes than a steady one with the same average write rate would."""
    result = run_phased("Norm+WQ")
    assert result.writes_issued_normal > 0
    assert result.lifetime_years > 0


def test_quota_still_caps_phased_wear():
    unguarded = run_phased("Norm")
    guarded = run_phased("Norm+WQ")
    assert guarded.lifetime_years >= unguarded.lifetime_years


def test_phased_and_steady_same_policy_comparable():
    """Sanity: the phased harness produces plausible simulation output."""
    result = run_phased("BE-Mellow+SC+WQ")
    assert result.accesses == FAST["measure_accesses"]
    assert 0 <= result.bank_utilization <= 1
    assert result.writebacks > 0
