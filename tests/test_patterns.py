"""Tests for the workload access-pattern generators."""

import random

import pytest

from repro.workloads.patterns import (
    HotSet,
    PointerChase,
    RandomAccess,
    ReadModifyWrite,
    SequentialStream,
)


def drain(pattern, n=1000, seed=1):
    rng = random.Random(seed)
    return [pattern.next(rng) for _ in range(n)]


class TestSequentialStream:
    def test_blocks_are_sequential_and_wrap(self):
        stream = SequentialStream(base=100, size_blocks=4)
        blocks = [b for b, _, _ in drain(stream, 6)]
        assert blocks == [100, 101, 102, 103, 100, 101]

    def test_stride(self):
        stream = SequentialStream(base=0, size_blocks=9, stride=3)
        blocks = [b for b, _, _ in drain(stream, 4)]
        assert blocks == [0, 3, 6, 0]

    def test_write_ratio_respected(self):
        stream = SequentialStream(base=0, size_blocks=1000, write_ratio=0.5)
        writes = sum(1 for _, w, _ in drain(stream, 4000) if w)
        assert 1700 < writes < 2300

    def test_never_dependent(self):
        stream = SequentialStream(base=0, size_blocks=10, write_ratio=0.3)
        assert all(not d for _, _, d in drain(stream, 100))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SequentialStream(0, 0)
        with pytest.raises(ValueError):
            SequentialStream(0, 10, write_ratio=1.5)
        with pytest.raises(ValueError):
            SequentialStream(0, 10, stride=0)


class TestRandomAccess:
    def test_blocks_within_region(self):
        pattern = RandomAccess(base=50, size_blocks=10)
        assert all(50 <= b < 60 for b, _, _ in drain(pattern))

    def test_dependent_reads_only(self):
        pattern = RandomAccess(base=0, size_blocks=100, write_ratio=0.5,
                               dependent=True)
        for _, is_write, dependent in drain(pattern):
            if is_write:
                assert not dependent
            else:
                assert dependent


class TestHotSet:
    def test_hot_fraction_concentrates_accesses(self):
        pattern = HotSet(base=0, size_blocks=10_000, hot_blocks=10,
                         hot_fraction=0.9)
        hot_hits = sum(1 for b, _, _ in drain(pattern, 5000) if b < 10)
        assert hot_hits > 4000

    def test_invalid_hot_blocks(self):
        with pytest.raises(ValueError):
            HotSet(0, 10, hot_blocks=20)


class TestPointerChase:
    def test_reads_are_dependent(self):
        pattern = PointerChase(base=0, size_blocks=100, write_ratio=0.2)
        for _, is_write, dependent in drain(pattern):
            assert dependent == (not is_write)


class TestReadModifyWrite:
    def test_read_then_write_same_block(self):
        pattern = ReadModifyWrite(base=0, size_blocks=1000)
        rng = random.Random(1)
        for _ in range(100):
            read_block, w1, dep = pattern.next(rng)
            write_block, w2, _ = pattern.next(rng)
            assert not w1 and w2
            assert read_block == write_block
            assert dep   # update reads gate the update


class TestPhasedPattern:
    def test_alternates_between_subpatterns(self):
        from repro.workloads.patterns import PhasedPattern
        a = SequentialStream(0, 10, write_ratio=0.0)
        b = SequentialStream(1000, 10, write_ratio=1.0)
        phased = PhasedPattern(a, b, phase_length=5)
        rng = random.Random(1)
        first_phase = [phased.next(rng) for _ in range(5)]
        second_phase = [phased.next(rng) for _ in range(5)]
        assert all(block < 1000 for block, _, _ in first_phase)
        assert all(block >= 1000 for block, _, _ in second_phase)
        assert all(w for _, w, _ in second_phase)

    def test_switches_back(self):
        from repro.workloads.patterns import PhasedPattern
        a = SequentialStream(0, 4)
        b = SequentialStream(100, 4)
        phased = PhasedPattern(a, b, phase_length=2)
        rng = random.Random(1)
        blocks = [phased.next(rng)[0] for _ in range(6)]
        assert blocks[0] < 100 and blocks[2] >= 100 and blocks[4] < 100

    def test_invalid_phase_length(self):
        from repro.workloads.patterns import PhasedPattern
        with pytest.raises(ValueError):
            PhasedPattern(SequentialStream(0, 4), SequentialStream(8, 4),
                          phase_length=0)
