"""Tests for wear tracking and lifetime computation."""


import pytest

from repro import params
from repro.endurance.model import EnduranceModel
from repro.endurance.wear import BankWearRecord, WearTracker


def make_tracker(**kwargs):
    defaults = dict(num_banks=2, blocks_per_bank=1000)
    defaults.update(kwargs)
    return WearTracker(**defaults)


def test_record_and_damage_normal_writes():
    tracker = make_tracker()
    for _ in range(10):
        tracker.record_write(0, 1.0)
    assert tracker.bank_damage(0) == pytest.approx(10.0)
    assert tracker.bank_damage(1) == 0.0


def test_slow_writes_deposit_less_damage():
    tracker = make_tracker()
    tracker.record_write(0, 3.0)
    assert tracker.bank_damage(0) == pytest.approx(1.0 / 9.0)


def test_fractional_wear_for_cancelled_attempts():
    tracker = make_tracker()
    tracker.record_write(0, 1.0, fraction=0.25)
    assert tracker.bank_damage(0) == pytest.approx(0.25)


def test_lifetime_formula():
    """lifetime = window * eta * N_blk * E / damage."""
    tracker = make_tracker(leveling_efficiency=0.9)
    for _ in range(100):
        tracker.record_write(0, 1.0)
    window_ns = 1e6
    expected = window_ns * 0.9 * 1000 * params.BASE_ENDURANCE / 100
    assert tracker.bank_lifetime_ns(0, window_ns) == pytest.approx(expected)


def test_system_lifetime_is_worst_bank():
    tracker = make_tracker()
    tracker.record_write(0, 1.0)
    for _ in range(10):
        tracker.record_write(1, 1.0)
    assert tracker.system_lifetime_ns(1e6) == pytest.approx(
        tracker.bank_lifetime_ns(1, 1e6)
    )


def test_unwritten_bank_lives_forever():
    tracker = make_tracker()
    assert tracker.bank_lifetime_ns(0, 1e6) == float("inf")


def test_lifetime_years_conversion():
    tracker = make_tracker()
    tracker.record_write(0, 1.0)
    years = tracker.system_lifetime_years(1e6)
    assert years == pytest.approx(
        tracker.system_lifetime_ns(1e6) / params.NS_PER_YEAR
    )


def test_slow_writes_extend_lifetime_quadratically():
    """The headline trade-off: all-slow at 3x lives 9x longer (expo=2)."""
    fast = make_tracker()
    slow = make_tracker()
    for _ in range(100):
        fast.record_write(0, 1.0)
        slow.record_write(0, 3.0)
    ratio = slow.bank_lifetime_ns(0, 1e6) / fast.bank_lifetime_ns(0, 1e6)
    assert ratio == pytest.approx(9.0)


def test_expo_factor_reevaluation():
    """The same record evaluates differently under different exponents."""
    record = BankWearRecord()
    record.add(3.0, 90.0)
    quadratic = EnduranceModel(expo_factor=2.0)
    linear = EnduranceModel(expo_factor=1.0)
    assert record.damage(quadratic) == pytest.approx(10.0)
    assert record.damage(linear) == pytest.approx(30.0)


def test_record_total_writes():
    record = BankWearRecord()
    record.add(1.0)
    record.add(3.0, 2.0)
    assert record.total_writes == pytest.approx(3.0)


def test_detailed_mode_tracks_blocks():
    tracker = make_tracker(detailed=True, blocks_per_bank=16)
    for _ in range(5):
        tracker.record_write(0, 1.0, block=3)
    assert tracker.detailed_max_damage(0) > 0
    assert tracker.detailed_max_damage(1) == 0


def test_detailed_mode_start_gap_spreads_wear():
    """With psi=1 rotation, hammering one block spreads damage around."""
    tracker = make_tracker(
        detailed=True, blocks_per_bank=8, start_gap_psi=1,
    )
    for _ in range(200):
        tracker.record_write(0, 1.0, block=0)
    damaged_slots = sum(1 for d in tracker.block_damage[0] if d > 0)
    assert damaged_slots >= 8


def test_detailed_disabled_raises():
    tracker = make_tracker()
    with pytest.raises(RuntimeError):
        tracker.detailed_max_damage(0)


def test_invalid_construction():
    with pytest.raises(ValueError):
        WearTracker(num_banks=0, blocks_per_bank=10)
    with pytest.raises(ValueError):
        WearTracker(num_banks=1, blocks_per_bank=0)
    with pytest.raises(ValueError):
        WearTracker(num_banks=1, blocks_per_bank=1, leveling_efficiency=0.0)


def test_total_writes_across_banks():
    tracker = make_tracker()
    tracker.record_write(0, 1.0)
    tracker.record_write(1, 3.0)
    assert tracker.total_writes() == pytest.approx(2.0)
