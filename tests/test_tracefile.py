"""Tests for trace file save/load."""

import itertools

import pytest

from repro.cpu.trace import TraceRecord
from repro.cpu.tracefile import load_trace, record_workload, save_trace


def sample_records():
    return [
        TraceRecord(10, 100, False),
        TraceRecord(0, 200, True),
        TraceRecord(5, 300, False, dependent=True),
    ]


def test_roundtrip(tmp_path):
    path = tmp_path / "trace.txt"
    written = save_trace(sample_records(), path)
    assert written == 3
    assert list(load_trace(path)) == sample_records()


def test_gzip_roundtrip(tmp_path):
    path = tmp_path / "trace.txt.gz"
    save_trace(sample_records(), path)
    assert list(load_trace(path)) == sample_records()
    # And the file really is gzip'd.
    assert path.read_bytes()[:2] == b"\x1f\x8b"


def test_limit_bounds_infinite_traces(tmp_path):
    def infinite():
        while True:
            yield TraceRecord(1, 7, False)

    path = tmp_path / "trace.txt"
    assert save_trace(infinite(), path, limit=50) == 50
    assert len(list(load_trace(path))) == 50


def test_comments_and_blank_lines_ignored(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("# header\n\n3 42 R\n# trailing\n0 43 W\n")
    records = list(load_trace(path))
    assert records == [TraceRecord(3, 42, False), TraceRecord(0, 43, True)]


def test_bad_kind_rejected(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("1 2 X\n")
    with pytest.raises(ValueError, match="must be R or W"):
        list(load_trace(path))


def test_bad_field_count_rejected(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("1 2\n")
    with pytest.raises(ValueError, match="expected 3-4 fields"):
        list(load_trace(path))


def test_bad_dependent_flag_rejected(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("1 2 R Q\n")
    with pytest.raises(ValueError, match="must be D"):
        list(load_trace(path))


def test_record_workload(tmp_path):
    path = tmp_path / "lbm.txt"
    count = record_workload("lbm", path, count=200, seed=4)
    assert count == 200
    records = list(load_trace(path))
    assert len(records) == 200
    # Identical to generating the trace directly.
    from repro.workloads.profiles import get_profile
    direct = list(itertools.islice(get_profile("lbm").trace(4), 200))
    assert records == direct
