"""Tests for the terminal bar charts."""

import pytest

from repro.analysis.charts import bar_chart, comparison_chart


def test_basic_chart():
    text = bar_chart([("a", 10.0), ("bb", 5.0)], width=10)
    lines = text.splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("a ")
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5
    assert "10.00" in lines[0]


def test_reference_marker():
    text = bar_chart([("x", 10.0)], width=10, reference=5.0,
                     reference_label="target")
    assert "|" in text.splitlines()[0]
    assert "target" in text


def test_reference_extends_scale():
    # The reference can exceed every bar; bars scale to it.
    text = bar_chart([("x", 5.0)], width=10, reference=10.0)
    assert text.splitlines()[0].count("#") == 5


def test_zero_values_ok():
    text = bar_chart([("x", 0.0)], width=10)
    assert "#" not in text


def test_unit_suffix():
    text = bar_chart([("x", 3.0)], unit=" y")
    assert "3.00 y" in text


def test_empty_rejected():
    with pytest.raises(ValueError):
        bar_chart([])


def test_negative_rejected():
    with pytest.raises(ValueError):
        bar_chart([("x", -1.0)])


def test_narrow_width_rejected():
    with pytest.raises(ValueError):
        bar_chart([("x", 1.0)], width=2)


def test_comparison_chart_sections():
    text = comparison_chart([
        ("first", [("a", 1.0)]),
        ("second", [("b", 2.0)]),
    ])
    assert "first" in text and "second" in text
    assert text.index("first") < text.index("second")
