"""Tests for the LLC with eager-candidate selection."""

import random

import pytest

from repro.cache.llc import LastLevelCache


def small_llc(**kwargs):
    defaults = dict(size_bytes=64 * 64 * 4, assoc=4, line_bytes=64,
                    rng=random.Random(7))
    defaults.update(kwargs)
    return LastLevelCache(**defaults)


def test_geometry():
    llc = LastLevelCache()
    assert llc.cache.num_sets == 2048
    assert llc.cache.assoc == 16


def test_stats_track_hits_and_misses():
    llc = small_llc()
    llc.access(0, is_write=False)
    llc.access(0, is_write=False)
    assert llc.stats.accesses == 2
    assert llc.stats.hits == 1
    assert llc.stats.misses == 1
    assert llc.stats.miss_ratio == pytest.approx(0.5)


def test_dirty_eviction_counts_writeback():
    llc = small_llc(size_bytes=64, assoc=1)   # 1 set, 1 way
    llc.access(0, is_write=True)
    llc.access(1, is_write=False)             # evicts dirty block 0
    assert llc.stats.writebacks == 1


def test_clean_eviction_is_not_a_writeback():
    llc = small_llc(size_bytes=64, assoc=1)
    llc.access(0, is_write=False)
    llc.access(1, is_write=False)
    assert llc.stats.writebacks == 0


def test_no_eager_candidates_before_first_sample():
    llc = small_llc()
    llc.access(0, is_write=True)
    assert llc.pick_eager_candidate() is None


def test_eager_candidate_selection_after_sampling():
    llc = small_llc(size_bytes=64 * 4, assoc=4)   # 1 set, 4 ways
    # Fill the set: blocks 0..3, all dirty.
    for block in range(4):
        llc.access(block, is_write=True)
    # Generate a hit profile where only the MRU position matters.
    for _ in range(1000):
        llc.access(3, is_write=False)
    llc.end_sample_period()
    assert llc.profiler.eager_position == 1
    block = llc.pick_eager_candidate()
    # The LRU-most dirty line is block 0.
    assert block == 0
    assert not llc.cache.lookup(0).dirty
    assert llc.cache.lookup(0).eager_cleaned
    assert llc.stats.eager_writebacks == 1


def test_eager_candidates_drain_until_none_left():
    llc = small_llc(size_bytes=64 * 4, assoc=4)
    for block in range(4):
        llc.access(block, is_write=True)
    for _ in range(1000):
        llc.access(3, is_write=False)
    llc.end_sample_period()
    picked = set()
    for _ in range(10):
        block = llc.pick_eager_candidate()
        if block is None:
            break
        picked.add(block)
    # Blocks 0-2 occupy useless positions (1-3); block 3 is MRU and safe.
    assert picked == {0, 1, 2}
    assert llc.pick_eager_candidate() is None


def test_wasted_eager_detection():
    llc = small_llc(size_bytes=64 * 4, assoc=4)
    for block in range(4):
        llc.access(block, is_write=True)
    for _ in range(1000):
        llc.access(3, is_write=False)
    llc.end_sample_period()
    victim = llc.pick_eager_candidate()
    llc.access(victim, is_write=True)     # re-dirty: the write was wasted
    assert llc.stats.wasted_eager == 1


def test_reset_statistics():
    llc = small_llc()
    llc.access(0, is_write=True)
    llc.reset_statistics()
    assert llc.stats.accesses == 0
    assert llc.stats.writebacks == 0


def test_deterministic_given_seed():
    def run(seed):
        llc = small_llc(size_bytes=64 * 16, assoc=4,
                        rng=random.Random(seed))
        for block in range(16):
            llc.access(block, is_write=True)
        for _ in range(100):
            llc.access(0, is_write=False)
        llc.end_sample_period()
        return [llc.pick_eager_candidate() for _ in range(5)]

    assert run(3) == run(3)


class TestDeadblockSelectorLLC:
    def make_deadblock_llc(self):
        return LastLevelCache(size_bytes=64 * 8, assoc=8, line_bytes=64,
                              rng=random.Random(3),
                              eager_selector="deadblock")

    def test_unknown_selector_rejected(self):
        with pytest.raises(ValueError):
            LastLevelCache(eager_selector="bogus")

    def test_untrained_predictor_picks_nothing(self):
        llc = self.make_deadblock_llc()
        llc.access(0, is_write=True)
        assert llc.pick_eager_candidate() is None

    def test_trained_predictor_picks_aged_dirty_line(self):
        llc = self.make_deadblock_llc()
        # Dirty line 0, then hammer line 1 so every observed reuse age is
        # tiny; the dead-age threshold trains low.
        llc.access(0, is_write=True)
        for _ in range(500):
            llc.access(1, is_write=False)
        llc.end_sample_period()
        # Line 0 is now far older than any observed reuse.
        block = llc.pick_eager_candidate()
        assert block == 0
        assert not llc.cache.lookup(0).dirty

    def test_recently_touched_dirty_line_not_picked(self):
        llc = self.make_deadblock_llc()
        for _ in range(500):
            llc.access(1, is_write=False)
        llc.end_sample_period()
        llc.access(0, is_write=True)     # fresh dirty line
        assert llc.pick_eager_candidate() is None
