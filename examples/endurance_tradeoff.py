#!/usr/bin/env python3
"""Explore the write-latency/endurance trade-off (Figure 1 + Figure 17).

First prints the analytic endurance curve for several Expo_Factor values,
then re-evaluates one simulation's lifetime under each exponent using the
recorded write mix - demonstrating that Mellow Writes helps even under a
pessimistic linear model.

Usage:
    python examples/endurance_tradeoff.py
"""

import os

from repro import EnduranceModel, SimConfig, run_simulation
from repro import params


_SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))


def make_config(**kwargs):
    """A SimConfig honouring REPRO_SCALE (set it <1 for quick runs)."""
    config = SimConfig(**kwargs)
    if _SCALE != 1.0:
        config = config.scaled(_SCALE)
    return config



def main():
    print("Endurance vs write slowdown (Figure 1):\n")
    factors = [1.0, 1.5, 2.0, 2.5, 3.0]
    print(f"{'slowdown':>9} {'latency':>9} " + " ".join(
        f"expo={e:<4}" for e in params.EXPO_FACTORS
    ))
    for factor in factors:
        row = [
            EnduranceModel(expo_factor=e).endurance_at_factor(factor)
            for e in params.EXPO_FACTORS
        ]
        cells = " ".join(f"{v:9.2e}" for v in row)
        print(f"{factor:>8.1f}x {factor * 150:>7.0f}ns {cells}")

    print("\nLifetime of one GemsFDTD run re-evaluated per exponent")
    print("(single simulation; timing is exponent-independent):\n")
    norm = run_simulation(make_config(workload="GemsFDTD", policy="Norm"))
    mellow = run_simulation(
        make_config(workload="GemsFDTD", policy="BE-Mellow+SC")
    )
    print(f"{'expo':>6} {'Norm (y)':>10} {'BE-Mellow+SC (y)':>17} {'gain':>7}")
    for expo in params.EXPO_FACTORS:
        base = norm.lifetime_for_expo(expo)
        mine = mellow.lifetime_for_expo(expo)
        print(f"{expo:>6.1f} {base:>10.2f} {mine:>17.2f} {mine / base:>6.2f}x")

    print("\nEven at Expo_Factor 1.0 (linear), Mellow Writes still gains -")
    print("the paper reports >= 1.47x there (Section VI-G).")


if __name__ == "__main__":
    main()
