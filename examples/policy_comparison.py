#!/usr/bin/env python3
"""Compare every Table III write policy on one workload.

Reproduces, for a single workload, the per-benchmark columns of Figures 10
(IPC), 11 (lifetime), 12 (bank utilization) and 13 (write-drain time).

Usage:
    python examples/policy_comparison.py [workload]
"""

import os
import sys

from repro import PAPER_POLICY_NAMES, SimConfig, run_simulation


_SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))


def make_config(**kwargs):
    """A SimConfig honouring REPRO_SCALE (set it <1 for quick runs)."""
    config = SimConfig(**kwargs)
    if _SCALE != 1.0:
        config = config.scaled(_SCALE)
    return config



def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "GemsFDTD"
    print(f"workload: {workload}\n")
    header = (f"{'policy':<18} {'IPC':>6} {'vs Norm':>8} {'life(y)':>8} "
              f"{'util':>6} {'drain':>6} {'eager':>7} {'cancel':>7}")
    print(header)
    print("-" * len(header))

    baseline_ipc = None
    for policy in PAPER_POLICY_NAMES:
        result = run_simulation(make_config(workload=workload, policy=policy))
        if baseline_ipc is None:
            baseline_ipc = result.ipc
        lifetime = min(result.lifetime_years, 9999.0)
        print(f"{policy:<18} {result.ipc:>6.3f} "
              f"{result.ipc / baseline_ipc:>7.2f}x {lifetime:>8.2f} "
              f"{result.bank_utilization:>6.1%} {result.drain_fraction:>6.1%} "
              f"{result.eager_writebacks:>7} {result.cancellations:>7}")

    print("\nReading the table (paper Section VI-A):")
    print(" * E-Norm+NC chases performance and pays with the shortest lifetime;")
    print(" * E-Slow+SC lives longest but can cost double-digit IPC;")
    print(" * BE-Mellow+SC balances both; +WQ guarantees ~8 years under load.")


if __name__ == "__main__":
    main()
