#!/usr/bin/env python3
"""Trace a run: telemetry end to end, from SimConfig to Perfetto.

Runs one workload under the paper's best policy with telemetry enabled,
then tours the bundle it produces:

* the event trace (request lifecycle, drain transitions, quota trips),
* the epoch-sampled metric time series (queue depths, slow/fast mix),
* the per-bank wear heatmap the lifetime argument rests on.

The run is bit-identical to an untraced run of the same config - the
example proves it by running both and comparing the results.

Usage:
    python examples/trace_a_run.py [workload] [output_dir]
"""

import json
import os
import sys
import tempfile
from dataclasses import replace
from pathlib import Path

from repro import SimConfig, run_simulation

_SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))


def make_config(**kwargs):
    """A SimConfig honouring REPRO_SCALE (set it <1 for quick runs)."""
    config = SimConfig(**kwargs)
    if _SCALE != 1.0:
        config = config.scaled(_SCALE)
    return config


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "lbm"
    out_dir = Path(sys.argv[2]) if len(sys.argv) > 2 else \
        Path(tempfile.mkdtemp(prefix="repro-trace-"))
    config = make_config(workload=workload, policy="BE-Mellow+SC+WQ")

    print(f"workload: {workload}, policy: {config.policy}")
    print(f"telemetry bundle: {out_dir}\n")

    traced = run_simulation(replace(
        config, telemetry=True, telemetry_dir=str(out_dir)))
    plain = run_simulation(config)
    print("traced run bit-identical to untraced run:", traced == plain)

    manifest = json.loads((out_dir / "manifest.json").read_text())
    trace = manifest["trace"]
    print(f"\nevent trace: {trace['retained']} events retained "
          f"({trace['recorded']} recorded, {trace['dropped']} dropped)")
    events = [json.loads(line) for line in
              (out_dir / "trace.jsonl").read_text().splitlines()]
    by_kind = {}
    for event in events:
        by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
    for kind, count in sorted(by_kind.items(), key=lambda kv: -kv[1]):
        print(f"  {kind:<13} {count}")

    metrics = json.loads((out_dir / "metrics.json").read_text())
    epochs = len(metrics["sample_times_ns"])
    series = metrics["series"]
    print(f"\nmetric time series: {len(series)} series, "
          f"{epochs} epochs sampled")
    for name in ("ctrl.writes_slow", "ctrl.writes_normal",
                 "queue.write.depth", "quota.banks_gated"):
        if name in series:
            column = [v for v in series[name] if v is not None]
            print(f"  {name:<20} last={column[-1]:g}")

    heatmap = json.loads((out_dir / "heatmap.json").read_text())
    final = heatmap["cumulative"][-1]
    hottest = max(range(len(final)), key=final.__getitem__)
    print(f"\nwear heatmap: {heatmap['num_banks']} banks x "
          f"{len(heatmap['cumulative'])} epochs")
    print(f"  hottest bank: #{hottest} "
          f"({final[hottest]:.1f} write-equivalents; "
          f"mean {sum(final) / len(final):.1f})")

    print(f"\nopen {out_dir / 'trace.chrome.json'} at "
          "https://ui.perfetto.dev to browse the trace")


if __name__ == "__main__":
    main()
