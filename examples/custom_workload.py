#!/usr/bin/env python3
"""Drive the simulator with your own trace and with workload mixes.

Shows the three ways to get traffic into the system besides the built-in
Table IV profiles:

1. hand-built :class:`TraceRecord` streams (here: a tiling matrix kernel);
2. traces recorded to / replayed from files (``repro.cpu.tracefile``);
3. multiprogrammed mixes of built-in profiles (``repro.workloads.mix``).

Usage:
    python examples/custom_workload.py
"""

import os
import tempfile
from pathlib import Path

from repro import SimConfig, run_simulation
from repro.cpu.trace import TraceRecord
from repro.cpu.tracefile import load_trace, save_trace
from repro.sim.system import System


_SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))


def make_config(**kwargs):
    """A SimConfig honouring REPRO_SCALE (set it <1 for quick runs)."""
    config = SimConfig(**kwargs)
    if _SCALE != 1.0:
        config = config.scaled(_SCALE)
    return config



def tiled_matrix_kernel(tiles=64, tile_blocks=256, reuse=4):
    """A blocked kernel: stream a tile, reuse it, write results back."""
    while True:
        for tile in range(tiles):
            base = tile * tile_blocks
            for _ in range(reuse):
                for offset in range(tile_blocks):
                    yield TraceRecord(12, base + offset, False)
            for offset in range(tile_blocks):
                yield TraceRecord(12, base + offset, True)


def run_custom_trace():
    config = make_config(workload="lbm", policy="BE-Mellow+SC",
                         warmup_accesses=10_000, measure_accesses=30_000)
    system = System(config)                  # workload name is a placeholder
    system._trace = tiled_matrix_kernel()
    system.core.trace = system._trace
    result = system.run()
    print("custom tiled kernel under BE-Mellow+SC:")
    print(f"  IPC {result.ipc:.3f}, lifetime {result.lifetime_years:.1f} y, "
          f"eager writebacks {result.eager_writebacks}")


def run_trace_file_roundtrip():
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "kernel.trace.gz"
        count = save_trace(tiled_matrix_kernel(), path, limit=50_000)
        print(f"\nrecorded {count} records to {path.name} "
              f"({path.stat().st_size // 1024} KiB gzip'd)")
        replayed = sum(1 for _ in load_trace(path))
        print(f"replayed {replayed} records from disk")


def run_mix():
    result = run_simulation(make_config(
        workload="mix_write_heavy",          # lbm + leslie3d, interleaved
        policy="BE-Mellow+SC+WQ",
        warmup_accesses=10_000, measure_accesses=30_000,
    ))
    print("\nmultiprogrammed mix (lbm + leslie3d) under BE-Mellow+SC+WQ:")
    print(f"  IPC {result.ipc:.3f}, lifetime {result.lifetime_years:.1f} y, "
          f"drain time {result.drain_fraction:.1%}")


def main():
    run_custom_trace()
    run_trace_file_roundtrip()
    run_mix()


if __name__ == "__main__":
    main()
