#!/usr/bin/env python3
"""Quickstart: simulate one workload under two write policies.

Runs the lbm workload (the suite's write monster) under the baseline
``Norm`` policy and under the paper's best scheme ``BE-Mellow+SC+WQ``, and
prints the performance/lifetime trade-off the paper is about.

Usage:
    python examples/quickstart.py [workload]
"""

import os
import sys

from repro import SimConfig, run_simulation


_SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))


def make_config(**kwargs):
    """A SimConfig honouring REPRO_SCALE (set it <1 for quick runs)."""
    config = SimConfig(**kwargs)
    if _SCALE != 1.0:
        config = config.scaled(_SCALE)
    return config



def describe(result):
    print(f"  IPC:               {result.ipc:.3f}")
    print(f"  lifetime:          {result.lifetime_years:.2f} years")
    print(f"  bank utilization:  {result.bank_utilization:.1%}")
    print(f"  write-drain time:  {result.drain_fraction:.1%}")
    print(f"  writes (normal):   {result.writes_issued_normal}")
    print(f"  writes (slow):     {result.writes_issued_slow}")
    print(f"  eager writebacks:  {result.eager_writebacks}")
    print(f"  cancellations:     {result.cancellations}")
    print(f"  memory energy:     {result.total_energy_pj / 1e6:.2f} uJ")


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "lbm"
    print(f"workload: {workload}\n")

    baseline = run_simulation(make_config(workload=workload, policy="Norm"))
    print("Norm (baseline, all writes at 150 ns):")
    describe(baseline)

    mellow = run_simulation(
        make_config(workload=workload, policy="BE-Mellow+SC+WQ")
    )
    print("\nBE-Mellow+SC+WQ (Bank-Aware + Eager Mellow Writes, slow writes"
          " cancellable, 8-year Wear Quota):")
    describe(mellow)

    print("\nMellow Writes vs baseline: "
          f"{mellow.ipc / baseline.ipc:.2f}x IPC, "
          f"{mellow.lifetime_years / baseline.lifetime_years:.2f}x lifetime")


if __name__ == "__main__":
    main()
