#!/usr/bin/env python3
"""Wear Quota in action: guaranteeing a target lifetime under heavy writes.

Sweeps the Wear Quota target across several lifetimes on a write-intensive
workload and shows the performance the guarantee costs - the paper's
Section IV-C / VI-A story.  Longer windows track the asymptotic guarantee
more closely (the gate only switches at 500 us period boundaries).

Usage:
    python examples/lifetime_guarantee.py [workload]
"""

import os
import sys

from repro import SimConfig, run_simulation


_SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))


def make_config(**kwargs):
    """A SimConfig honouring REPRO_SCALE (set it <1 for quick runs)."""
    config = SimConfig(**kwargs)
    if _SCALE != 1.0:
        config = config.scaled(_SCALE)
    return config



def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "stream"
    print(f"workload: {workload}\n")

    baseline = run_simulation(make_config(workload=workload, policy="Norm"))
    print(f"Norm baseline: IPC {baseline.ipc:.3f}, "
          f"lifetime {baseline.lifetime_years:.2f} years\n")

    header = (f"{'target':>7} {'policy':<18} {'IPC':>6} {'vs Norm':>8} "
              f"{'life(y)':>8} {'slow writes':>12}")
    print(header)
    print("-" * len(header))
    for target_years in (4.0, 8.0, 16.0):
        for policy in ("Norm+WQ", "BE-Mellow+SC+WQ"):
            result = run_simulation(make_config(
                workload=workload,
                policy=policy,
                target_lifetime_years=target_years,
            ))
            slow_share = result.writes_issued_slow / max(
                1, result.writes_issued_total,
            )
            print(f"{target_years:>6.0f}y {policy:<18} {result.ipc:>6.3f} "
                  f"{result.ipc / baseline.ipc:>7.2f}x "
                  f"{result.lifetime_years:>8.2f} {slow_share:>11.1%}")

    print("\nHigher targets force more slow writes; BE-Mellow+SC+WQ reaches")
    print("the same guarantee with less performance loss because it picks")
    print("*which* writes go slow (idle banks, useless dirty lines).")


if __name__ == "__main__":
    main()
