#!/usr/bin/env python3
"""Compare the whole wear-limiting/leveling zoo on one workload.

Combines the paper's temporal technique (Mellow Writes) with the physical
techniques from its related-work section - Flip-N-Write, DRAM write
buffering, write pausing - and renders the lifetimes as a terminal bar
chart against the 8-year target.  Also reports the measured leveling
efficiency of the implemented wear levelers.

Usage:
    python examples/wear_limiting_zoo.py [workload]
"""

import os
import sys

from repro import SimConfig, run_simulation
from repro.analysis.charts import bar_chart
from repro.endurance.leveling import (
    NoLeveler,
    RotationLeveler,
    SecurityRefreshLeveler,
    StartGapLeveler,
    measure_efficiency,
)

_SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))


def make_config(**kwargs):
    """A SimConfig honouring REPRO_SCALE (set it <1 for quick runs)."""
    config = SimConfig(**kwargs)
    if _SCALE != 1.0:
        config = config.scaled(_SCALE)
    return config


CONFIGS = [
    ("Norm", dict(policy="Norm")),
    ("Norm + Flip-N-Write", dict(policy="Norm", flip_n_write=True)),
    ("Norm + DRAM buffer", dict(policy="Norm", dram_buffer_entries=4096)),
    ("BE-Mellow+SC", dict(policy="BE-Mellow+SC")),
    ("BE-Mellow+SC+WP (pausing)", dict(policy="BE-Mellow+SC+WP")),
    ("BE-Mellow+SC + FNW", dict(policy="BE-Mellow+SC", flip_n_write=True)),
    ("BE-Mellow+SC+WQ", dict(policy="BE-Mellow+SC+WQ")),
]


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "milc"
    print(f"workload: {workload}\n")

    lifetimes = []
    ipcs = []
    for label, kwargs in CONFIGS:
        result = run_simulation(make_config(workload=workload, **kwargs))
        lifetimes.append((label, min(result.lifetime_years, 500.0)))
        ipcs.append((label, result.ipc))

    print("Lifetime (years; | marks the 8-year target):\n")
    print(bar_chart(lifetimes, reference=8.0, reference_label="8-year target",
                    unit=" y"))
    print("\nIPC:\n")
    print(bar_chart(ipcs, unit=" ipc"))

    print("\nWear-leveler efficiency under a 4-line hotspot "
          "(fraction of ideal lifetime):\n")
    levelers = [
        ("none", NoLeveler(64)),
        ("Start-Gap (paper)", StartGapLeveler(64, psi=10)),
        ("Security Refresh", SecurityRefreshLeveler(64, refresh_interval=10)),
        ("line rotation", RotationLeveler(64, psi=10)),
    ]
    efficiency = [
        (label, measure_efficiency(leveler, writes=100_000))
        for label, leveler in levelers
    ]
    print(bar_chart(efficiency, unit=""))


if __name__ == "__main__":
    main()
