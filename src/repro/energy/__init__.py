"""Energy models: Table V cell parameters, the nvsim-equivalent line
energy model (Table VI), and run-level accounting (Figure 16)."""
