"""ReRAM cell parameters (Table V).

Five design points, CellA..CellE, spanning normal set/reset energies of
0.1-1.6 pJ per cell at 22 nm.  A 3x slow write runs at 0.767x the dissipated
power of a normal write (exponential dependence of ionic velocity on
temperature), so it costs 3 * 0.767 = 2.3x the energy per cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro import params


@dataclass(frozen=True)
class CellParameters:
    """Per-cell electrical parameters for one design point."""

    name: str
    set_energy_pj: float                 # normal set == reset energy
    read_voltage_v: float = params.READ_VOLTAGE_V
    write_voltage_normal_v: float = params.WRITE_VOLTAGE_NORMAL_V
    write_voltage_slow_v: float = params.WRITE_VOLTAGE_SLOW_V
    slow_energy_ratio: float = params.SLOW_CELL_ENERGY_RATIO

    def __post_init__(self) -> None:
        if self.set_energy_pj <= 0:
            raise ValueError("set_energy_pj must be positive")
        if self.slow_energy_ratio <= 0:
            raise ValueError("slow_energy_ratio must be positive")

    @property
    def reset_energy_pj(self) -> float:
        return self.set_energy_pj

    def cell_write_energy_pj(self, slow: bool) -> float:
        """Energy to program one cell at the chosen speed."""
        if slow:
            return self.set_energy_pj * self.slow_energy_ratio
        return self.set_energy_pj

    def cell_write_energy_for(self, factor: float) -> float:
        """Energy to program one cell at an arbitrary slowdown factor.

        Power falls sub-linearly as the pulse lengthens (exponential ionic
        drift), so energy grows as factor ** alpha with alpha calibrated to
        the paper's single published point: a 3x pulse costs 2.3x energy,
        giving alpha = ln(2.3)/ln(3) ~= 0.758.
        """
        if factor < 1.0:
            raise ValueError("slowdown factor must be >= 1.0")
        alpha = math.log(self.slow_energy_ratio) / math.log(3.0)
        return self.set_energy_pj * factor ** alpha


CELLS: Dict[str, CellParameters] = {
    name: CellParameters(name=name, set_energy_pj=energy)
    for name, energy in params.CELL_ENERGIES_PJ.items()
}


def get_cell(name: str) -> CellParameters:
    try:
        return CELLS[name]
    except KeyError:
        known = ", ".join(CELLS)
        raise KeyError(f"unknown cell {name!r} (known: {known})") from None
