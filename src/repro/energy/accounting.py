"""Run-level main-memory energy accounting (Figure 16).

Charges, per the paper's Section VI-F:

* every row-buffer-miss read: one full buffer read (1503 pJ);
* every row-buffer-hit read: 100 pJ;
* every completed write at its speed's line energy (CellC by default);
* every *cancelled* write attempt at the energy fraction of the pulse it
  completed - cancellation and eager writebacks are exactly why Mellow
  Writes costs extra energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import params
from repro.energy.nvsim import LineEnergyModel


@dataclass
class EnergyAccount:
    model: LineEnergyModel = field(
        default_factory=lambda: LineEnergyModel.for_cell(
            params.DEFAULT_ENERGY_CELL
        )
    )
    read_hit_count: int = 0
    read_miss_count: int = 0
    write_normal_count: float = 0.0     # fractional attempts accumulate
    write_slow_count: float = 0.0

    def charge_read(self, row_hit: bool) -> None:
        if row_hit:
            self.read_hit_count += 1
        else:
            self.read_miss_count += 1

    def charge_write(self, slow: bool, fraction: float = 1.0) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if slow:
            self.write_slow_count += fraction
        else:
            self.write_normal_count += fraction

    @property
    def read_energy_pj(self) -> float:
        return (
            self.read_hit_count * self.model.read_energy_pj(True)
            + self.read_miss_count * self.model.read_energy_pj(False)
        )

    @property
    def write_energy_pj(self) -> float:
        return (
            self.write_normal_count * self.model.write_energy_pj(False)
            + self.write_slow_count * self.model.write_energy_pj(True)
        )

    @property
    def total_pj(self) -> float:
        return self.read_energy_pj + self.write_energy_pj

    def reset(self) -> None:
        self.read_hit_count = 0
        self.read_miss_count = 0
        self.write_normal_count = 0.0
        self.write_slow_count = 0.0
