"""Analytic line/row energy model standing in for nvsim (Table VI).

Table VI's structure is fully determined by two observations:

* a cacheline write programs 512 cells (64 B), half set / half reset (the
  paper's stated assumption), so the array energy is
  ``512 * cell_energy`` for normal writes and ``512 * 2.3 * cell_energy``
  for slow writes;
* peripheral circuitry (decoders, drivers, sense amps) adds a speed- and
  cell-independent constant per operation.

Solving the published CellC row (402.4 pJ normal write at 0.4 pJ/cell)
gives a peripheral write energy of 197.6 pJ; that single constant then
reproduces *every* normal and slow write entry of Table VI, as the test
suite verifies.  The buffer (row) read energy, 1503 pJ for a 1 KB row
buffer, is likewise peripheral-dominated and taken as a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro import params
from repro.energy.cells import CellParameters, get_cell

CELLS_PER_LINE = params.CACHELINE_BYTES * 8      # one cell per bit
WRITE_PERIPHERAL_PJ = 197.6                      # solved from Table VI CellC
BUFFER_READ_PJ = 1503.0                          # Table VI, all cells


@dataclass(frozen=True)
class LineEnergyModel:
    """Energy per memory operation for one cell design point."""

    cell: CellParameters
    cells_per_line: int = CELLS_PER_LINE
    write_peripheral_pj: float = WRITE_PERIPHERAL_PJ
    buffer_read_pj: float = BUFFER_READ_PJ
    row_hit_read_pj: float = params.ROW_BUFFER_HIT_READ_PJ

    @classmethod
    def for_cell(cls, name: str = params.DEFAULT_ENERGY_CELL) -> "LineEnergyModel":
        return cls(cell=get_cell(name))

    def write_energy_pj(self, slow: bool) -> float:
        """Energy of one cacheline write (Table VI norm/slow columns).

        Half the bits are set and half reset; set and reset energies are
        equal in Table V, so the array term is cells * cell_energy.
        """
        array = self.cells_per_line * self.cell.cell_write_energy_pj(slow)
        return array + self.write_peripheral_pj

    def write_energy_pj_for(self, factor: float) -> float:
        """Line write energy at an arbitrary slowdown factor (multi-latency
        extension); matches ``write_energy_pj`` at factors 1.0 and 3.0."""
        array = self.cells_per_line * self.cell.cell_write_energy_for(factor)
        return array + self.write_peripheral_pj

    @property
    def slow_norm_ratio(self) -> float:
        """The Table VI "Slow-Norm Write Energy Ratio" column."""
        return self.write_energy_pj(True) / self.write_energy_pj(False)

    def read_energy_pj(self, row_hit: bool) -> float:
        """Row-buffer-hit read vs full buffer (array row) read."""
        return self.row_hit_read_pj if row_hit else self.buffer_read_pj


def table_vi_rows() -> List[Dict[str, object]]:
    """Regenerate Table VI: one row per cell design point."""
    rows: List[Dict[str, object]] = []
    for name in params.CELL_ENERGIES_PJ:
        model = LineEnergyModel.for_cell(name)
        rows.append({
            "cell": name,
            "buffer_read_pj": model.buffer_read_pj,
            "norm_write_pj": model.write_energy_pj(False),
            "slow_write_pj": model.write_energy_pj(True),
            "slow_norm_ratio": model.slow_norm_ratio,
        })
    return rows
