"""Process-wide switch for the optimized hot-path execution layer.

The simulator keeps two implementations of its per-access machinery:

* the **reference path** - the readable, obviously-correct code the rest of
  the documentation describes (scheduled gap events in the core, the
  O(assoc) LRU scan, ``random.Random`` convenience methods in trace
  generation);
* the **hot path** - slimmed variants of exactly the same algorithms
  (analytic clock advances, C-level tag scans, prebound RNG primitives)
  that produce bit-identical results several times faster.

``REPRO_NO_FASTPATH=1`` forces the reference path everywhere.  It is the
oracle: the A/B bit-identity tests and the CI perf gate
(``benchmarks/check_hotpath_speedup.py``) run every matrix config in both
modes and require identical ``RunResult`` payloads, cache keys and
telemetry bundles - and a >=2x wall-clock win for the hot path.

The switch is intentionally environment-only.  It must never influence
results, so it has no place in :class:`~repro.sim.config.SimConfig` or the
sweep cache key.
"""

from __future__ import annotations

import os

FASTPATH_ENV = "REPRO_NO_FASTPATH"


def fastpath_enabled() -> bool:
    """Whether the optimized hot-path layer is allowed (default: yes).

    Set ``REPRO_NO_FASTPATH=1`` (or ``true``/``yes``/``on``) to force the
    reference execution path.  Forced-off runs are bit-identical to
    hot-path runs; the switch exists for A/B verification and as the perf
    baseline, not because results differ.
    """
    return os.environ.get(FASTPATH_ENV, "").strip().lower() not in (
        "1", "true", "yes", "on",
    )
