"""Central simulation constants taken verbatim from the paper's Tables I/II/V.

All times in this package are expressed in integer nanoseconds unless a name
says otherwise.  Every latency in Table II is an exact multiple of the 2.5 ns
memory-clock period, so integer nanoseconds are lossless.
"""

# ---------------------------------------------------------------------------
# Table I - processor
# ---------------------------------------------------------------------------

CPU_FREQ_GHZ = 2.0
CPU_CLK_NS = 0.5
CPU_ISSUE_WIDTH = 8
CACHELINE_BYTES = 64

LLC_SIZE_BYTES = 2 * 1024 * 1024
LLC_ASSOC = 16
LLC_HIT_LATENCY_CYCLES = 35          # processor cycles
LLC_HIT_LATENCY_NS = LLC_HIT_LATENCY_CYCLES * CPU_CLK_NS
LLC_MSHRS = 32

# Eager Mellow Writes profiling (Section IV-B1)
USELESS_THRESHOLD_RATIO = 1.0 / 32.0
PROFILE_PERIOD_NS = 500_000

# ---------------------------------------------------------------------------
# Table II - main memory system
# ---------------------------------------------------------------------------

MEM_FREQ_MHZ = 400
MEM_CLK_NS = 2.5
BUS_WIDTH_BYTES = 8                  # 64-bit bus
BURST_NS = CACHELINE_BYTES // BUS_WIDTH_BYTES * MEM_CLK_NS  # 20 ns / line

ROW_BUFFER_BYTES = 1024
ROW_SIZE_BYTES = 16 * 1024

T_RCD_NS = 120                       # 48 memory cycles
T_CAS_NS = 2.5                       # 1 memory cycle
T_FAW_NS = 50
T_FAW_ACTIVATES = 4

T_WP_NORMAL_NS = 150                 # 60 cycles
SLOW_FACTOR_DEFAULT = 3.0
SLOW_FACTORS = (1.0, 1.5, 2.0, 3.0)

READ_QUEUE_ENTRIES = 32
WRITE_QUEUE_ENTRIES = 32
WRITE_DRAIN_LOW = 16                 # drain stops when occupancy falls here
WRITE_DRAIN_HIGH = 32                # drain starts when occupancy reaches here
EAGER_QUEUE_ENTRIES = 16

DEFAULT_BANKS = 16
DEFAULT_RANKS = 4
BANK_OPTIONS = ((4, 1), (8, 2), (16, 4))   # (banks, ranks)

# Wear Quota (Section IV-C)
TARGET_LIFETIME_YEARS = 8.0
WEAR_QUOTA_PERIOD_NS = 500_000
RATIO_QUOTA = 0.90

# ---------------------------------------------------------------------------
# Endurance model (Section II, Figure 1)
# ---------------------------------------------------------------------------

BASE_ENDURANCE = 5.0e6               # writes at normal (150 ns) latency
EXPO_FACTOR_DEFAULT = 2.0
EXPO_FACTORS = (1.0, 1.5, 2.0, 2.5, 3.0)

# Start-Gap (Qureshi et al., used at bank granularity)
START_GAP_PSI = 100                  # gap moves once per PSI writes
START_GAP_EFFICIENCY = 0.90          # fraction of ideal leveling we credit

# Modeled memory geometry.  The paper does not state total capacity; 16 GiB
# over 16 banks makes Norm lifetimes land in the single-digit-year range the
# paper reports for write-heavy workloads.
MEMORY_CAPACITY_BYTES = 16 * 1024 ** 3

SECONDS_PER_YEAR = 365.25 * 24 * 3600
NS_PER_YEAR = SECONDS_PER_YEAR * 1e9

# ---------------------------------------------------------------------------
# Table V - ReRAM cell parameters (22 nm)
# ---------------------------------------------------------------------------

READ_VOLTAGE_V = 0.20
WRITE_VOLTAGE_NORMAL_V = 1.00
WRITE_VOLTAGE_SLOW_V = 0.95
READ_POWER_UW = 0.02

# Energy per cell (pJ) for normal set/reset; slow = 2.3x (0.767x power, 3x time)
CELL_ENERGIES_PJ = {
    "CellA": 0.1,
    "CellB": 0.2,
    "CellC": 0.4,
    "CellD": 0.8,
    "CellE": 1.6,
}
SLOW_CELL_ENERGY_RATIO = 2.3
SLOW_POWER_RATIO = 0.767

# Figure 16 energy accounting assumptions
ROW_BUFFER_HIT_READ_PJ = 100.0
DEFAULT_ENERGY_CELL = "CellC"
