"""SECDED extended Hamming code (single-error-correct, double-detect).

This is the real encoder/decoder, not a probability model: the
property-based tests round-trip arbitrary data words, flip bits, and
check the correct/detect contract bit by bit.  The fault injector uses
only the code's *capability* constants (:data:`CORRECTABLE_BITS`,
:data:`DETECTABLE_BITS`) on its hot path - per-write encode/decode of
actual line contents would dominate simulation time for no added model
fidelity - so this module is the executable specification of what the
injector's outcome ladder assumes.

Layout (the classic extended Hamming construction, e.g. (72, 64) for
64-bit words): codeword bit positions are 1-indexed; positions that are
powers of two hold parity bits, the rest hold data bits in ascending
order; position 0 holds the overall parity bit that upgrades SEC to
SECDED.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: Errors per codeword the code corrects / detects.
CORRECTABLE_BITS = 1
DETECTABLE_BITS = 2

STATUS_CLEAN = "clean"
STATUS_CORRECTED = "corrected"
STATUS_DETECTED = "detected"


def parity_bit_count(data_bits: int) -> int:
    """Hamming parity bits needed for ``data_bits`` (excl. overall parity)."""
    if data_bits < 1:
        raise ValueError("data_bits must be >= 1")
    count = 0
    while (1 << count) < data_bits + count + 1:
        count += 1
    return count


def codeword_length(data_bits: int) -> int:
    """Total codeword bits, including the overall-parity bit at position 0."""
    return data_bits + parity_bit_count(data_bits) + 1


def _data_positions(data_bits: int) -> List[int]:
    """1-indexed codeword positions of the data bits (non powers of two)."""
    positions: List[int] = []
    pos = 1
    while len(positions) < data_bits:
        if pos & (pos - 1):
            positions.append(pos)
        pos += 1
    return positions


def _extract_data(word: int, data_bits: int) -> int:
    data = 0
    for index, pos in enumerate(_data_positions(data_bits)):
        if (word >> pos) & 1:
            data |= 1 << index
    return data


def encode(data: int, data_bits: int = 64) -> int:
    """Encode ``data`` into an extended Hamming codeword."""
    if data < 0:
        raise ValueError("data must be non-negative")
    if data >> data_bits:
        raise ValueError(f"data does not fit in {data_bits} bits")
    total = data_bits + parity_bit_count(data_bits)
    word = 0
    for index, pos in enumerate(_data_positions(data_bits)):
        if (data >> index) & 1:
            word |= 1 << pos
    # Each parity bit at position 2^i makes the XOR over every position
    # with bit i set (itself included) come out even.
    for i in range(parity_bit_count(data_bits)):
        mask = 1 << i
        parity = 0
        for pos in range(1, total + 1):
            if pos & mask and (word >> pos) & 1:
                parity ^= 1
        if parity:
            word |= 1 << mask
    # Overall parity (position 0) makes the whole codeword even-parity.
    if bin(word).count("1") & 1:
        word |= 1
    return word


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one codeword.

    Attributes:
        data: recovered data word; -1 when ``status`` is "detected"
            (a double-bit error is reported, never silently 'fixed').
        status: one of STATUS_CLEAN / STATUS_CORRECTED / STATUS_DETECTED.
        corrected_position: codeword bit position that was flipped back
            (0 = the overall parity bit itself); -1 when nothing was.
    """

    data: int
    status: str
    corrected_position: int = -1


def decode(codeword: int, data_bits: int = 64) -> DecodeResult:
    """Decode a codeword, correcting <= 1 bit and detecting 2-bit errors."""
    total = data_bits + parity_bit_count(data_bits)
    if codeword < 0:
        raise ValueError("codeword must be non-negative")
    if codeword >> (total + 1):
        raise ValueError(f"codeword does not fit in {total + 1} bits")
    syndrome = 0
    for pos in range(1, total + 1):
        if (codeword >> pos) & 1:
            syndrome ^= pos
    overall_odd = bin(codeword).count("1") & 1
    if syndrome == 0 and not overall_odd:
        return DecodeResult(_extract_data(codeword, data_bits), STATUS_CLEAN)
    if overall_odd:
        # Exactly one bit flipped; the syndrome is its position (0 means
        # the overall-parity bit itself took the hit).
        repaired = codeword ^ (1 << syndrome)
        return DecodeResult(
            _extract_data(repaired, data_bits), STATUS_CORRECTED, syndrome,
        )
    # Non-zero syndrome with consistent overall parity: an even number of
    # flips happened - uncorrectable, but reliably detected.
    return DecodeResult(-1, STATUS_DETECTED)
