"""Fault injection and graceful degradation for resistive memories.

The paper's lifetime argument is analytic: wear accumulates, and the
device is declared dead when the projected damage crosses the endurance
budget.  This package closes the loop end-to-end - cells actually *fail*
during simulation, and the pipeline has to survive them:

* per-cell endurance limits are drawn from the lognormal distribution of
  :mod:`repro.endurance.variability` (seeded, lazy, per line);
* an exhausted cell becomes a stuck-at fault; write-verify detects the
  mismatch at write completion;
* the controller retries the write a bounded number of times on the
  Mellow Writes slow path, then leans on SECDED ECC (one wrong cell per
  line is correctable);
* beyond ECC capacity the line is retired and remapped into a per-bank
  spare region;
* when the spares run out the run ends gracefully in an *uncorrectable*
  terminal state, reported through :class:`repro.sim.stats.RunResult`.

Determinism contract: the package never touches module-global
randomness (enforced by simlint rule SIM010); every draw comes from the
seeded ``random.Random`` injected by :class:`repro.sim.system.System`,
so fault runs are bit-identical per seed, across processes, and across
the fastpath/reference implementations.
"""

from repro.faults.config import FaultConfig
from repro.faults.ecc import (CORRECTABLE_BITS, DETECTABLE_BITS,
                              STATUS_CLEAN, STATUS_CORRECTED,
                              STATUS_DETECTED, DecodeResult, codeword_length,
                              decode, encode, parity_bit_count)
from repro.faults.injector import (WRITE_CORRECTED, WRITE_FATAL, WRITE_OK,
                                   WRITE_RETIRED, WRITE_RETRY, FaultInjector,
                                   FaultStats)

__all__ = [
    "FaultConfig",
    "FaultInjector", "FaultStats",
    "WRITE_OK", "WRITE_CORRECTED", "WRITE_RETRY", "WRITE_RETIRED",
    "WRITE_FATAL",
    "encode", "decode", "DecodeResult", "codeword_length",
    "parity_bit_count", "CORRECTABLE_BITS", "DETECTABLE_BITS",
    "STATUS_CLEAN", "STATUS_CORRECTED", "STATUS_DETECTED",
]
