"""The fault injector: per-cell endurance limits, write-verify, spares.

One :class:`FaultInjector` lives per :class:`repro.sim.system.System`
when ``SimConfig.faults`` is set.  The memory controller feeds it from
two hook points:

* :meth:`FaultInjector.record_damage` - every time wear is deposited
  (write completion *and* partial cancelled pulses), the touched line's
  cells age; cells whose sampled endurance limit is crossed die and
  become stuck-at faults.
* :meth:`FaultInjector.verify_write` - at write completion, the
  write-verify step compares the line against what was written.  Each
  dead cell mismatches with ``stuck_mismatch_probability``.  The
  outcome ladder is::

      no mismatch                     -> WRITE_OK
      mismatch, retries remain        -> WRITE_RETRY   (slow re-issue)
      mismatch <= ECC capability      -> WRITE_CORRECTED
      beyond ECC, spare available     -> WRITE_RETIRED (remap to spare)
      beyond ECC, no spare            -> WRITE_FATAL   (terminal)

Determinism: all randomness comes from the injected seeded
``random.Random`` - this module never calls into the ``random`` module
(simlint rule SIM010 enforces that) - and line state is sampled lazily
in first-touch order, which the seeded simulation makes reproducible.
Timestamps come from the injected ``clock`` (the event queue's ``now``),
so the injector is also wall-clock-free.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.endurance.model import EnduranceModel
from repro.endurance.variability import EnduranceVariability
from repro.faults.config import FaultConfig
from repro.faults.ecc import CORRECTABLE_BITS

# Write-verify outcomes, in escalation order.
WRITE_OK = "ok"
WRITE_RETRY = "retry"
WRITE_CORRECTED = "corrected"
WRITE_RETIRED = "retired"
WRITE_FATAL = "fatal"

Clock = Callable[[], float]


@dataclass
class FaultStats:
    """Lifetime-of-run fault tallies (never reset at end of warmup:
    time-to-failure is a survival time measured from the start of the
    timed run, not a windowed rate)."""

    cells_failed: int = 0
    write_retries: int = 0
    corrected_writes: int = 0
    lines_retired: int = 0
    uncorrectable: bool = False
    first_failure_ns: Optional[float] = None
    uncorrectable_ns: Optional[float] = None


@dataclass
class _LineState:
    """Wear state of one line: sorted cell limits + accumulated damage.

    ``limits`` holds the per-cell endurance limits in *accelerated*
    damage units, sorted ascending so the number of dead cells is a
    single bisect of the damage counter.
    """

    limits: List[float]
    damage: float = 0.0
    dead: int = 0
    replaced: int = 0   # times this logical address was remapped to a spare


class FaultInjector:
    """Deterministic, seedable fault injection for one simulated system."""

    def __init__(self, config: FaultConfig, num_banks: int,
                 model: EnduranceModel, rng: random.Random,
                 clock: Clock) -> None:
        if num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        self.config = config
        self.model = model
        self._rng = rng
        self._clock = clock
        self.stats = FaultStats()
        # Lazy, sparse line state: workloads touch a tiny fraction of a
        # 16 GiB address space, so per-line state materialises on first
        # touch (in deterministic first-touch order).
        self._lines: List[Dict[int, _LineState]] = [
            {} for _ in range(num_banks)
        ]
        self.spares_left: List[int] = (
            [config.spare_lines_per_bank] * num_banks
        )
        self.retired_per_bank: List[int] = [0] * num_banks
        self._variability = EnduranceVariability(
            median_endurance=config.median_endurance, sigma=config.sigma,
        )

    # ------------------------------------------------------------------
    # Line state
    # ------------------------------------------------------------------

    def _sample_limits(self) -> List[float]:
        limits = self._variability.sample_cell_limits(
            self._rng, self.config.cells_per_line,
        )
        acceleration = self.config.wear_acceleration
        if acceleration != 1.0:
            limits = [limit / acceleration for limit in limits]
        limits.sort()
        return limits

    def _state(self, bank: int, line: int) -> _LineState:
        states = self._lines[bank]
        state = states.get(line)
        if state is None:
            state = _LineState(limits=self._sample_limits())
            states[line] = state
        return state

    def dead_cells(self, bank: int, line: int) -> int:
        """Current stuck-at cell count of a line (0 if never touched)."""
        state = self._lines[bank].get(line)
        return state.dead if state is not None else 0

    # ------------------------------------------------------------------
    # Controller hooks
    # ------------------------------------------------------------------

    def record_damage(self, bank: int, line: int, slow_factor: float,
                      fraction: float) -> int:
        """Deposit wear on a line; returns the number of newly dead cells.

        ``fraction`` is the executed share of the programming pulse (1.0
        for a completed write, partial for cancelled pulses), already
        scaled by any wear limiter (Flip-N-Write).  Damage is measured
        in normal-write equivalents, so a slow write at factor f costs
        f**-Expo_Factor - the Mellow Writes advantage carries straight
        into cell survival.
        """
        if fraction <= 0.0:
            return 0
        state = self._state(bank, line)
        state.damage += self.model.damage_per_write(slow_factor) * fraction
        dead = bisect_right(state.limits, state.damage)
        newly_dead = dead - state.dead
        if newly_dead > 0:
            state.dead = dead
            self.stats.cells_failed += newly_dead
            if self.stats.first_failure_ns is None:
                self.stats.first_failure_ns = self._clock()
        return newly_dead

    def verify_write(self, bank: int, line: int, retries: int) -> str:
        """Write-verify at completion; returns a WRITE_* outcome.

        ``retries`` is how many verify-retries this request has already
        burned; the caller increments it when the outcome is
        WRITE_RETRY and re-issues on the slow path.
        """
        state = self._lines[bank].get(line)
        if state is None or state.dead == 0:
            return WRITE_OK
        probability = self.config.stuck_mismatch_probability
        mismatches = 0
        for _ in range(state.dead):
            if self._rng.random() < probability:
                mismatches += 1
        if mismatches == 0:
            return WRITE_OK
        if retries < self.config.max_write_retries:
            self.stats.write_retries += 1
            return WRITE_RETRY
        if mismatches <= CORRECTABLE_BITS:
            self.stats.corrected_writes += 1
            return WRITE_CORRECTED
        return self._retire(bank, line, state)

    # ------------------------------------------------------------------
    # Retirement / terminal state
    # ------------------------------------------------------------------

    def _retire(self, bank: int, line: int, state: _LineState) -> str:
        if self.spares_left[bank] <= 0:
            self.stats.uncorrectable = True
            if self.stats.uncorrectable_ns is None:
                self.stats.uncorrectable_ns = self._clock()
            return WRITE_FATAL
        self.spares_left[bank] -= 1
        self.stats.lines_retired += 1
        self.retired_per_bank[bank] += 1
        # Remap: the logical line now lives on a fresh spare whose cells
        # are sampled immediately (still from the injected RNG, still in
        # deterministic order).  The write lands on the spare, so the
        # request completes successfully.
        self._lines[bank][line] = _LineState(
            limits=self._sample_limits(), replaced=state.replaced + 1,
        )
        return WRITE_RETIRED

    @property
    def uncorrectable(self) -> bool:
        return self.stats.uncorrectable

    def total_spares_left(self) -> int:
        return sum(self.spares_left)
