"""Configuration for the fault-injection subsystem.

A :class:`FaultConfig` hangs off :class:`repro.sim.config.SimConfig` as
``faults=...``; the default ``faults=None`` disables the subsystem
entirely and is guaranteed bit-identical to a build without this
package (the fault key is only appended to ``SimConfig.cache_key()``
when faults are enabled, so pre-existing cache entries keep their
digests).

``median_endurance`` is the *physical* median cell endurance in
normal-speed-write equivalents (the paper's 5e6 writes).  Simulated
windows cover microseconds, not years, so Monte Carlo lifetime studies
compress time with ``wear_acceleration``: every unit of deposited
damage is multiplied by it, exactly like accelerated-aging lab tests.
Slow writes keep their full advantage under acceleration - a 3x slow
write still deposits 1/9 of the damage at Expo_Factor 2 - so relative
survival times between policies are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro import params

#: JSON-safe scalar union used in cache keys.
KeyItem = Union[str, int, float]

#: SIM012 registry: FaultConfig fields deliberately outside key().
#: Empty on purpose - every fault knob changes simulated outcomes, so
#: every field is part of the digest.  Adding a field here (with a
#: reason) is the explicit act simlint requires before a new knob can
#: stay out of the cache key.
CACHE_KEY_EXCLUDED: dict[str, str] = {}


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of the fault-injection and graceful-degradation pipeline.

    Attributes:
        median_endurance: median per-cell endurance in normal-write
            equivalents (lognormal median).
        sigma: lognormal shape of the cell endurance distribution in
            natural-log space; 0 degenerates to deterministic limits.
        cells_per_line: modelled cells per protected line.  Small on
            purpose: each cell stands for an ECC symbol group, not one
            physical bit, keeping verify draws O(few) per write.
        spare_lines_per_bank: retirement budget; a line whose faults
            exceed ECC capacity remaps here.  When a bank's budget is
            exhausted the next over-capacity line is uncorrectable.
        max_write_retries: bounded write-verify retries per request
            before the outcome escalates to ECC/retirement.  Retries
            re-issue on the Mellow Writes slow path.
        stuck_mismatch_probability: probability that a dead (stuck-at)
            cell disagrees with the data being written; 0.5 models a
            uniformly random stuck value.
        wear_acceleration: accelerated-aging multiplier on deposited
            damage (1.0 = real time; Monte Carlo uses ~1e5-1e6).
    """

    median_endurance: float = params.BASE_ENDURANCE
    sigma: float = 0.3
    cells_per_line: int = 8
    spare_lines_per_bank: int = 32
    max_write_retries: int = 2
    stuck_mismatch_probability: float = 0.5
    wear_acceleration: float = 1.0

    def __post_init__(self) -> None:
        if self.median_endurance <= 0:
            raise ValueError("median_endurance must be positive")
        if self.sigma < 0:
            raise ValueError("sigma cannot be negative")
        if self.cells_per_line < 1:
            raise ValueError("cells_per_line must be >= 1")
        if self.spare_lines_per_bank < 0:
            raise ValueError("spare_lines_per_bank cannot be negative")
        if self.max_write_retries < 0:
            raise ValueError("max_write_retries cannot be negative")
        if not 0.0 <= self.stuck_mismatch_probability <= 1.0:
            raise ValueError("stuck_mismatch_probability must be in [0, 1]")
        if self.wear_acceleration <= 0:
            raise ValueError("wear_acceleration must be positive")

    def key(self) -> Tuple[KeyItem, ...]:
        """JSON-serialisable identity, nested into SimConfig.cache_key()."""
        return (
            "faults", self.median_endurance, self.sigma,
            self.cells_per_line, self.spare_lines_per_bank,
            self.max_write_retries, self.stuck_mismatch_probability,
            self.wear_acceleration,
        )
