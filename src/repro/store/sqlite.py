"""The single-file SQLite backend: one shareable database, WAL mode.

One ``.db`` file holds every entry and telemetry bundle, which makes the
whole cache a single artifact to copy between machines or CI jobs.  WAL
journaling plus a generous busy timeout keeps concurrent sweep processes
and the serve layer's executor threads safe: every write happens inside
one transaction, so a reader sees an entry (or a bundle) entirely or not
at all - the transactional equivalent of the file backend's
atomic-rename and manifest-last guarantees.

Timestamps (``created_at``/``accessed_at``) exist only so TTL/LRU
eviction can order entries; they never feed a digest or a result.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Dict, List, Optional

from repro.store.base import (KIND_BUNDLE, KIND_ENTRY, Clock, EvictionPolicy,
                              Store, StoreEntry)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    digest      TEXT PRIMARY KEY,
    data        BLOB NOT NULL,
    created_at  REAL NOT NULL,
    accessed_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS bundles (
    digest      TEXT PRIMARY KEY,
    created_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS bundle_files (
    digest TEXT NOT NULL,
    name   TEXT NOT NULL,
    data   BLOB NOT NULL,
    PRIMARY KEY (digest, name)
);
"""


class SQLiteStore(Store):
    """Content-addressed store over one SQLite database file."""

    kind = "sqlite"

    #: Default database path for a bare ``sqlite:`` URL.
    DEFAULT_PATH = ".repro_cache.db"

    def __init__(self, path: Path | str = DEFAULT_PATH,
                 policy: Optional[EvictionPolicy] = None,
                 clock: Optional[Clock] = None) -> None:
        super().__init__(policy=policy, clock=clock)
        self.path = Path(path)
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # One shared connection guarded by the store lock: simulations
        # happen in worker *processes* (which never touch the parent's
        # store), so a single serialized connection per process is
        # plenty - and WAL makes cross-process sharing of the same file
        # safe.
        self._conn = sqlite3.connect(
            str(self.path), timeout=30.0, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.executescript(_SCHEMA)

    @property
    def description(self) -> str:
        return f"sqlite:{self.path}"

    # -- entries --------------------------------------------------------

    def _get(self, digest: str) -> Optional[bytes]:
        row = self._conn.execute(
            "SELECT data FROM entries WHERE digest = ?", (digest,),
        ).fetchone()
        if row is None:
            return None
        with self._conn:
            self._conn.execute(
                "UPDATE entries SET accessed_at = ? WHERE digest = ?",
                (self._clock(), digest))
        return bytes(row[0])

    def _put(self, digest: str, data: bytes) -> None:
        now = self._clock()
        with self._conn:
            self._conn.execute(
                "INSERT INTO entries (digest, data, created_at, accessed_at) "
                "VALUES (?, ?, ?, ?) "
                "ON CONFLICT(digest) DO UPDATE SET "
                "data = excluded.data, created_at = excluded.created_at, "
                "accessed_at = excluded.accessed_at",
                (digest, sqlite3.Binary(data), now, now))

    def _exists(self, digest: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM entries WHERE digest = ?", (digest,),
        ).fetchone()
        return row is not None

    def _delete(self, digest: str) -> bool:
        with self._conn:
            cursor = self._conn.execute(
                "DELETE FROM entries WHERE digest = ?", (digest,))
        return cursor.rowcount > 0

    def _scan(self) -> List[StoreEntry]:
        found = [
            StoreEntry(digest=str(digest), kind=KIND_ENTRY, size=int(size),
                       mtime=float(created), atime=float(accessed))
            for digest, size, created, accessed in self._conn.execute(
                "SELECT digest, length(data), created_at, accessed_at "
                "FROM entries")
        ]
        found.extend(
            StoreEntry(digest=str(digest), kind=KIND_BUNDLE,
                       size=int(size or 0), mtime=float(created))
            for digest, created, size in self._conn.execute(
                "SELECT b.digest, b.created_at, "
                "(SELECT SUM(length(f.data)) FROM bundle_files f "
                " WHERE f.digest = b.digest) FROM bundles b")
        )
        return found

    # -- bundles --------------------------------------------------------

    def _has_bundle(self, digest: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM bundles WHERE digest = ?", (digest,),
        ).fetchone()
        return row is not None

    def _put_bundle(self, digest: str, files: Dict[str, bytes]) -> None:
        # One transaction = the manifest-last guarantee: the bundles row
        # (what _has_bundle reads) becomes visible only with every file.
        with self._conn:
            self._conn.execute(
                "DELETE FROM bundle_files WHERE digest = ?", (digest,))
            self._conn.executemany(
                "INSERT INTO bundle_files (digest, name, data) "
                "VALUES (?, ?, ?)",
                [(digest, name, sqlite3.Binary(data))
                 for name, data in sorted(files.items())])
            self._conn.execute(
                "INSERT INTO bundles (digest, created_at) VALUES (?, ?) "
                "ON CONFLICT(digest) DO UPDATE SET "
                "created_at = excluded.created_at",
                (digest, self._clock()))

    def _get_bundle(self, digest: str) -> Optional[Dict[str, bytes]]:
        if not self._has_bundle(digest):
            return None
        return {
            str(name): bytes(data)
            for name, data in self._conn.execute(
                "SELECT name, data FROM bundle_files WHERE digest = ? "
                "ORDER BY name", (digest,))
        }

    def _delete_bundle(self, digest: str) -> bool:
        with self._conn:
            self._conn.execute(
                "DELETE FROM bundle_files WHERE digest = ?", (digest,))
            cursor = self._conn.execute(
                "DELETE FROM bundles WHERE digest = ?", (digest,))
        return cursor.rowcount > 0

    def close(self) -> None:
        with self._lock:
            self._conn.close()
