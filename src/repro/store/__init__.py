"""Pluggable content-addressed storage for results and telemetry.

Every cached simulation result and telemetry bundle lives in a
:class:`Store` keyed by the config digest, with four interchangeable
backends (``file``, ``sqlite``, ``memory``, ``tiered``) selected by the
``REPRO_CACHE_URL`` grammar.  Backend choice never touches a cache key:
the same config digests identically everywhere, which is what makes
``repro cache sync`` a pure, idempotent byte-copy between any two
backends.  See ``docs/storage.md`` for the full contract.
"""

from repro.store.base import (
    KIND_BUNDLE,
    KIND_ENTRY,
    EvictionPolicy,
    Store,
    StoreCounters,
    StoreEntry,
    StoreStats,
    SyncReport,
    export_bundle_dir,
    read_bundle_dir,
)
from repro.store.codec import (
    CACHE_SCHEMA_VERSION,
    CacheEntryError,
    atomic_write_bytes,
    atomic_write_text,
    entry_from_json,
    entry_to_json,
    result_from_dict,
    result_to_dict,
)
from repro.store.file import FileStore
from repro.store.maintenance import (
    cache_clear,
    cache_stats,
    cache_verify,
    open_store,
    sync_stores,
)
from repro.store.memory import MemoryStore
from repro.store.sqlite import SQLiteStore
from repro.store.tiered import TieredStore
from repro.store.url import StoreURLError, resolve_store, store_from_url

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheEntryError",
    "EvictionPolicy",
    "FileStore",
    "KIND_BUNDLE",
    "KIND_ENTRY",
    "MemoryStore",
    "SQLiteStore",
    "Store",
    "StoreCounters",
    "StoreEntry",
    "StoreStats",
    "StoreURLError",
    "SyncReport",
    "TieredStore",
    "atomic_write_bytes",
    "atomic_write_text",
    "cache_clear",
    "cache_stats",
    "cache_verify",
    "entry_from_json",
    "entry_to_json",
    "export_bundle_dir",
    "open_store",
    "read_bundle_dir",
    "resolve_store",
    "result_from_dict",
    "result_to_dict",
    "store_from_url",
    "sync_stores",
]
