"""The abstract content-addressed store every backend implements.

A :class:`Store` holds two kinds of objects, both keyed by the config
digest (:meth:`SimConfig.cache_digest`):

* **entries** - single blobs of bytes (the schema-versioned JSON cache
  entries from :mod:`repro.store.codec`);
* **bundles** - multi-file telemetry bundles.  A bundle is only ever
  visible as a whole: backends must commit the manifest last (file
  backend) or in one transaction (sqlite backend), so a reader that can
  see ``manifest.json`` can trust every other file is present.

The public methods here are template methods: they do uniform counter
bookkeeping (gets/puts/hits/misses/deletes/evictions, surfaced on
``repro serve``'s ``/metrics``) and hold the store lock, then delegate
to the ``_``-prefixed primitive the backend provides.  That keeps
counting and thread-safety semantics identical across backends - the
conformance suite in ``tests/test_store.py`` relies on it.

Backend choice is *never* part of a cache key: the same config digests
to the same entry in every backend, which is what makes ``repro cache
sync`` a pure byte-copy.
"""

from __future__ import annotations

import tempfile
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional

from repro.store.codec import atomic_write_bytes
from repro.telemetry import MANIFEST_NAME, bundle_is_complete


def host_now() -> float:
    """Host wall clock for entry timestamps (TTL/LRU eviction only).

    The storage layer is infrastructure, not simulation logic: these
    timestamps order evictions and never reach a cache key or a result,
    so reading the host clock is correct - this single suppressed call
    site documents that.  Stores take an injectable ``clock`` so tests
    can drive TTL expiry deterministically.
    """
    return time.time()   # simlint: ignore[SIM003] -- eviction timestamps, never feed a digest


Clock = Callable[[], float]


#: Entry kinds a :meth:`Store.scan` can report.
KIND_ENTRY = "entry"
KIND_BUNDLE = "bundle"


@dataclass(frozen=True)
class StoreEntry:
    """One object a :meth:`Store.scan` found.

    ``mtime`` is the last-modified host timestamp (0.0 when the backend
    cannot know it); ``atime`` is the last *read* timestamp where the
    backend tracks accesses (sqlite, memory) and falls back to ``mtime``
    elsewhere.  Both exist purely for TTL/LRU eviction ordering.
    """

    digest: str
    kind: str
    size: int
    mtime: float = 0.0
    atime: float = 0.0

    @property
    def last_used(self) -> float:
        return self.atime if self.atime else self.mtime


@dataclass(frozen=True)
class StoreStats:
    """Cheap whole-store summary (:meth:`Store.stat`)."""

    kind: str
    description: str
    entries: int
    bundles: int
    entry_bytes: int


@dataclass
class StoreCounters:
    """Uniform per-store operation counters.

    Maintained by the :class:`Store` template methods so every backend
    counts identically; exported as ``store.<kind>.<counter>`` probes on
    the serve layer's ``/metrics``.
    """

    gets: int = 0
    hits: int = 0
    misses: int = 0
    puts: int = 0
    deletes: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "gets": self.gets, "hits": self.hits, "misses": self.misses,
            "puts": self.puts, "deletes": self.deletes,
            "evictions": self.evictions,
        }


@dataclass(frozen=True)
class EvictionPolicy:
    """TTL/LRU bounds applied after every put (and on explicit evict).

    ``ttl`` drops entries not modified within the last ``ttl`` seconds;
    ``max_entries``/``max_bytes`` then trim least-recently-used entries
    until the store fits.  An evicted entry takes its same-digest
    telemetry bundle with it (a bundle without its entry is dead weight -
    nothing will ever read it back through the runner).
    """

    ttl: Optional[float] = None
    max_entries: Optional[int] = None
    max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError(f"ttl must be positive, got {self.ttl}")
        if self.max_entries is not None and self.max_entries < 0:
            raise ValueError(
                f"max_entries cannot be negative, got {self.max_entries}")
        if self.max_bytes is not None and self.max_bytes < 0:
            raise ValueError(
                f"max_bytes cannot be negative, got {self.max_bytes}")

    @property
    def bounded(self) -> bool:
        return (self.ttl is not None or self.max_entries is not None
                or self.max_bytes is not None)


@dataclass
class SyncReport:
    """What one :func:`repro.store.sync_stores` pass copied."""

    entries_copied: int = 0
    entries_skipped: int = 0
    bundles_copied: int = 0
    bundles_skipped: int = 0
    bytes_copied: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "entries_copied": self.entries_copied,
            "entries_skipped": self.entries_skipped,
            "bundles_copied": self.bundles_copied,
            "bundles_skipped": self.bundles_skipped,
            "bytes_copied": self.bytes_copied,
        }


class Store(ABC):
    """Digest-keyed, bytes-valued storage with atomic bundle commits.

    Subclasses implement the ``_``-prefixed primitives; the public
    surface adds locking (one store object may be shared between the
    serve event loop and its executor threads) and counter bookkeeping.
    """

    #: Short backend tag ("file", "sqlite", "memory", "tiered"); also
    #: the URL scheme that constructs the backend.
    kind: str = "abstract"

    def __init__(self, policy: Optional[EvictionPolicy] = None,
                 clock: Optional[Clock] = None) -> None:
        self.policy = policy
        self.counters = StoreCounters()
        self._clock = clock if clock is not None else host_now
        self._lock = threading.RLock()
        self._staging: Optional[Path] = None

    # -- identity -------------------------------------------------------

    @property
    @abstractmethod
    def description(self) -> str:
        """Canonical URL for this store (round-trips through the parser)."""

    def location(self, digest: str) -> str:
        """Human-readable address of one entry (error messages, reports)."""
        return f"{self.description}#{digest}"

    # -- entry API ------------------------------------------------------

    def get(self, digest: str) -> Optional[bytes]:
        with self._lock:
            data = self._get(digest)
            self.counters.gets += 1
            if data is None:
                self.counters.misses += 1
            else:
                self.counters.hits += 1
            return data

    def put(self, digest: str, data: bytes) -> None:
        with self._lock:
            self._put(digest, data)
            self.counters.puts += 1
            if self.policy is not None and self.policy.bounded:
                self._evict_locked(self._clock())

    def exists(self, digest: str) -> bool:
        with self._lock:
            return self._exists(digest)

    def delete(self, digest: str) -> bool:
        with self._lock:
            removed = self._delete(digest)
            if removed:
                self.counters.deletes += 1
            return removed

    def scan(self) -> List[StoreEntry]:
        """Every entry and bundle, sorted by (kind, digest).

        The deterministic order is what lets ``cache stats``/``verify``/
        ``sync`` share one loop across backends and still produce stable
        reports.
        """
        with self._lock:
            return sorted(self._scan(),
                          key=lambda e: (e.kind, e.digest))

    def stat(self) -> StoreStats:
        entries = bundles = entry_bytes = 0
        for item in self.scan():
            if item.kind == KIND_BUNDLE:
                bundles += 1
            else:
                entries += 1
                entry_bytes += item.size
        return StoreStats(kind=self.kind, description=self.description,
                          entries=entries, bundles=bundles,
                          entry_bytes=entry_bytes)

    # -- bundle API -----------------------------------------------------

    def has_bundle(self, digest: str) -> bool:
        with self._lock:
            return self._has_bundle(digest)

    def put_bundle(self, digest: str, files: Mapping[str, bytes]) -> None:
        """Commit a complete multi-file bundle atomically.

        The mapping must include the manifest: a bundle is *defined* by
        its manifest landing last, and committing one without it would
        create a bundle no reader can ever trust.
        """
        if MANIFEST_NAME not in files:
            raise ValueError(
                f"bundle {digest} is missing {MANIFEST_NAME}; refusing to "
                "commit an incomplete bundle")
        with self._lock:
            self._put_bundle(digest, dict(files))
            self.counters.puts += 1

    def get_bundle(self, digest: str) -> Optional[Dict[str, bytes]]:
        with self._lock:
            files = self._get_bundle(digest)
            self.counters.gets += 1
            if files is None:
                self.counters.misses += 1
            else:
                self.counters.hits += 1
            return files

    def delete_bundle(self, digest: str) -> bool:
        with self._lock:
            removed = self._delete_bundle(digest)
            if removed:
                self.counters.deletes += 1
            return removed

    # -- filesystem seams (telemetry zero-copy + staging) ---------------

    def entry_path(self, digest: str) -> Optional[Path]:
        """Filesystem home of an entry, when the backend has one.

        Only the file backend returns a path; everything that must poke
        at raw entry files (tests corrupting entries, legacy tooling)
        goes through this instead of guessing the layout.
        """
        return None

    def bundle_path(self, digest: str) -> Optional[Path]:
        """Directory a bundle natively lives in, when the backend has one.

        When non-None the simulator writes its telemetry bundle straight
        into this directory (zero-copy); otherwise the runner stages the
        bundle on disk and commits it via :meth:`put_bundle`.
        """
        return None

    def staging_root(self) -> Path:
        """Scratch directory for bundle staging (non-filesystem backends)."""
        with self._lock:
            if self._staging is None:
                self._staging = Path(tempfile.mkdtemp(
                    prefix=f"repro-{self.kind}-staging-"))
            return self._staging

    # -- maintenance ----------------------------------------------------

    def clear(self) -> int:
        """Delete everything; returns objects removed (bundle counts 1)."""
        with self._lock:
            removed = 0
            for item in self._scan():
                if item.kind == KIND_BUNDLE:
                    removed += int(self._delete_bundle(item.digest))
                else:
                    removed += int(self._delete(item.digest))
            return removed

    def evict(self, now: Optional[float] = None) -> int:
        """Apply the eviction policy; returns entries evicted."""
        with self._lock:
            return self._evict_locked(
                self._clock() if now is None else now)

    def _evict_locked(self, now: float) -> int:
        policy = self.policy
        if policy is None or not policy.bounded:
            return 0
        entries = sorted(
            (e for e in self._scan() if e.kind == KIND_ENTRY),
            key=lambda e: (e.last_used, e.digest))
        doomed: List[str] = []
        if policy.ttl is not None:
            live = []
            for item in entries:
                if now - item.mtime > policy.ttl:
                    doomed.append(item.digest)
                else:
                    live.append(item)
            entries = live
        if policy.max_entries is not None:
            while len(entries) > policy.max_entries:
                doomed.append(entries.pop(0).digest)
        if policy.max_bytes is not None:
            total = sum(e.size for e in entries)
            while entries and total > policy.max_bytes:
                victim = entries.pop(0)
                total -= victim.size
                doomed.append(victim.digest)
        for digest in doomed:
            if self._delete(digest):
                self.counters.evictions += 1
            self._delete_bundle(digest)
        return len(doomed)

    def close(self) -> None:
        """Release backend resources; the store is unusable afterwards."""

    # -- backend primitives --------------------------------------------

    @abstractmethod
    def _get(self, digest: str) -> Optional[bytes]: ...

    @abstractmethod
    def _put(self, digest: str, data: bytes) -> None: ...

    @abstractmethod
    def _exists(self, digest: str) -> bool: ...

    @abstractmethod
    def _delete(self, digest: str) -> bool: ...

    @abstractmethod
    def _scan(self) -> List[StoreEntry]: ...

    @abstractmethod
    def _has_bundle(self, digest: str) -> bool: ...

    @abstractmethod
    def _put_bundle(self, digest: str, files: Dict[str, bytes]) -> None: ...

    @abstractmethod
    def _get_bundle(self, digest: str) -> Optional[Dict[str, bytes]]: ...

    @abstractmethod
    def _delete_bundle(self, digest: str) -> bool: ...


def export_bundle_dir(files: Mapping[str, bytes], out_dir: Path) -> None:
    """Materialise a bundle's files into a directory, manifest last.

    Mirrors the telemetry writer's own ordering so a half-exported
    directory is never mistaken for a complete bundle
    (:func:`repro.telemetry.bundle_is_complete`).
    """
    out_dir = Path(out_dir)
    for name in sorted(files):
        if name == MANIFEST_NAME:
            continue
        atomic_write_bytes(out_dir / name, files[name])
    atomic_write_bytes(out_dir / MANIFEST_NAME, files[MANIFEST_NAME])


def read_bundle_dir(bundle: Path) -> Optional[Dict[str, bytes]]:
    """Load a complete on-disk bundle into memory; None if incomplete.

    The inverse of :func:`export_bundle_dir`: stray ``*.tmp`` debris is
    skipped, and a directory without its manifest reads as no bundle at
    all (never as a partial one).
    """
    bundle = Path(bundle)
    if not bundle_is_complete(bundle):
        return None
    files: Dict[str, bytes] = {}
    for path in sorted(bundle.iterdir()):
        if not path.is_file() or path.name.endswith(".tmp"):
            continue
        files[path.name] = path.read_bytes()
    return files
