"""The in-process dict backend: tests, and the ``REPRO_NO_CACHE`` store.

Nothing touches the filesystem (telemetry staging aside, which every
non-filesystem backend shares via :meth:`Store.staging_root`).  Injected
into the :class:`~repro.experiments.runner.Runner` when the persistent
cache is disabled, so the "no cache" code path is *the same code path*
as the cached one - the entries simply die with the store object.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.store.base import (KIND_BUNDLE, KIND_ENTRY, Clock, EvictionPolicy,
                              Store, StoreEntry)


class MemoryStore(Store):
    """Ephemeral content-addressed store over plain dicts."""

    kind = "memory"

    def __init__(self, policy: Optional[EvictionPolicy] = None,
                 clock: Optional[Clock] = None) -> None:
        super().__init__(policy=policy, clock=clock)
        #: digest -> (data, mtime, atime)
        self._entries: Dict[str, Tuple[bytes, float, float]] = {}
        self._bundles: Dict[str, Tuple[Dict[str, bytes], float]] = {}

    @property
    def description(self) -> str:
        return "memory:"

    # -- entries --------------------------------------------------------

    def _get(self, digest: str) -> Optional[bytes]:
        item = self._entries.get(digest)
        if item is None:
            return None
        data, mtime, _ = item
        self._entries[digest] = (data, mtime, self._clock())
        return data

    def _put(self, digest: str, data: bytes) -> None:
        now = self._clock()
        self._entries[digest] = (data, now, now)

    def _exists(self, digest: str) -> bool:
        return digest in self._entries

    def _delete(self, digest: str) -> bool:
        return self._entries.pop(digest, None) is not None

    def _scan(self) -> List[StoreEntry]:
        found = [
            StoreEntry(digest=digest, kind=KIND_ENTRY, size=len(data),
                       mtime=mtime, atime=atime)
            for digest, (data, mtime, atime) in self._entries.items()
        ]
        found.extend(
            StoreEntry(digest=digest, kind=KIND_BUNDLE,
                       size=sum(len(blob) for blob in files.values()),
                       mtime=mtime)
            for digest, (files, mtime) in self._bundles.items()
        )
        return found

    # -- bundles --------------------------------------------------------

    def _has_bundle(self, digest: str) -> bool:
        return digest in self._bundles

    def _put_bundle(self, digest: str, files: Dict[str, bytes]) -> None:
        self._bundles[digest] = (dict(files), self._clock())

    def _get_bundle(self, digest: str) -> Optional[Dict[str, bytes]]:
        item = self._bundles.get(digest)
        if item is None:
            return None
        return dict(item[0])

    def _delete_bundle(self, digest: str) -> bool:
        return self._bundles.pop(digest, None) is not None
