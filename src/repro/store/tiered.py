"""Local-over-remote composition: the S3/redis-shaped seam.

A :class:`TieredStore` reads through a fast local store into a shared
remote one (write-back on remote hits) and writes through to both, so a
sweep started anywhere reuses every digest any worker has ever pushed to
the shared tier while keeping repeat reads local.  "Remote" today means
any other :class:`~repro.store.base.Store` (typically a sqlite file on
shared storage); a genuinely networked backend plugs in by implementing
the same ten primitives.

Telemetry bundles deliberately report no native ``bundle_path``: the
zero-copy path would write bundles only into the local tier and the
remote would silently never see them.  Staging + :meth:`put_bundle`
costs one copy and lands the bundle in both tiers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.store.base import Store, StoreEntry


class TieredStore(Store):
    """Read-through/write-back composition of two stores."""

    kind = "tiered"

    def __init__(self, local: Store, remote: Store) -> None:
        super().__init__(policy=None)
        self.local = local
        self.remote = remote

    @property
    def description(self) -> str:
        return f"tiered:{self.local.description}|{self.remote.description}"

    # -- entries --------------------------------------------------------

    def _get(self, digest: str) -> Optional[bytes]:
        data = self.local.get(digest)
        if data is not None:
            return data
        data = self.remote.get(digest)
        if data is not None:
            self.local.put(digest, data)   # write back for the next read
        return data

    def _put(self, digest: str, data: bytes) -> None:
        self.local.put(digest, data)
        self.remote.put(digest, data)

    def _exists(self, digest: str) -> bool:
        return self.local.exists(digest) or self.remote.exists(digest)

    def _delete(self, digest: str) -> bool:
        local = self.local.delete(digest)
        remote = self.remote.delete(digest)
        return local or remote

    def _scan(self) -> List[StoreEntry]:
        merged: Dict[tuple[str, str], StoreEntry] = {}
        for item in self.remote.scan():
            merged[(item.kind, item.digest)] = item
        for item in self.local.scan():
            merged[(item.kind, item.digest)] = item   # local wins
        return list(merged.values())

    # -- bundles --------------------------------------------------------

    def _has_bundle(self, digest: str) -> bool:
        return self.local.has_bundle(digest) or self.remote.has_bundle(digest)

    def _put_bundle(self, digest: str, files: Dict[str, bytes]) -> None:
        self.local.put_bundle(digest, files)
        self.remote.put_bundle(digest, files)

    def _get_bundle(self, digest: str) -> Optional[Dict[str, bytes]]:
        files = self.local.get_bundle(digest)
        if files is not None:
            return files
        files = self.remote.get_bundle(digest)
        if files is not None:
            self.local.put_bundle(digest, files)
        return files

    def _delete_bundle(self, digest: str) -> bool:
        local = self.local.delete_bundle(digest)
        remote = self.remote.delete_bundle(digest)
        return local or remote

    # -- plumbing -------------------------------------------------------

    def evict(self, now: Optional[float] = None) -> int:
        """Tier eviction is per-component (each side owns its policy)."""
        return self.local.evict(now) + self.remote.evict(now)

    def clear(self) -> int:
        # Count distinct objects (a digest present in both tiers is one
        # object); component stores do their own locking and deletion.
        distinct = len({(e.kind, e.digest) for e in self.scan()})
        self.local.clear()
        self.remote.clear()
        return distinct

    def close(self) -> None:
        self.local.close()
        self.remote.close()
