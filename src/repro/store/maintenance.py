"""Backend-agnostic cache maintenance: stats, verify, clear, sync.

These back the ``repro cache`` CLI verbs.  Before the store interface
existed they were three near-duplicate directory-walking loops inside
the runner; now each is one :meth:`Store.scan`-driven pass that works
identically against any backend (and therefore against a remote cache a
URL points at).

``sync_stores`` is the fleet-wide-dedupe primitive: entries and bundles
are copied digest-by-digest, skipping whatever the destination already
has - content addressing makes the copy idempotent and restartable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from repro.sim.config import digest_for_key
from repro.store.base import KIND_BUNDLE, Store, SyncReport
from repro.store.codec import CACHE_SCHEMA_VERSION, CacheEntryError, entry_from_json
from repro.store.url import resolve_store

#: What the maintenance verbs accept as a cache designator: an open
#: store, a directory path (the historic signature), a store URL, or
#: None (environment resolution).
CacheTarget = Union[Store, Path, str, None]

_ProgressFn = Callable[[str, str], None]


def open_store(target: CacheTarget) -> Store:
    """Resolve a maintenance target to a live store.

    Strings containing a scheme separator parse as store URLs; anything
    else path-like keeps the historic "cache directory" meaning.
    ``REPRO_NO_CACHE`` is deliberately ignored - inspecting a cache must
    work even where caching is disabled for runs.
    """
    if isinstance(target, Store):
        return target
    if isinstance(target, str) and ":" in target:
        return resolve_store(url=target, respect_no_cache=False)
    return resolve_store(cache_dir=target, respect_no_cache=False)


def cache_stats(target: CacheTarget = None) -> Dict[str, Any]:
    """Entry count / footprint / health summary of one cache store."""
    store = open_store(target)
    stats: Dict[str, Any] = {
        "cache_dir": store.description,
        "backend": store.kind,
        "entries": 0,
        "total_bytes": 0,
        "valid": 0,
        "invalid": 0,
        "schema_versions": {},
        "telemetry_bundles": 0,
    }
    for item in store.scan():
        if item.kind == KIND_BUNDLE:
            stats["telemetry_bundles"] += 1
            continue
        stats["entries"] += 1
        stats["total_bytes"] += item.size
        data = store.get(item.digest)
        try:
            payload = json.loads(data if data is not None else b"")
            schema = payload.get("schema", "unversioned")
        except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
            schema = "corrupt"
        key = str(schema)
        stats["schema_versions"][key] = stats["schema_versions"].get(key, 0) + 1
        if schema == CACHE_SCHEMA_VERSION:
            stats["valid"] += 1
        else:
            stats["invalid"] += 1
    return stats


def cache_verify(target: CacheTarget = None) -> Dict[str, Any]:
    """Deep-check every entry: parseable, current schema, digest matches.

    A digest mismatch means the entry was renamed/re-keyed or the key
    inside drifted; such entries would never be read back and only waste
    space.
    """
    store = open_store(target)
    report: Dict[str, Any] = {"cache_dir": store.description,
                              "ok": 0, "bad": []}
    for item in store.scan():
        if item.kind == KIND_BUNDLE:
            continue
        try:
            data = store.get(item.digest)
            if data is None:
                raise CacheEntryError("entry vanished mid-scan")
            text = data.decode("utf-8")
            entry_from_json(text)
            expected = digest_for_key(json.loads(text)["key"])
            if item.digest != expected:
                raise CacheEntryError(
                    f"digest mismatch (expected {expected})")
        except (CacheEntryError, OSError, UnicodeDecodeError) as error:
            report["bad"].append({"path": store.location(item.digest),
                                  "error": str(error)})
        else:
            report["ok"] += 1
    return report


def cache_clear(target: CacheTarget = None) -> int:
    """Delete all entries, bundles and backend debris; returns the count
    of objects removed (a bundle counts as one)."""
    return open_store(target).clear()


def sync_stores(src: Store, dst: Store,
                progress: Optional["_ProgressFn"] = None) -> SyncReport:
    """Replicate every entry and bundle from ``src`` into ``dst``.

    Digests already present in ``dst`` are skipped (content addressing:
    same digest, same bytes), so re-running a sync is cheap and an
    interrupted one resumes where it stopped.  Entries whose source
    vanishes mid-copy are skipped rather than failed - another process
    evicting concurrently is normal operation, not an error.
    """
    report = SyncReport()
    for item in src.scan():
        if item.kind == KIND_BUNDLE:
            if dst.has_bundle(item.digest):
                report.bundles_skipped += 1
                continue
            files = src.get_bundle(item.digest)
            if files is None:     # incomplete or concurrently deleted
                report.bundles_skipped += 1
                continue
            dst.put_bundle(item.digest, files)
            report.bundles_copied += 1
            report.bytes_copied += sum(len(blob) for blob in files.values())
        else:
            if dst.exists(item.digest):
                report.entries_skipped += 1
                continue
            data = src.get(item.digest)
            if data is None:
                report.entries_skipped += 1
                continue
            dst.put(item.digest, data)
            report.entries_copied += 1
            report.bytes_copied += len(data)
        if progress is not None:
            progress(item.kind, item.digest)
    return report
