"""The schema-versioned cache-entry codec, shared by every backend.

A cache entry is one JSON document: the schema version, the full
:meth:`SimConfig.cache_key` it was computed from, and the serialised
:class:`RunResult`.  The codec lives here - not in the runner - because
it is the *contract* of the storage layer: any :class:`repro.store.Store`
backend holds exactly these bytes under the entry's digest, so entries
replicated between backends (``repro cache sync``) stay byte-identical
and verifiable anywhere.

The strict key-set check in :func:`result_from_dict` means a payload
written by a different ``RunResult`` layout reads as a cache miss rather
than loading with fields quietly zeroed; bump
:data:`CACHE_SCHEMA_VERSION` whenever the entry layout or the
``RunResult`` serialisation changes.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import fields
from pathlib import Path
from typing import Any, Dict, List

from repro.endurance.wear import BankWearRecord
from repro.sim.config import SimConfig
from repro.sim.stats import RunResult

#: Bump whenever the on-disk entry layout or RunResult serialisation
#: changes; entries with any other version re-simulate.
CACHE_SCHEMA_VERSION = 3

#: RunResult fields with structured (non-scalar) serialisations.
_COMPOSITE_FIELDS = ("bank_utilizations", "wear_records")

#: Derived from the dataclass itself so a field added to RunResult is
#: serialised automatically instead of being silently dropped; a new
#: composite field must be added to _COMPOSITE_FIELDS (and given explicit
#: encode/decode logic below) or it will round-trip as-is and fail the
#: strict key check in result_from_dict.
_SCALAR_FIELDS = [
    f.name for f in fields(RunResult) if f.name not in _COMPOSITE_FIELDS
]


class CacheEntryError(RuntimeError):
    """A cache entry exists but cannot be trusted (corrupt or stale)."""


def result_to_dict(result: RunResult) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        name: getattr(result, name) for name in _SCALAR_FIELDS
    }
    data["bank_utilizations"] = list(result.bank_utilizations)
    data["wear_records"] = [
        {
            "normal": record.normal_writes,
            "slow": {str(k): v for k, v in record.slow_writes_by_factor.items()},
        }
        for record in result.wear_records
    ]
    return data


def result_from_dict(data: Dict[str, Any]) -> RunResult:
    # Strict key-set check: a payload written by a different RunResult
    # layout (field added or removed) must read as a cache miss, not load
    # with fields quietly zeroed.
    expected = set(_SCALAR_FIELDS) | set(_COMPOSITE_FIELDS)
    actual = set(data)
    if actual != expected:
        raise ValueError(
            "RunResult payload keys drifted: "
            f"missing={sorted(expected - actual)} "
            f"unexpected={sorted(actual - expected)}"
        )
    data = dict(data)
    bank_utilizations = data.pop("bank_utilizations")
    records: List[BankWearRecord] = []
    for item in data.pop("wear_records"):
        record = BankWearRecord(normal_writes=item["normal"])
        record.slow_writes_by_factor = {
            float(k): v for k, v in item["slow"].items()
        }
        records.append(record)
    result = RunResult(**data)
    result.wear_records = records
    result.bank_utilizations = bank_utilizations
    return result


def entry_to_json(config: SimConfig, result: RunResult) -> str:
    """Serialise one cache entry (schema version + key + result)."""
    return json.dumps({
        "schema": CACHE_SCHEMA_VERSION,
        "key": list(config.cache_key()),
        "result": result_to_dict(result),
    })


def entry_from_json(text: str) -> RunResult:
    """Parse a cache entry, raising :class:`CacheEntryError` on anything
    short of a well-formed current-schema entry."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise CacheEntryError(f"invalid JSON: {error}") from error
    if not isinstance(data, dict) or "schema" not in data:
        raise CacheEntryError("pre-versioning cache entry")
    if data["schema"] != CACHE_SCHEMA_VERSION:
        raise CacheEntryError(
            f"schema {data['schema']!r} != {CACHE_SCHEMA_VERSION}"
        )
    try:
        return result_from_dict(data["result"])
    except (KeyError, TypeError, ValueError) as error:
        raise CacheEntryError(f"undecodable result: {error!r}") from error


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` so readers never see a partial file.

    The temp file lives in the target directory so ``os.replace`` stays on
    one filesystem and is atomic; concurrent writers of the same key
    last-write-win with either complete payload.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: Path, text: str) -> None:
    """Text-mode convenience wrapper around :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))
