"""``REPRO_CACHE_URL`` grammar and the store resolver.

Grammar (full spec in ``docs/storage.md``)::

    file:<path>[?<params>]        directory layout (default .repro_cache)
    sqlite:<path>[?<params>]      one WAL database (default .repro_cache.db)
    memory:[?<params>]            in-process, dies with the store
    tiered:<local>|<remote>       read-through composition of two URLs

``<params>`` attach an eviction policy to that backend:
``ttl=<seconds>``, ``max_entries=<n>``, ``max_bytes=<n>``.

Resolution precedence (:func:`resolve_store`) keeps every pre-store
workflow working unchanged: ``REPRO_NO_CACHE=1`` still means "nothing
persists" (now as a memory store rather than boolean branches), an
explicit ``cache_dir`` still means that directory, and only then do
``REPRO_CACHE_URL``/``REPRO_CACHE_DIR`` apply.  None of this can move a
cache key - the URL picks *where* bytes live, never what digest they
live under.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional
from urllib.parse import parse_qsl

from repro.store.base import EvictionPolicy, Store
from repro.store.file import FileStore
from repro.store.memory import MemoryStore
from repro.store.sqlite import SQLiteStore
from repro.store.tiered import TieredStore

#: The schemes ``store_from_url`` understands, for error messages.
KNOWN_SCHEMES = ("file", "sqlite", "memory", "tiered")


class StoreURLError(ValueError):
    """A malformed store URL, worth one clear line on stderr."""


def _policy_from_query(query: str, url: str) -> Optional[EvictionPolicy]:
    if not query:
        return None
    ttl: Optional[float] = None
    max_entries: Optional[int] = None
    max_bytes: Optional[int] = None
    for key, value in parse_qsl(query, keep_blank_values=True):
        try:
            if key == "ttl":
                ttl = float(value)
            elif key == "max_entries":
                max_entries = int(value)
            elif key == "max_bytes":
                max_bytes = int(value)
            else:
                raise StoreURLError(
                    f"unknown store parameter {key!r} in {url!r} "
                    "(known: ttl, max_entries, max_bytes)")
        except ValueError as error:
            if isinstance(error, StoreURLError):
                raise
            raise StoreURLError(
                f"bad value for {key!r} in {url!r}: {value!r}") from None
    try:
        return EvictionPolicy(ttl=ttl, max_entries=max_entries,
                              max_bytes=max_bytes)
    except ValueError as error:
        raise StoreURLError(f"bad eviction policy in {url!r}: {error}"
                            ) from None


def store_from_url(url: str) -> Store:
    """Construct a backend from one store URL; raises StoreURLError."""
    scheme, sep, rest = url.partition(":")
    if not sep or not scheme:
        raise StoreURLError(
            f"store URL needs a scheme: {url!r} "
            f"(expected one of {', '.join(s + ':' for s in KNOWN_SCHEMES)})")
    scheme = scheme.lower()
    if scheme == "tiered":
        local_url, pipe, remote_url = rest.partition("|")
        if not pipe or not local_url or not remote_url:
            raise StoreURLError(
                f"tiered store URL needs 'tiered:<local>|<remote>', "
                f"got {url!r}")
        local = store_from_url(local_url)
        remote = store_from_url(remote_url)
        if isinstance(local, TieredStore) or isinstance(remote, TieredStore):
            raise StoreURLError(f"tiered stores do not nest: {url!r}")
        return TieredStore(local, remote)
    path, _, query = rest.partition("?")
    policy = _policy_from_query(query, url)
    if scheme == "file":
        return FileStore(Path(path) if path else Path(".repro_cache"),
                         policy=policy)
    if scheme == "sqlite":
        return SQLiteStore(Path(path) if path else
                           Path(SQLiteStore.DEFAULT_PATH), policy=policy)
    if scheme == "memory":
        if path:
            raise StoreURLError(
                f"memory: takes no path, got {url!r}")
        return MemoryStore(policy=policy)
    raise StoreURLError(
        f"unknown store scheme {scheme!r} in {url!r} "
        f"(known: {', '.join(KNOWN_SCHEMES)})")


def resolve_store(cache_dir: Optional[Path | str] = None,
                  url: Optional[str] = None,
                  respect_no_cache: bool = True) -> Store:
    """The one place backend selection happens.

    Precedence: ``REPRO_NO_CACHE=1`` (memory store; disabled caching) >
    explicit ``url`` > explicit ``cache_dir`` (file store, the historic
    ``Runner(cache_dir=...)`` contract) > ``REPRO_CACHE_URL`` >
    ``REPRO_CACHE_DIR`` > ``file:.repro_cache``.

    Maintenance verbs pass ``respect_no_cache=False``: inspecting or
    clearing an on-disk cache should work even in a shell where caching
    is disabled for runs.
    """
    if respect_no_cache and os.environ.get("REPRO_NO_CACHE", "0") == "1":
        return MemoryStore()
    if url is not None:
        return store_from_url(url)
    if cache_dir is not None:
        return FileStore(Path(cache_dir))
    env_url = os.environ.get("REPRO_CACHE_URL")
    if env_url:
        return store_from_url(env_url)
    return FileStore(Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache")))
