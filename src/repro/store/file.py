"""The directory-of-files backend: the original ``.repro_cache`` layout.

Layout (unchanged since PR 1/PR 3, so every pre-existing cache directory
reads back without migration)::

    <root>/<digest>.json        one cache entry (codec JSON, utf-8)
    <root>/<digest>.telemetry/  one telemetry bundle (manifest last)
    <root>/*.tmp                stray atomic-write temps (crash debris)

Writes are write-to-temp + ``os.replace`` in the target directory, so
concurrent writers of the same digest last-write-win with either
complete payload and readers never see a torn entry - exactly the
guarantee the pre-store runner provided.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Dict, List, Optional

from repro.store.base import (KIND_BUNDLE, KIND_ENTRY, Clock, EvictionPolicy,
                              Store, StoreEntry, export_bundle_dir,
                              read_bundle_dir)
from repro.store.codec import atomic_write_bytes
from repro.telemetry import bundle_is_complete

ENTRY_SUFFIX = ".json"
BUNDLE_SUFFIX = ".telemetry"


class FileStore(Store):
    """Content-addressed store over one flat directory."""

    kind = "file"

    def __init__(self, root: Path | str,
                 policy: Optional[EvictionPolicy] = None,
                 clock: Optional[Clock] = None) -> None:
        super().__init__(policy=policy, clock=clock)
        self.root = Path(root)

    @property
    def description(self) -> str:
        return f"file:{self.root}"

    def location(self, digest: str) -> str:
        return str(self._entry_file(digest))

    # -- layout ---------------------------------------------------------

    def _entry_file(self, digest: str) -> Path:
        return self.root / f"{digest}{ENTRY_SUFFIX}"

    def _bundle_dir(self, digest: str) -> Path:
        return self.root / f"{digest}{BUNDLE_SUFFIX}"

    def entry_path(self, digest: str) -> Optional[Path]:
        return self._entry_file(digest)

    def bundle_path(self, digest: str) -> Optional[Path]:
        return self._bundle_dir(digest)

    # -- entries --------------------------------------------------------

    def _get(self, digest: str) -> Optional[bytes]:
        try:
            return self._entry_file(digest).read_bytes()
        except FileNotFoundError:
            return None

    def _put(self, digest: str, data: bytes) -> None:
        atomic_write_bytes(self._entry_file(digest), data)

    def _exists(self, digest: str) -> bool:
        return self._entry_file(digest).is_file()

    def _delete(self, digest: str) -> bool:
        try:
            self._entry_file(digest).unlink()
        except FileNotFoundError:
            return False
        except OSError:
            return False
        return True

    def _scan(self) -> List[StoreEntry]:
        found: List[StoreEntry] = []
        if not self.root.is_dir():
            return found
        for path in self.root.glob(f"*{ENTRY_SUFFIX}"):
            try:
                info = path.stat()
            except OSError:
                continue
            found.append(StoreEntry(
                digest=path.name[:-len(ENTRY_SUFFIX)], kind=KIND_ENTRY,
                size=info.st_size, mtime=info.st_mtime))
        for path in self.root.glob(f"*{BUNDLE_SUFFIX}"):
            if not path.is_dir():
                continue
            size = 0
            mtime = 0.0
            for item in path.iterdir():
                try:
                    info = item.stat()
                except OSError:
                    continue
                size += info.st_size
                mtime = max(mtime, info.st_mtime)
            found.append(StoreEntry(
                digest=path.name[:-len(BUNDLE_SUFFIX)], kind=KIND_BUNDLE,
                size=size, mtime=mtime))
        return found

    # -- bundles --------------------------------------------------------

    def _has_bundle(self, digest: str) -> bool:
        return bundle_is_complete(self._bundle_dir(digest))

    def _put_bundle(self, digest: str, files: Dict[str, bytes]) -> None:
        export_bundle_dir(files, self._bundle_dir(digest))

    def _get_bundle(self, digest: str) -> Optional[Dict[str, bytes]]:
        return read_bundle_dir(self._bundle_dir(digest))

    def _delete_bundle(self, digest: str) -> bool:
        bundle = self._bundle_dir(digest)
        if not bundle.is_dir():
            return False
        try:
            shutil.rmtree(bundle)
        except OSError:
            return False
        return True

    # -- maintenance ----------------------------------------------------

    def clear(self) -> int:
        """Also sweep ``*.tmp`` crash debris the generic scan never sees."""
        with self._lock:
            removed = super().clear()
            if self.root.is_dir():
                for path in self.root.glob("*.tmp"):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
            return removed
