"""Bounded ring-buffer event tracer with JSONL and Chrome trace export.

The tracer records typed, timestamped events from the memory system hot
paths: request lifecycle (enqueue / issue / complete / cancel), drain
mode transitions, Wear Quota trips, eager demotions, and phase markers.
Timestamps are **simulated** nanoseconds - never wall clock (enforced by
simlint rule SIM008).

The buffer is a ``collections.deque(maxlen=capacity)`` of plain tuples:
when full, the oldest events are silently evicted and only ``dropped``
is bumped, so a long run costs O(capacity) memory no matter how many
events fire.  Tuples (not :class:`TraceEvent` instances) live in the
ring because ``record()`` runs hundreds of thousands of times per
simulation and per-event object allocation dominated the enabled-path
overhead; :class:`TraceEvent` objects are materialised lazily by
:meth:`EventTracer.events`.

Two export formats:

* :meth:`EventTracer.to_jsonl` - one JSON object per line, the raw record
  stream for ad-hoc analysis;
* :func:`chrome_trace` - the Chrome ``trace_event`` JSON-object format
  (https://ui.perfetto.dev opens it directly).  Issue/complete pairs
  become duration ("X") slices on a per-bank track, point events become
  instants ("i"), and sampled metric series become counter ("C") tracks.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from repro.telemetry.metrics import MetricRegistry

# Event kinds.  Kept as plain string constants (not an Enum) so hot-path
# record() calls avoid Enum attribute overhead and exports stay readable.
EV_ENQUEUE = "enqueue"
EV_ISSUE = "issue"
EV_COMPLETE = "complete"
EV_CANCEL = "cancel"
EV_PAUSE = "pause"
EV_DRAIN_ENTER = "drain_enter"
EV_DRAIN_EXIT = "drain_exit"
EV_QUOTA_TRIP = "quota_trip"
EV_EAGER_DEMOTE = "eager_demote"
EV_PHASE = "phase"
# Fault injection (repro.faults): cell death, write-verify retry, line
# retirement into the spare region, and the uncorrectable terminal state.
EV_CELL_FAIL = "cell_fail"
EV_VERIFY_RETRY = "verify_retry"
EV_LINE_RETIRE = "line_retire"
EV_UNCORRECTABLE = "uncorrectable"

EVENT_KINDS: Tuple[str, ...] = (
    EV_ENQUEUE, EV_ISSUE, EV_COMPLETE, EV_CANCEL, EV_PAUSE,
    EV_DRAIN_ENTER, EV_DRAIN_EXIT, EV_QUOTA_TRIP, EV_EAGER_DEMOTE,
    EV_PHASE, EV_CELL_FAIL, EV_VERIFY_RETRY, EV_LINE_RETIRE,
    EV_UNCORRECTABLE,
)

#: Event kinds that open a duration slice in the Chrome export.
_SLICE_OPENERS = (EV_ISSUE,)
#: Event kinds that close the slice opened by the matching issue.
_SLICE_CLOSERS = (EV_COMPLETE, EV_CANCEL)

#: The ring's internal record layout (field order of :class:`TraceEvent`).
_Record = Tuple[float, str, int, int, int, float, str]


@dataclass
class TraceEvent:
    """One typed trace record with a simulated-time stamp.

    ``t_ns``
        Simulated time of the event, nanoseconds.
    ``kind``
        One of the ``EV_*`` constants.
    ``bank`` / ``block`` / ``req_id``
        Identify where and which request; ``-1`` when not applicable.
    ``factor``
        Write slowdown factor in effect (1.0 = fast), 0.0 for reads and
        non-issue events.
    ``detail``
        Free-form short annotation ("read", "write", "eager", reason
        strings, phase names).
    """

    t_ns: float
    kind: str
    bank: int = -1
    block: int = -1
    req_id: int = -1
    factor: float = 0.0
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t_ns": self.t_ns,
            "kind": self.kind,
            "bank": self.bank,
            "block": self.block,
            "req_id": self.req_id,
            "factor": self.factor,
            "detail": self.detail,
        }


class EventTracer:
    """Fixed-capacity ring buffer of trace records."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: Deque[_Record] = deque(maxlen=capacity)
        self.recorded = 0  # total ever recorded, including evicted

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (derived, not tracked per call)."""
        return self.recorded - len(self._ring)

    def record(self, t_ns: float, kind: str, bank: int = -1,
               block: int = -1, req_id: int = -1, factor: float = 0.0,
               detail: str = "") -> None:
        # The deque's maxlen does the eviction; nothing else to maintain.
        self.recorded += 1
        self._ring.append((t_ns, kind, bank, block, req_id, factor, detail))

    def events(self) -> List[TraceEvent]:
        """Current ring contents as :class:`TraceEvent`, oldest first."""
        return [TraceEvent(*record) for record in self._ring]

    def raw(self) -> List[_Record]:
        """Current ring contents as bare tuples, oldest first."""
        return list(self._ring)

    def to_jsonl(self) -> str:
        """One compact JSON object per event, newline separated.

        ``kind`` and ``detail`` encodings are memoised: both are
        low-cardinality strings, and running ``json.dumps`` per record
        was the bulk of export time at full ring capacity.
        """
        encoded: Dict[str, str] = {}

        def enc(text: str) -> str:
            cached = encoded.get(text)
            if cached is None:
                cached = encoded[text] = json.dumps(text)
            return cached

        lines = [
            f'{{"t_ns":{t_ns},"kind":{enc(kind)},"bank":{bank},'
            f'"block":{block},"req_id":{req_id},"factor":{factor},'
            f'"detail":{enc(detail)}}}'
            for t_ns, kind, bank, block, req_id, factor, detail in self._ring
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def iter_dicts(self) -> Iterator[Dict[str, Any]]:
        for record in self._ring:
            yield TraceEvent(*record).to_dict()


def _counter_track_name(series_name: str) -> bool:
    """Series worth a Perfetto counter track (per-sample, low fan-out)."""
    return not series_name.startswith("hist.")


def chrome_trace_json(tracer: EventTracer,
                      metrics: Optional[MetricRegistry] = None,
                      process_name: str = "repro-sim") -> str:
    """Serialise the Chrome ``trace_event`` document straight to compact
    JSON text (what ``Telemetry.write`` puts in ``trace.chrome.json``).

    Layout: one fake process, one thread ("track") per bank plus track 0
    for bank-less events.  Timestamps are microseconds as the format
    requires; simulated ns divide by 1e3 exactly, no host clock involved.
    Issue/complete pairs become duration ("X") slices, point events
    instants ("i"), sampled metric series counter ("C") tracks.

    Emits f-string fragments with memoised string encoding instead of
    building one dict per ring record for a generic ``json.dumps`` pass:
    at full ring capacity the dict-then-dumps route dominated bundle
    write time and pushed the enabled-telemetry overhead past its gate.
    Numbers go through ``repr``, which matches ``json.dumps`` exactly
    for the ints and finite floats that reach this point.
    """
    records = tracer.raw()
    encoded: Dict[str, str] = {}

    def enc(text: str) -> str:
        cached = encoded.get(text)
        if cached is None:
            cached = encoded[text] = json.dumps(text)
        return cached

    parts: List[str] = [
        f'{{"name":"process_name","ph":"M","pid":1,"tid":0,'
        f'"args":{{"name":{enc(process_name)}}}}}'
    ]

    banks = sorted({record[2] for record in records if record[2] >= 0})
    for bank in banks:
        parts.append(
            f'{{"name":"thread_name","ph":"M","pid":1,"tid":{bank + 1},'
            f'"args":{{"name":"bank {bank}"}}}}')
    parts.append('{"name":"thread_name","ph":"M","pid":1,"tid":0,'
                 '"args":{"name":"system"}}')

    # Pair issue -> complete/cancel per (bank, req_id) into "X" slices.
    open_issues: Dict[Tuple[int, int], _Record] = {}
    for record in records:
        t_ns, kind, bank, block, req_id, factor, detail = record
        tid = bank + 1 if bank >= 0 else 0
        if kind in _SLICE_OPENERS:
            open_issues[(bank, req_id)] = record
            continue
        if kind in _SLICE_CLOSERS:
            opener = open_issues.pop((bank, req_id), None)
            if opener is not None:
                open_t, _, _, open_block, _, open_factor, open_detail = opener
                name = open_detail or "op"
                if open_factor > 1.0:
                    name = f"{name} x{open_factor:g}"
                if kind == EV_CANCEL:
                    name = f"{name} (cancelled)"
                parts.append(
                    f'{{"name":{enc(name)},"ph":"X","pid":1,"tid":{tid},'
                    f'"ts":{open_t / 1e3!r},"dur":{(t_ns - open_t) / 1e3!r},'
                    f'"args":{{"block":{open_block},"req_id":{req_id},'
                    f'"factor":{open_factor!r},"outcome":{enc(kind)}}}}}')
                continue
            # Closer whose opener was evicted from the ring: keep it as
            # an instant so the record is not lost entirely.
        name = f"{kind} {detail}" if detail else kind
        parts.append(
            f'{{"name":{enc(name)},"ph":"i","pid":1,"tid":{tid},'
            f'"ts":{t_ns / 1e3!r},"s":"t",'
            f'"args":{{"block":{block},"req_id":{req_id},'
            f'"factor":{factor!r}}}}}')

    # Issues still open at the end of the ring: emit as instants.
    for opener in open_issues.values():
        t_ns, _, bank, block, req_id, factor, detail = opener
        tid = bank + 1 if bank >= 0 else 0
        parts.append(
            f'{{"name":{enc(f"issue {detail}".rstrip())},"ph":"i","pid":1,'
            f'"tid":{tid},"ts":{t_ns / 1e3!r},"s":"t",'
            f'"args":{{"block":{block},"req_id":{req_id},'
            f'"factor":{factor!r}}}}}')

    if metrics is not None:
        for name, column in sorted(metrics.series.items()):
            if not _counter_track_name(name):
                continue
            name_json = enc(name)
            for t_ns, value in zip(metrics.sample_times_ns, column):
                if value is None:
                    continue
                parts.append(
                    f'{{"name":{name_json},"ph":"C","pid":1,"tid":0,'
                    f'"ts":{t_ns / 1e3!r},"args":{{"value":{value!r}}}}}')

    return ('{"traceEvents":[' + ",".join(parts)
            + '],"displayTimeUnit":"ns"}')


def chrome_trace(tracer: EventTracer,
                 metrics: Optional[MetricRegistry] = None,
                 process_name: str = "repro-sim") -> Dict[str, Any]:
    """The Chrome trace document as a Python object.

    Thin wrapper parsing :func:`chrome_trace_json`, which is the actual
    builder, so the dict and text exports cannot drift apart.
    """
    document: Dict[str, Any] = json.loads(
        chrome_trace_json(tracer, metrics, process_name))
    return document
