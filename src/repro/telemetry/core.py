"""Telemetry facade: the one object the simulator threads everywhere.

Components receive a :class:`Telemetry` instance and guard every
instrumentation site with ``if tel.enabled:``.  When telemetry is off
they get the :data:`NULL_TELEMETRY` singleton whose ``enabled`` is the
class-level constant ``False`` - so the disabled hot path costs exactly
one attribute load and a branch, nothing else (verified by
``benchmarks/check_telemetry_overhead.py``).

Crucially, telemetry is *read-only* with respect to the simulation: it
never draws randomness, never schedules events, and never feeds a value
back into a decision, so a traced run is bit-identical to an untraced
one and shares its cache key.

``write()`` lays down the output directory::

    metrics.json        epoch-sampled time series + histograms
    heatmap.json        per-bank wear matrix (cumulative + deltas)
    trace.jsonl         raw event records, one JSON object per line
    trace.chrome.json   Chrome trace_event format (open in Perfetto)
    manifest.json       index + ring/drop statistics, written last

Each file is written atomically (temp file + ``os.replace``) and the
manifest goes last, so a directory containing ``manifest.json`` is
always a complete bundle - the result cache relies on this.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import (Any, Callable, ClassVar, Dict, List, NoReturn, Optional,
                    Sequence)

from repro.telemetry.heatmap import WearHeatmap
from repro.telemetry.metrics import MetricRegistry
from repro.telemetry.tracer import EventTracer, chrome_trace_json

MANIFEST_NAME = "manifest.json"
TELEMETRY_SCHEMA_VERSION = 1

Clock = Callable[[], float]


def _atomic_write_text(path: Path, text: str) -> None:
    """Write via temp file + rename so readers never see a torn file.

    Deliberately self-contained: importing the runner's helper would
    create a cycle (runner -> sim.system -> telemetry).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent),
                                    prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class Telemetry:
    """Live telemetry: metric registry + event tracer + wear heatmap.

    ``clock`` is a zero-argument callable returning the current simulated
    time in ns (typically ``lambda: events.now``); it exists so the
    facade can stamp epoch samples without holding a reference to the
    event queue (which is constructed after the telemetry object).
    """

    enabled: ClassVar[bool] = True

    def __init__(self, num_banks: int, clock: Clock,
                 trace_capacity: int = 65536) -> None:
        self.num_banks = num_banks
        self.clock = clock
        self.metrics = MetricRegistry()
        self.tracer = EventTracer(capacity=trace_capacity)
        self.heatmap = WearHeatmap(num_banks)
        # Retired-line heatmap (fault injection): same epoch cadence as
        # the wear heatmap, rows of per-bank retired-line counts.  Stays
        # inert (no probe, no rows) unless faults are enabled.
        self.retired_heatmap = WearHeatmap(num_banks)

    # -- wiring ---------------------------------------------------------

    def set_wear_probe(self, probe: Callable[[], Sequence[float]]) -> None:
        self.heatmap.set_probe(probe)

    def set_retired_probe(self, probe: Callable[[], Sequence[float]]) -> None:
        self.retired_heatmap.set_probe(probe)

    # -- epoch boundary -------------------------------------------------

    def sample_epoch(self, now_ns: Optional[float] = None) -> None:
        """Close one epoch: sample every metric and snapshot the heatmap.

        Called by ``System`` on the 500 us wear-quota boundary *before*
        the profiler counters are reset, and once more at end of run for
        the final partial epoch.
        """
        t = self.clock() if now_ns is None else now_ns
        self.metrics.sample(t)
        self.heatmap.snapshot(t)
        self.retired_heatmap.snapshot(t)   # no-op without a probe

    # -- export ---------------------------------------------------------

    def manifest(self) -> Dict[str, Any]:
        return {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "num_banks": self.num_banks,
            "num_epochs": self.metrics.num_samples,
            "trace": {
                "capacity": self.tracer.capacity,
                "recorded": self.tracer.recorded,
                "dropped": self.tracer.dropped,
                "retained": len(self.tracer),
            },
            "files": ["metrics.json", "heatmap.json", "trace.jsonl",
                      "trace.chrome.json"],
        }

    def write(self, out_dir: Path) -> List[Path]:
        """Write the full bundle into ``out_dir``; manifest goes last."""
        out_dir = Path(out_dir)
        written: List[Path] = []

        metrics_path = out_dir / "metrics.json"
        _atomic_write_text(metrics_path, json.dumps(
            self.metrics.to_dict(), indent=2, sort_keys=True))
        written.append(metrics_path)

        heatmap_path = out_dir / "heatmap.json"
        heatmap_payload = self.heatmap.to_dict()
        if self.retired_heatmap.active:
            # Only fault-enabled runs grow this key, so bundles from
            # ordinary runs stay byte-identical to earlier versions.
            heatmap_payload["retired"] = self.retired_heatmap.to_dict()
        _atomic_write_text(heatmap_path, json.dumps(
            heatmap_payload, indent=2, sort_keys=True))
        written.append(heatmap_path)

        jsonl_path = out_dir / "trace.jsonl"
        _atomic_write_text(jsonl_path, self.tracer.to_jsonl())
        written.append(jsonl_path)

        chrome_path = out_dir / "trace.chrome.json"
        _atomic_write_text(chrome_path,
                           chrome_trace_json(self.tracer, self.metrics))
        written.append(chrome_path)

        manifest_path = out_dir / MANIFEST_NAME
        _atomic_write_text(manifest_path, json.dumps(
            self.manifest(), indent=2, sort_keys=True))
        written.append(manifest_path)
        return written


class NullTelemetry(Telemetry):
    """Disabled telemetry: same interface, ``enabled`` is ``False``.

    Instrumented components only ever touch ``.enabled`` on this object,
    so construction cost is irrelevant and no instrument state exists.
    The methods below raise if something forgets its guard - better a
    loud failure in tests than silent overhead in production runs.
    """

    enabled: ClassVar[bool] = False

    def __init__(self) -> None:
        # No super().__init__(): a null object carries no state.
        pass

    def _refuse(self, method: str) -> NoReturn:
        raise RuntimeError(
            f"NullTelemetry.{method} called - an instrumentation site is "
            "missing its 'if telemetry.enabled:' guard")

    def __getattr__(self, name: str) -> Any:
        # Covers .metrics/.tracer/.heatmap/.clock and anything new.
        # Dunder probes (copy/pickle protocols) must keep the normal
        # AttributeError contract.
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        self._refuse(name)

    def sample_epoch(self, now_ns: Optional[float] = None) -> None:
        self._refuse("sample_epoch")

    def set_wear_probe(self, probe: Callable[[], Sequence[float]]) -> None:
        self._refuse("set_wear_probe")

    def set_retired_probe(self, probe: Callable[[], Sequence[float]]) -> None:
        self._refuse("set_retired_probe")

    def write(self, out_dir: Path) -> List[Path]:
        self._refuse("write")
        return []  # pragma: no cover - unreachable


#: Shared disabled-telemetry singleton; safe because it is stateless.
NULL_TELEMETRY = NullTelemetry()


def bundle_is_complete(out_dir: Path) -> bool:
    """True if ``out_dir`` holds a finished telemetry bundle.

    The manifest is written last, so its presence implies every other
    file landed.  Used by the runner to decide whether a cache hit also
    satisfies a telemetry request.
    """
    return (Path(out_dir) / MANIFEST_NAME).is_file()
