"""Wear-heatmap snapshotter: per-bank wear matrices at epoch granularity.

The Mellow Writes lifetime argument is about the *distribution* of wear
across banks, not just the total: a single hot bank dies first and takes
the device with it.  The snapshotter turns the :class:`WearTracker`'s
cumulative per-bank damage into a matrix ``rows[epoch][bank]`` so
lifetime-variation plots (and the SoftWear/WoLFRaM-style heatmaps) fall
straight out of one JSON file.

The snapshotter polls a probe callable at each epoch close; it never
walks the tracker's write log itself, so a snapshot is O(num_banks).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence

WearProbe = Callable[[], Sequence[float]]


class WearHeatmap:
    """Accumulates one per-bank wear row per sampled epoch."""

    def __init__(self, num_banks: int) -> None:
        if num_banks < 1:
            raise ValueError(f"num_banks must be >= 1, got {num_banks}")
        self.num_banks = num_banks
        self._probe: WearProbe | None = None
        self.epoch_times_ns: List[float] = []
        self.rows: List[List[float]] = []

    def set_probe(self, probe: WearProbe) -> None:
        self._probe = probe

    @property
    def active(self) -> bool:
        """Whether a probe is attached (snapshots are being recorded)."""
        return self._probe is not None

    def snapshot(self, now_ns: float) -> None:
        """Record one epoch row; no-op until a probe is attached.

        The probe call doubles as the epoch flush point for buffered wear
        accounting: :meth:`repro.endurance.wear.WearTracker.bank_damages`
        folds the hot path's pending whole-write buffers into the per-bank
        records before reporting, so heatmap rows are identical whether
        the hot path is engaged or not.  The shape check runs on the raw
        probe result, before the row copy, so a misbehaving probe fails
        loudly without a partially-built row being allocated first.
        """
        if self._probe is None:
            return
        values = self._probe()
        if len(values) != self.num_banks:
            raise ValueError(
                f"wear probe returned {len(values)} values for "
                f"{self.num_banks} banks")
        self.epoch_times_ns.append(now_ns)
        self.rows.append([float(v) for v in values])

    @property
    def num_epochs(self) -> int:
        return len(self.rows)

    def deltas(self) -> List[List[float]]:
        """Per-epoch wear increments (row minus previous row)."""
        out: List[List[float]] = []
        prev = [0.0] * self.num_banks
        for row in self.rows:
            out.append([cur - before for cur, before in zip(row, prev)])
            prev = row
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_banks": self.num_banks,
            "epoch_times_ns": list(self.epoch_times_ns),
            "cumulative": [list(row) for row in self.rows],
            "deltas": self.deltas(),
        }
