"""Observability for the simulator: metrics, event traces, wear heatmaps.

Zero-overhead when disabled: components hold a :class:`Telemetry`
reference and guard every instrumentation site with
``if telemetry.enabled:``; the disabled path is the stateless
:data:`NULL_TELEMETRY` null object whose ``enabled`` is a class constant
``False``.  All timestamps are simulated time (simlint SIM008 bans wall
clocks in this package), and telemetry never influences simulation
state, so traced runs are bit-identical to untraced ones.

See ``docs/observability.md`` for the metric catalogue, the trace event
schema, and how to open exports in Perfetto.
"""

from repro.telemetry.core import (MANIFEST_NAME, NULL_TELEMETRY,
                                  TELEMETRY_SCHEMA_VERSION, NullTelemetry,
                                  Telemetry, bundle_is_complete)
from repro.telemetry.heatmap import WearHeatmap
from repro.telemetry.metrics import (READ_LATENCY_BUCKETS_NS, Counter, Gauge,
                                     Histogram, MetricRegistry,
                                     bank_metric_name)
from repro.telemetry.tracer import (EV_CANCEL, EV_CELL_FAIL, EV_COMPLETE,
                                    EV_DRAIN_ENTER, EV_DRAIN_EXIT,
                                    EV_EAGER_DEMOTE, EV_ENQUEUE, EV_ISSUE,
                                    EV_LINE_RETIRE, EV_PAUSE, EV_PHASE,
                                    EV_QUOTA_TRIP, EV_UNCORRECTABLE,
                                    EV_VERIFY_RETRY, EVENT_KINDS, EventTracer,
                                    TraceEvent, chrome_trace,
                                    chrome_trace_json)

__all__ = [
    "Telemetry", "NullTelemetry", "NULL_TELEMETRY", "bundle_is_complete",
    "MANIFEST_NAME", "TELEMETRY_SCHEMA_VERSION",
    "MetricRegistry", "Counter", "Gauge", "Histogram",
    "READ_LATENCY_BUCKETS_NS", "bank_metric_name",
    "EventTracer", "TraceEvent", "chrome_trace", "chrome_trace_json",
    "EVENT_KINDS",
    "EV_ENQUEUE", "EV_ISSUE", "EV_COMPLETE", "EV_CANCEL", "EV_PAUSE",
    "EV_DRAIN_ENTER", "EV_DRAIN_EXIT", "EV_QUOTA_TRIP", "EV_EAGER_DEMOTE",
    "EV_PHASE", "EV_CELL_FAIL", "EV_VERIFY_RETRY", "EV_LINE_RETIRE",
    "EV_UNCORRECTABLE",
    "WearHeatmap",
]
