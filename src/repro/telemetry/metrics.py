"""Metric primitives and the epoch-sampled time-series registry.

Three instrument kinds, mirroring the usual observability trinity:

* :class:`Counter` - a cumulative, monotonically increasing total
  (writes issued, events executed, quota trips);
* :class:`Gauge` - a last-set instantaneous value (banks currently gated
  by Wear Quota);
* :class:`Histogram` - a fixed-bucket distribution (read latency).

On top of the instruments the :class:`MetricRegistry` keeps *probes*:
zero-argument callables evaluated only when a sample is taken, so state
that already lives in a component (queue occupancy, the profiler's
hit counters, per-bank busy time) can be exported without adding work to
any hot path.

:meth:`MetricRegistry.sample` is called once per wear-quota epoch (the
simulator's 500 us sample period) with the *simulated* timestamp; every
counter, gauge and probe value is appended to its per-series column, so
after a run ``series[name][i]`` is the value of ``name`` at the close of
epoch ``i``.  Instruments created after sampling has started are
back-filled with ``None`` so all columns stay aligned with
``sample_times_ns``.

Nothing in this module reads the host clock or mutates simulator state;
a registry is pure bookkeeping and never perturbs results.
"""

from __future__ import annotations

from bisect import bisect_left
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple


@lru_cache(maxsize=None)
def bank_metric_name(index: int, suffix: str) -> str:
    """Canonical ``bank.NN.suffix`` metric name, computed once per pair.

    Every per-bank instrument and probe (controller counters, system
    probes) goes through this helper so the names are built once per
    process rather than re-formatted for every System constructed during
    a sweep, and so the naming convention lives in exactly one place.
    """
    return f"bank.{index:02d}.{suffix}"


#: Default read-latency histogram bucket upper bounds (ns).  Chosen to
#: straddle the interesting regimes: row hits (~60 ns), row misses,
#: writes-in-the-way, and multi-microsecond drain stalls.
READ_LATENCY_BUCKETS_NS: Tuple[float, ...] = (
    60.0, 120.0, 250.0, 500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0,
    16_000.0, 64_000.0,
)


class Counter:
    """Cumulative total; sampled values are monotone nondecreasing."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-set instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram.

    ``bounds`` are inclusive upper edges; bucket ``i`` counts observations
    ``<= bounds[i]`` (and above the previous edge), with one extra
    overflow bucket for values beyond the last edge.  Bucket edges are
    fixed at construction - the hardware-counter analogue, and the reason
    two runs of the same config always produce comparable histograms.
    """

    __slots__ = ("name", "bounds", "counts")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(set(edges)):
            raise ValueError(f"bucket edges must strictly increase: {edges}")
        self.name = name
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def to_dict(self) -> Dict[str, Any]:
        return {"bounds": list(self.bounds), "counts": list(self.counts)}


Probe = Callable[[], float]


class MetricRegistry:
    """Instrument factory plus the per-epoch time-series store.

    Instruments are created lazily by name (``registry.counter("x")`` is
    get-or-create) so call sites never need registration boilerplate; a
    name is bound to exactly one instrument kind and reusing it for a
    different kind raises.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._probes: Dict[str, Probe] = {}
        self._names: Set[str] = set()
        self.sample_times_ns: List[float] = []
        self.series: Dict[str, List[Optional[float]]] = {}
        self._pre_sample_hooks: List[Callable[[], None]] = []

    def add_pre_sample_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` before each sample (and each live export).

        Components that buffer whole-unit counter increments between
        epochs (the controller's fast path) register their flush here, so
        the sampled series - and :meth:`current` snapshots - always show
        the same values the reference path's per-event increments would.
        """
        self._pre_sample_hooks.append(hook)

    # -- instrument factories ------------------------------------------

    def _claim(self, name: str, kind: Dict[str, Any]) -> None:
        if name in self._names and name not in kind:
            raise ValueError(f"metric name {name!r} already used by another "
                             "instrument kind")
        self._names.add(name)

    def counter(self, name: str) -> Counter:
        existing = self._counters.get(name)
        if existing is None:
            self._claim(name, self._counters)
            existing = self._counters[name] = Counter(name)
        return existing

    def gauge(self, name: str) -> Gauge:
        existing = self._gauges.get(name)
        if existing is None:
            self._claim(name, self._gauges)
            existing = self._gauges[name] = Gauge(name)
        return existing

    def histogram(self, name: str,
                  bounds: Sequence[float] = READ_LATENCY_BUCKETS_NS,
                  ) -> Histogram:
        existing = self._histograms.get(name)
        if existing is None:
            self._claim(name, self._histograms)
            existing = self._histograms[name] = Histogram(name, bounds)
        return existing

    def probe(self, name: str, fn: Probe) -> None:
        """Register (or replace) a callable polled at each sample."""
        self._claim(name, self._probes)
        self._probes[name] = fn

    # -- sampling -------------------------------------------------------

    def _append(self, index: int, name: str, value: float) -> None:
        column = self.series.get(name)
        if column is None:
            # Instrument born mid-run: pad so columns stay aligned.
            column = self.series[name] = [None] * index
        column.append(value)

    def sample(self, now_ns: float) -> None:
        """Record one epoch: snapshot every instrument and probe."""
        for hook in self._pre_sample_hooks:
            hook()
        index = len(self.sample_times_ns)
        self.sample_times_ns.append(now_ns)
        for name, counter in self._counters.items():
            self._append(index, name, counter.value)
        for name, gauge in self._gauges.items():
            self._append(index, name, gauge.value)
        for name, fn in self._probes.items():
            self._append(index, name, float(fn()))

    @property
    def num_samples(self) -> int:
        return len(self.sample_times_ns)

    # -- export ---------------------------------------------------------

    def current(self) -> Dict[str, Dict[str, float]]:
        """Instantaneous instrument values, probes polled now.

        Unlike :meth:`sample`, nothing is appended to the time series:
        this is the read path for pull-style exporters - the ``repro
        serve`` ``/metrics`` endpoint - that want live values outside
        the simulator's epoch cadence.
        """
        for hook in self._pre_sample_hooks:
            hook()
        return {
            "counters": {name: counter.value for name, counter in
                         sorted(self._counters.items())},
            "gauges": {name: gauge.value for name, gauge in
                       sorted(self._gauges.items())},
            "probes": {name: float(fn()) for name, fn in
                       sorted(self._probes.items())},
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dump: aligned series plus final histogram states."""
        return {
            "sample_times_ns": list(self.sample_times_ns),
            "series": {name: list(col) for name, col in
                       sorted(self.series.items())},
            "histograms": {name: hist.to_dict() for name, hist in
                           sorted(self._histograms.items())},
        }
