"""Mellow Writes (ISCA 2016) reproduction.

A trace-driven resistive-main-memory simulator implementing the paper's
three mechanisms - Bank-Aware Mellow Writes, Eager Mellow Writes and Wear
Quota - on top of an NVMain-like memory-controller substrate, with the
analytic endurance model, Start-Gap wear leveling, synthetic SPEC-like
workloads, and an energy model.

Quickstart::

    from repro import SimConfig, run_simulation

    result = run_simulation(SimConfig(workload="lbm", policy="BE-Mellow+SC"))
    print(result.ipc, result.lifetime_years)
"""

from repro.core.policies import (
    PAPER_POLICY_NAMES,
    WritePolicy,
    paper_policies,
    parse_policy,
)
from repro.endurance.model import EnduranceModel
from repro.endurance.startgap import StartGap
from repro.endurance.wear import WearTracker
from repro.sim.config import SimConfig
from repro.sim.stats import RunResult
from repro.sim.system import System, run_simulation
from repro.workloads.mix import MIXES, WorkloadMix, get_mix
from repro.workloads.profiles import PROFILES, WORKLOAD_NAMES, get_profile

__version__ = "1.0.0"

__all__ = [
    "EnduranceModel",
    "MIXES",
    "WorkloadMix",
    "get_mix",
    "PAPER_POLICY_NAMES",
    "PROFILES",
    "RunResult",
    "SimConfig",
    "StartGap",
    "System",
    "WORKLOAD_NAMES",
    "WearTracker",
    "WritePolicy",
    "get_profile",
    "paper_policies",
    "parse_policy",
    "run_simulation",
]
