"""Age-based dead-block prediction for Eager Mellow Writes.

The paper's future work (Section VII "Cache Management") suggests dead
block prediction [Lai et al., Liu et al.] as a sharper way to pick eager
writeback candidates than the LRU-position profile.  Trace-driven
simulation has no program counters, so we implement the *decay* family of
predictors: a line is predicted dead once it has gone unused for longer
than almost any observed reuse.

Mechanism: per set, count accesses; every line remembers the count at its
last touch, so ``age = set_accesses - last_touch``.  Reuse ages observed on
hits feed a log2-bucketed histogram; at every sample period the predictor
picks the smallest age threshold such that fewer than ``tail_ratio`` of
reuses happened beyond it (the same 1/32 tail-budget style as the paper's
LRU profiler).  Lines older than the threshold are dead candidates.
"""

from __future__ import annotations

from typing import List


class DeadBlockPredictor:
    MAX_BUCKET = 24   # ages up to 2^24 set-accesses

    def __init__(self, tail_ratio: float = 1.0 / 32.0,
                 horizon: float = float("inf")) -> None:
        if not 0 < tail_ratio < 1:
            raise ValueError("tail_ratio must be in (0, 1)")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.tail_ratio = tail_ratio
        # Ages beyond the horizon exceed what the cache can retain anyway
        # (an N-way LRU set evicts anything ~N distinct accesses old), so
        # the trained threshold is capped there; otherwise heavy-tailed
        # reuse histograms push the threshold past the eviction age and
        # the predictor never fires.
        self.horizon = horizon
        self.buckets: List[int] = [0] * (self.MAX_BUCKET + 1)
        self.total_reuses = 0
        # Until trained, nothing is predicted dead.
        self.age_threshold: float = float("inf")
        self.samples_taken = 0

    @staticmethod
    def _bucket_of(age: int) -> int:
        bucket = max(0, age).bit_length()
        return min(bucket, DeadBlockPredictor.MAX_BUCKET)

    def record_reuse(self, age: int) -> None:
        """Observe a hit that arrived ``age`` set-accesses after last touch."""
        if age < 0:
            raise ValueError("age cannot be negative")
        self.buckets[self._bucket_of(age)] += 1
        self.total_reuses += 1

    def compute_threshold(self) -> float:
        """Smallest age with < tail_ratio of reuses beyond it."""
        if self.total_reuses == 0:
            return float("inf")
        budget = self.tail_ratio * self.total_reuses
        tail = 0
        threshold = float("inf")
        for bucket in range(self.MAX_BUCKET, -1, -1):
            tail += self.buckets[bucket]
            if tail < budget:
                # Everything at or above this bucket's lower bound is in
                # the rarely-reused tail.
                threshold = float(2 ** max(0, bucket - 1))
            else:
                break
        return min(threshold, self.horizon)

    def end_sample_period(self) -> float:
        """Publish a fresh threshold and restart the histogram.

        The histogram is zeroed in place, never replaced: the hot-path LLC
        access caches a reference to it once at construction.
        """
        self.age_threshold = self.compute_threshold()
        self.buckets[:] = [0] * (self.MAX_BUCKET + 1)
        self.total_reuses = 0
        self.samples_taken += 1
        return self.age_threshold

    def is_dead(self, age: int) -> bool:
        """Whether a line untouched for ``age`` set-accesses looks dead."""
        return age > self.age_threshold
