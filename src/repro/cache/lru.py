"""Set-associative LRU cache with dirty bits and stack-position reporting.

The Eager Mellow Writes profiler needs, for every hit, the LRU stack
position of the line that was hit (0 = MRU, assoc-1 = LRU), exploiting the
stack property of LRU (Mattson et al., 1970).  ``access`` therefore returns
the pre-access stack position alongside the hit/miss outcome.

Two access implementations share these exact semantics:

* the readable reference (:meth:`LRUCache._access_ref`), which scans the
  set's ``CacheLine`` list Python-side; and
* the hot path (:meth:`LRUCache._access_fast`, ``fastpath=True``), which
  mirrors each set's tag order in a plain ``List[int]`` so the hit scan is
  a single C-level ``list.index`` call instead of an O(assoc) loop of
  attribute loads, and additionally keeps a per-set membership ``set`` so
  a miss is detected by one O(1) hash probe instead of a failed scan plus
  a raised ``ValueError`` (the common case in miss-heavy workloads).  The
  mirrors are maintained only by the fast path itself, which is the sole
  mutator of set membership and order in that mode.

Results are bit-identical either way; ``tests/test_fastpath.py`` holds the
two paths to that across whole simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Set, Tuple


@dataclass(slots=True)
class CacheLine:
    tag: int
    dirty: bool = False
    eager_cleaned: bool = False   # cleaned by an eager mellow writeback
    last_touch: int = 0           # set-access count at the last touch


@dataclass(slots=True)
class AccessResult:
    """Outcome of one cache access.

    Attributes:
        hit: whether the block was present.
        stack_position: pre-access LRU stack position of the hit line
            (None on a miss).
        victim: evicted line, if the fill displaced one (None otherwise).
        rewrote_eager_clean: the access dirtied a line that an eager
            writeback had cleaned - i.e. that eager write was wasted.
    """

    hit: bool
    stack_position: Optional[int]
    victim: Optional[CacheLine]
    rewrote_eager_clean: bool = False
    reuse_age: Optional[int] = None   # set accesses since last touch (hits)


class _FastAccessResult(NamedTuple):
    """Structural twin of :class:`AccessResult` returned by the hot path.

    Same field names and meanings; every consumer reads attributes only, so
    the two are interchangeable.  A named tuple because the hot path builds
    one per access and ``tuple.__new__`` is several times cheaper than a
    dataclass ``__init__``.
    """

    hit: bool
    stack_position: Optional[int]
    victim: Optional[CacheLine]
    rewrote_eager_clean: bool = False
    reuse_age: Optional[int] = None


_new_result = tuple.__new__


class LRUCache:
    """An N-way set-associative write-back, write-allocate LRU cache.

    Lines are indexed by global block number: ``set = block % num_sets``,
    ``tag = block // num_sets``.  Each set is a list ordered MRU-first.
    """

    def __init__(self, num_sets: int, assoc: int,
                 fastpath: bool = False) -> None:
        if num_sets < 1 or assoc < 1:
            raise ValueError("num_sets and assoc must be >= 1")
        self.num_sets = num_sets
        self.assoc = assoc
        self.sets: List[List[CacheLine]] = [[] for _ in range(num_sets)]
        self.set_access_counts: List[int] = [0] * num_sets
        # MRU-first tag mirror of self.sets plus an unordered membership
        # set per set, maintained (and read) only by the fast access path;
        # empty and ignored in reference mode.
        self._tag_sets: List[List[int]] = [[] for _ in range(num_sets)]
        self._tag_members: List[Set[int]] = [set() for _ in range(num_sets)]
        self._fastpath = fastpath
        if fastpath:
            self.access = self._access_fast  # type: ignore[method-assign]

    @classmethod
    def from_geometry(cls, size_bytes: int, assoc: int, line_bytes: int,
                      fastpath: bool = False) -> "LRUCache":
        num_lines = size_bytes // line_bytes
        if num_lines % assoc:
            raise ValueError("cache size must be a whole number of sets")
        return cls(num_lines // assoc, assoc, fastpath=fastpath)

    def set_index(self, block: int) -> int:
        return block % self.num_sets

    def tag_of(self, block: int) -> int:
        return block // self.num_sets

    def block_of(self, set_index: int, tag: int) -> int:
        """Inverse of (set_index, tag_of)."""
        return tag * self.num_sets + set_index

    def access(self, block: int, is_write: bool) -> AccessResult:
        """Perform a demand access; fills on miss (write-allocate)."""
        return self._access_ref(block, is_write)

    def _access_ref(self, block: int, is_write: bool) -> AccessResult:
        """Reference access: the readable O(assoc) Python-side scan."""
        set_index = self.set_index(block)
        lines = self.sets[set_index]
        tag = self.tag_of(block)
        self.set_access_counts[set_index] += 1
        count = self.set_access_counts[set_index]
        for position, line in enumerate(lines):
            if line.tag == tag:
                lines.pop(position)
                lines.insert(0, line)
                reuse_age = count - line.last_touch
                line.last_touch = count
                rewrote = False
                if is_write:
                    rewrote = line.eager_cleaned and not line.dirty
                    line.dirty = True
                    line.eager_cleaned = False
                return AccessResult(True, position, None, rewrote, reuse_age)
        # miss: allocate, evicting LRU if the set is full
        victim = None
        if len(lines) >= self.assoc:
            victim = lines.pop()
        lines.insert(0, CacheLine(tag=tag, dirty=is_write, last_touch=count))
        return AccessResult(False, None, victim)

    def _access_fast(self, block: int,
                     is_write: bool) -> AccessResult:   # simlint: hotpath
        """Hot-path access: C-level tag scan over the parallel tag mirror.

        Same algorithm and same results as :meth:`_access_ref`; the only
        differences are that a miss is detected by one hash probe of the
        membership set, and the hit search is ``list.index`` on a list of
        ints (one C call) instead of a Python loop over line objects.
        """
        num_sets = self.num_sets
        set_index = block % num_sets
        lines = self.sets[set_index]
        tag = block // num_sets
        counts = self.set_access_counts
        counts[set_index] = count = counts[set_index] + 1
        members = self._tag_members[set_index]
        tags = self._tag_sets[set_index]
        if tag not in members:
            victim = None
            if len(lines) >= self.assoc:
                victim = lines.pop()
                members.remove(tags.pop())
            lines.insert(0, CacheLine(tag=tag, dirty=is_write,
                                      last_touch=count))
            tags.insert(0, tag)
            members.add(tag)
            return _new_result(
                _FastAccessResult, (False, None, victim, False, None))
        position = tags.index(tag)
        if position:
            del tags[position]
            tags.insert(0, tag)
            line = lines.pop(position)
            lines.insert(0, line)
        else:
            line = lines[0]
        reuse_age = count - line.last_touch
        line.last_touch = count
        rewrote = False
        if is_write:
            rewrote = line.eager_cleaned and not line.dirty
            line.dirty = True
            line.eager_cleaned = False
        return _new_result(
            _FastAccessResult, (True, position, None, rewrote, reuse_age))

    def lookup(self, block: int) -> Optional[CacheLine]:
        """Find a line without touching recency."""
        lines = self.sets[self.set_index(block)]
        tag = self.tag_of(block)
        for line in lines:
            if line.tag == tag:
                return line
        return None

    def mark_clean(self, block: int, eager: bool = False) -> bool:
        """Clear a line's dirty bit (eager writeback); True if it was dirty."""
        line = self.lookup(block)
        if line is None or not line.dirty:
            return False
        line.dirty = False
        if eager:
            line.eager_cleaned = True
        return True

    def dirty_lines_in_set(
            self, set_index: int) -> List[Tuple[int, CacheLine]]:
        """(stack_position, line) pairs of dirty lines, MRU-first order."""
        return [
            (position, line)
            for position, line in enumerate(self.sets[set_index])
            if line.dirty
        ]

    def line_age(self, set_index: int, line: CacheLine) -> int:
        """Set accesses since ``line`` was last touched."""
        return self.set_access_counts[set_index] - line.last_touch

    def occupancy(self) -> int:
        return sum(len(lines) for lines in self.sets)

    def dirty_count(self) -> int:
        return sum(
            1 for lines in self.sets for line in lines if line.dirty
        )
