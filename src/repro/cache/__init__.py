"""Cache substrate: LRU arrays, the 2 MB LLC with eager-candidate
selection, the LRU-stack profiler, dead-block prediction, and the
Table I upper-hierarchy trace filter."""
