"""The last-level cache with Eager Mellow Writes hooks (Section IV-B).

The LLC is a 2 MB / 16-way LRU cache.  On top of plain demand behaviour it

* feeds every access into the :class:`StackProfiler`;
* on request (``pick_eager_candidate``) samples a random set and returns the
  least-recently-used *dirty* line whose stack position falls in the
  currently-useless region, to be sent to the Eager Mellow Queue;
* tracks wasted eager writebacks (a line that is dirtied again after an
  eager writeback wasted that write).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro import params
from repro.cache.deadblock import DeadBlockPredictor
from repro.cache.lru import AccessResult, CacheLine, LRUCache
from repro.cache.profiler import StackProfiler
from repro.telemetry import EV_EAGER_DEMOTE, NULL_TELEMETRY, Telemetry

STACK_SELECTOR = "stack"
DEADBLOCK_SELECTOR = "deadblock"


@dataclass
class LLCStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0          # dirty demand evictions sent to memory
    eager_writebacks: int = 0    # lines handed to the eager queue
    wasted_eager: int = 0        # eager-cleaned lines dirtied again

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.__init__()


class LastLevelCache:
    """2 MB, 16-way LLC with eager-mellow candidate selection."""

    def __init__(
        self,
        size_bytes: int = params.LLC_SIZE_BYTES,
        assoc: int = params.LLC_ASSOC,
        line_bytes: int = params.CACHELINE_BYTES,
        threshold_ratio: float = params.USELESS_THRESHOLD_RATIO,
        sample_period_ns: float = params.PROFILE_PERIOD_NS,
        rng: Optional[random.Random] = None,
        eager_selector: str = STACK_SELECTOR,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        if eager_selector not in (STACK_SELECTOR, DEADBLOCK_SELECTOR):
            raise ValueError(f"unknown eager selector {eager_selector!r}")
        self.cache = LRUCache.from_geometry(size_bytes, assoc, line_bytes)
        self.profiler = StackProfiler(
            assoc, threshold_ratio, sample_period_ns,
        )
        self.eager_selector = eager_selector
        self.deadblock = DeadBlockPredictor(
            tail_ratio=threshold_ratio, horizon=float(assoc),
        )
        self.rng = rng if rng is not None else random.Random(0)
        self.stats = LLCStats()
        self._tel = telemetry
        if telemetry.enabled:
            # Export the Section IV-B1 stack-position hit counters as
            # per-epoch probes.  System samples telemetry *before*
            # end_sample_period() resets the profiler, so each sampled
            # value is the epoch's own hit count, not a cumulative total.
            def _hit_probe(position: int) -> Callable[[], float]:
                return lambda: float(self.profiler.hit_counters[position])
            for position in range(assoc):
                telemetry.metrics.probe(
                    f"llc.stack_hits.p{position:02d}", _hit_probe(position))
            telemetry.metrics.probe(
                "llc.stack_misses", lambda: float(self.profiler.miss_counter))
            telemetry.metrics.probe(
                "llc.eager_position",
                lambda: float(self.profiler.eager_position))

    def access(self, block: int, is_write: bool) -> AccessResult:
        """Demand access; updates the profiler and writeback stats."""
        result = self.cache.access(block, is_write)
        self.stats.accesses += 1
        if result.hit:
            self.stats.hits += 1
            self.profiler.record_hit(result.stack_position)
            if result.reuse_age is not None:
                self.deadblock.record_reuse(result.reuse_age)
            if result.rewrote_eager_clean:
                self.stats.wasted_eager += 1
        else:
            self.stats.misses += 1
            self.profiler.record_miss()
            if result.victim is not None and result.victim.dirty:
                self.stats.writebacks += 1
        return result

    def pick_eager_candidate(self) -> Optional[int]:
        """Sample one random set; return a useless dirty block, or None.

        The chosen line is marked clean (but stays resident).  With the
        default stack selector, useless means "at or beyond the profiled
        eager LRU position", and among candidates the least-recently-used
        line is preferred (Section IV-B1).  With the dead-block selector
        (future-work extension), useless means "untouched for longer than
        almost any observed reuse".
        """
        set_index = self.rng.randrange(self.cache.num_sets)
        if self.eager_selector == STACK_SELECTOR:
            line = self._pick_by_stack_position(set_index)
        else:
            line = self._pick_by_deadblock(set_index)
        if line is None:
            return None
        line.dirty = False
        line.eager_cleaned = True
        self.stats.eager_writebacks += 1
        block = self.cache.block_of(set_index, line.tag)
        tel = self._tel
        if tel.enabled:
            tel.metrics.counter("llc.eager_demotions").value += 1.0
            tel.tracer.record(tel.clock(), EV_EAGER_DEMOTE, block=block,
                              detail=self.eager_selector)
        return block

    def _pick_by_stack_position(self, set_index: int) -> Optional[CacheLine]:
        eager_position = self.profiler.eager_position
        if eager_position >= self.cache.assoc:
            return None   # nothing is currently classified useless
        candidates = [
            line
            for position, line in self.cache.dirty_lines_in_set(set_index)
            if position >= eager_position
        ]
        # Highest stack position = LRU-most = least likely to be reused.
        return candidates[-1] if candidates else None

    def _pick_by_deadblock(self, set_index: int) -> Optional[CacheLine]:
        dead = [
            line
            for _position, line in self.cache.dirty_lines_in_set(set_index)
            if self.deadblock.is_dead(self.cache.line_age(set_index, line))
        ]
        if not dead:
            return None
        # Oldest first: it has been dead the longest.
        return max(dead, key=lambda l: self.cache.line_age(set_index, l))

    def end_sample_period(self) -> int:
        """Close the profiling period (called every T_sample)."""
        self.deadblock.end_sample_period()
        return self.profiler.end_sample_period()

    def reset_statistics(self) -> None:
        self.stats.reset()
