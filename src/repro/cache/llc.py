"""The last-level cache with Eager Mellow Writes hooks (Section IV-B).

The LLC is a 2 MB / 16-way LRU cache.  On top of plain demand behaviour it

* feeds every access into the :class:`StackProfiler`;
* on request (``pick_eager_candidate``) samples a random set and returns the
  least-recently-used *dirty* line whose stack position falls in the
  currently-useless region, to be sent to the Eager Mellow Queue;
* tracks wasted eager writebacks (a line that is dirtied again after an
  eager writeback wasted that write).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Optional, Tuple

from repro import params
from repro.cache.deadblock import DeadBlockPredictor
from repro.cache.lru import AccessResult, CacheLine, LRUCache
from repro.cache.profiler import StackProfiler
from repro.telemetry import EV_EAGER_DEMOTE, NULL_TELEMETRY, Telemetry

if TYPE_CHECKING:
    from repro.cpu.trace import TraceRecord

STACK_SELECTOR = "stack"
DEADBLOCK_SELECTOR = "deadblock"


@dataclass
class LLCStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0          # dirty demand evictions sent to memory
    eager_writebacks: int = 0    # lines handed to the eager queue
    wasted_eager: int = 0        # eager-cleaned lines dirtied again

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.__init__()


class LastLevelCache:
    """2 MB, 16-way LLC with eager-mellow candidate selection."""

    def __init__(
        self,
        size_bytes: int = params.LLC_SIZE_BYTES,
        assoc: int = params.LLC_ASSOC,
        line_bytes: int = params.CACHELINE_BYTES,
        threshold_ratio: float = params.USELESS_THRESHOLD_RATIO,
        sample_period_ns: float = params.PROFILE_PERIOD_NS,
        rng: Optional[random.Random] = None,
        eager_selector: str = STACK_SELECTOR,
        telemetry: Telemetry = NULL_TELEMETRY,
        fastpath: bool = False,
    ) -> None:
        if eager_selector not in (STACK_SELECTOR, DEADBLOCK_SELECTOR):
            raise ValueError(f"unknown eager selector {eager_selector!r}")
        self.cache = LRUCache.from_geometry(size_bytes, assoc, line_bytes,
                                            fastpath=fastpath)
        self.profiler = StackProfiler(
            assoc, threshold_ratio, sample_period_ns,
        )
        if fastpath:
            self.access = self._access_fast  # type: ignore[method-assign]
        self.eager_selector = eager_selector
        self.deadblock = DeadBlockPredictor(
            tail_ratio=threshold_ratio, horizon=float(assoc),
        )
        # Stable references for the hot paths: both lists are zeroed in
        # place by end_sample_period(), never replaced.
        self._hit_counters = self.profiler.hit_counters
        self._db_buckets = self.deadblock.buckets
        self.rng = rng if rng is not None else random.Random(0)
        self.stats = LLCStats()
        self._tel = telemetry
        if telemetry.enabled:
            # Export the Section IV-B1 stack-position hit counters as
            # per-epoch probes.  System samples telemetry *before*
            # end_sample_period() resets the profiler, so each sampled
            # value is the epoch's own hit count, not a cumulative total.
            def _hit_probe(position: int) -> Callable[[], float]:
                return lambda: float(self.profiler.hit_counters[position])
            for position in range(assoc):
                telemetry.metrics.probe(
                    f"llc.stack_hits.p{position:02d}", _hit_probe(position))
            telemetry.metrics.probe(
                "llc.stack_misses", lambda: float(self.profiler.miss_counter))
            telemetry.metrics.probe(
                "llc.eager_position",
                lambda: float(self.profiler.eager_position))

    def access(self, block: int, is_write: bool) -> AccessResult:
        """Demand access; updates the profiler and writeback stats."""
        result = self.cache.access(block, is_write)
        self.stats.accesses += 1
        if result.hit:
            self.stats.hits += 1
            self.profiler.record_hit(result.stack_position)
            if result.reuse_age is not None:
                self.deadblock.record_reuse(result.reuse_age)
            if result.rewrote_eager_clean:
                self.stats.wasted_eager += 1
        else:
            self.stats.misses += 1
            self.profiler.record_miss()
            if result.victim is not None and result.victim.dirty:
                self.stats.writebacks += 1
        return result

    def _access_fast(self, block: int,
                     is_write: bool) -> AccessResult:   # simlint: hotpath
        """Hot-path access: same bookkeeping as :meth:`access`, with the
        profiler and dead-block counter updates inlined (their methods are
        single list/attribute increments) and the underlying cache's fast
        tag scan.  Bit-identical to the reference path by construction.
        """
        result = self.cache._access_fast(block, is_write)
        stats = self.stats
        stats.accesses += 1
        if result.hit:
            stats.hits += 1
            self._hit_counters[result.stack_position] += 1
            age = result.reuse_age
            if age is not None:
                # DeadBlockPredictor.record_reuse, inlined: ages from the
                # LRU cache are never negative, so max(0, age) is age.
                bucket = age.bit_length()
                self._db_buckets[
                    bucket if bucket < DeadBlockPredictor.MAX_BUCKET
                    else DeadBlockPredictor.MAX_BUCKET
                ] += 1
                self.deadblock.total_reuses += 1
            if result.rewrote_eager_clean:
                stats.wasted_eager += 1
        else:
            stats.misses += 1
            self.profiler.miss_counter += 1
            victim = result.victim
            if victim is not None and victim.dirty:
                stats.writebacks += 1
        return result

    def warm_chunk(
        self,
        trace: Iterator["TraceRecord"],
        count_limit: int,
        on_dirty_victim: Optional[Callable[[int], object]] = None,
    ) -> Tuple[int, bool]:   # simlint: hotpath
        """Consume up to ``count_limit`` records for functional warmup.

        Returns ``(consumed, exhausted)``.  Cache-state effects (LRU
        movement, line dirtying, profiler hit/miss counters, dead-block
        histogram) are identical to calling :meth:`access` per record -
        only bookkeeping that warmup provably discards is skipped:

        * :class:`LLCStats` updates - ``System`` calls
          ``reset_statistics()`` the moment warmup finishes, so every
          increment would be zeroed anyway;
        * ``rewrote_eager_clean`` detection - no eager machinery runs
          before the event loop starts, so no line is eager-cleaned yet;
        * per-record ``miss_counter`` / ``total_reuses`` stores - summed
          locally and added once at chunk end (nothing samples the
          profiler mid-warmup).

        When the trace exposes ``raw_parts`` (the profile fast trace
        does), the draw sequence is inlined right here - same RNG draws,
        no gap arithmetic, no generator resume, no record or pair objects.
        A trace with only a ``raw`` side stream is consumed from it as
        bare ``(block, is_write)`` pairs; any other iterator is consumed
        record by record.

        ``on_dirty_victim`` receives the block number of each dirty
        evicted line (the DRAM write buffer warming hook).
        """
        cache = self.cache
        num_sets = cache.num_sets
        tag_sets = cache._tag_sets
        tag_members = cache._tag_members
        sets = cache.sets
        counts = cache.set_access_counts
        assoc = cache.assoc
        hit_counters = self.profiler.hit_counters
        db_buckets = self.deadblock.buckets
        max_bucket = DeadBlockPredictor.MAX_BUCKET
        raw_parts = getattr(trace, "raw_parts", None)
        if raw_parts is not None:
            rnd, compiled, fallback = raw_parts
            raw_next = None
        else:
            rnd = compiled = fallback = None
            raw = getattr(trace, "raw", None)
            raw_next = raw.__next__ if raw is not None else None
        misses = 0
        reuses = 0
        consumed = 0
        exhausted = False
        while consumed < count_limit:
            if rnd is not None:
                r = rnd()
                for _cum, fast_next in compiled:
                    if r <= _cum:
                        chosen = fast_next
                        break
                else:
                    chosen = fallback
                block, is_write, _dep = chosen()
                rnd()   # the gap draw; value unused during warmup
            elif raw_next is not None:
                try:
                    block, is_write = raw_next()
                except StopIteration:
                    exhausted = True
                    break
            else:
                record = next(trace, None)
                if record is None:
                    exhausted = True
                    break
                block = record.block
                is_write = record.is_write
            consumed += 1
            set_index = block % num_sets
            tags = tag_sets[set_index]
            tag = block // num_sets
            counts[set_index] = count = counts[set_index] + 1
            members = tag_members[set_index]
            if tag not in members:
                misses += 1
                lines = sets[set_index]
                if len(lines) >= assoc:
                    # Recycle the victim object as the new line: nothing
                    # keeps a reference to it past the dirty check below,
                    # and every field is overwritten, so the set state is
                    # identical to allocating a fresh CacheLine.
                    victim = lines.pop()
                    members.remove(tags.pop())
                    if on_dirty_victim is not None and victim.dirty:
                        on_dirty_victim(victim.tag * num_sets + set_index)
                    victim.tag = tag
                    victim.dirty = is_write
                    victim.eager_cleaned = False
                    victim.last_touch = count
                    lines.insert(0, victim)
                else:
                    lines.insert(0, CacheLine(tag=tag, dirty=is_write,
                                              last_touch=count))
                tags.insert(0, tag)
                members.add(tag)
                continue
            position = tags.index(tag)
            lines = sets[set_index]
            if position:
                del tags[position]
                tags.insert(0, tag)
                line = lines.pop(position)
                lines.insert(0, line)
            else:
                line = lines[0]
            hit_counters[position] += 1
            reuse_age = count - line.last_touch
            line.last_touch = count
            bucket = reuse_age.bit_length()
            db_buckets[bucket if bucket < max_bucket else max_bucket] += 1
            reuses += 1
            if is_write:
                line.dirty = True
                line.eager_cleaned = False
        self.profiler.miss_counter += misses
        self.deadblock.total_reuses += reuses
        return consumed, exhausted

    def pick_eager_candidate(self) -> Optional[int]:
        """Sample one random set; return a useless dirty block, or None.

        The chosen line is marked clean (but stays resident).  With the
        default stack selector, useless means "at or beyond the profiled
        eager LRU position", and among candidates the least-recently-used
        line is preferred (Section IV-B1).  With the dead-block selector
        (future-work extension), useless means "untouched for longer than
        almost any observed reuse".
        """
        set_index = self.rng.randrange(self.cache.num_sets)
        if self.eager_selector == STACK_SELECTOR:
            line = self._pick_by_stack_position(set_index)
        else:
            line = self._pick_by_deadblock(set_index)
        if line is None:
            return None
        line.dirty = False
        line.eager_cleaned = True
        self.stats.eager_writebacks += 1
        block = self.cache.block_of(set_index, line.tag)
        tel = self._tel
        if tel.enabled:
            tel.metrics.counter("llc.eager_demotions").value += 1.0
            tel.tracer.record(tel.clock(), EV_EAGER_DEMOTE, block=block,
                              detail=self.eager_selector)
        return block

    def _pick_by_stack_position(self, set_index: int) -> Optional[CacheLine]:
        eager_position = self.profiler.eager_position
        if eager_position >= self.cache.assoc:
            return None   # nothing is currently classified useless
        candidates = [
            line
            for position, line in self.cache.dirty_lines_in_set(set_index)
            if position >= eager_position
        ]
        # Highest stack position = LRU-most = least likely to be reused.
        return candidates[-1] if candidates else None

    def _pick_by_deadblock(self, set_index: int) -> Optional[CacheLine]:
        dead = [
            line
            for _position, line in self.cache.dirty_lines_in_set(set_index)
            if self.deadblock.is_dead(self.cache.line_age(set_index, line))
        ]
        if not dead:
            return None
        # Oldest first: it has been dead the longest.
        return max(dead, key=lambda l: self.cache.line_age(set_index, l))

    def end_sample_period(self) -> int:
        """Close the profiling period (called every T_sample)."""
        self.deadblock.end_sample_period()
        return self.profiler.end_sample_period()

    def reset_statistics(self) -> None:
        self.stats.reset()
