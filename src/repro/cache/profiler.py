"""LRU-stack-position profiler for Eager Mellow Writes (Section IV-B1).

One hit counter per LRU stack position (shared across all sets) plus a
single miss counter.  Every ``t_sample`` the profiler computes the *eager
position*: the smallest stack position p such that positions p..assoc-1
together received less than ``threshold_ratio`` of all requests.  Lines at
or beyond the eager position are considered useless until the next sample
and may be eagerly written back.  Counters then reset.

Storage cost is the paper's 360 bits: (assoc + 1 + 1) counters of
ceil(log2(T_sample / T_clk)) bits.
"""

from __future__ import annotations

import math
from typing import List

from repro import params


class StackProfiler:
    def __init__(
        self,
        assoc: int,
        threshold_ratio: float = params.USELESS_THRESHOLD_RATIO,
        sample_period_ns: float = params.PROFILE_PERIOD_NS,
    ) -> None:
        if assoc < 1:
            raise ValueError("assoc must be >= 1")
        if not 0 < threshold_ratio < 1:
            raise ValueError("threshold_ratio must be in (0, 1)")
        self.assoc = assoc
        self.threshold_ratio = threshold_ratio
        self.sample_period_ns = sample_period_ns
        self.hit_counters: List[int] = [0] * assoc
        self.miss_counter = 0
        # Until the first sample completes nothing is considered useless.
        self.eager_position = assoc
        self.samples_taken = 0

    def record_hit(self, stack_position: int) -> None:
        self.hit_counters[stack_position] += 1

    def record_miss(self) -> None:
        self.miss_counter += 1

    @property
    def total_requests(self) -> int:
        return sum(self.hit_counters) + self.miss_counter

    def compute_eager_position(self) -> int:
        """Smallest p whose tail-hit mass is below the threshold ratio."""
        total = self.total_requests
        if total == 0:
            return self.assoc
        budget = self.threshold_ratio * total
        tail = 0
        position = self.assoc
        # Walk from the LRU end toward MRU while the tail stays under budget.
        for p in range(self.assoc - 1, -1, -1):
            tail += self.hit_counters[p]
            if tail < budget:
                position = p
            else:
                break
        return position

    def end_sample_period(self) -> int:
        """Close the period: publish the new eager position, reset counters.

        The counter list is zeroed in place, never replaced: the hot-path
        LLC access caches a reference to it once at construction.
        """
        self.eager_position = self.compute_eager_position()
        self.hit_counters[:] = [0] * self.assoc
        self.miss_counter = 0
        self.samples_taken += 1
        return self.eager_position

    def is_useless_position(self, stack_position: int) -> bool:
        """Whether a stack position is currently in the useless region."""
        return stack_position >= self.eager_position

    @property
    def storage_bits(self) -> int:
        """Hardware storage cost of the profiler (Section IV-E)."""
        counter_bits = math.ceil(
            math.log2(self.sample_period_ns / params.CPU_CLK_NS)
        )
        return counter_bits * (self.assoc + 2)
