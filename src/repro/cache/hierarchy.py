"""Upper cache levels (Table I): L1D and L2 as a trace filter.

The package's synthetic profiles already emit post-L2 (LLC-level) streams,
which is what keeps simulation fast.  Users with *raw* (L1-level) traces -
gem5 dumps, pin traces - instead feed them through this filter, which
simulates the paper's Table I upper hierarchy:

* L1D: 32 KB, 4-way, write-back/write-allocate;
* L2: 256 KB, 8-way, write-back/write-allocate, inclusive of nothing
  (plain hierarchy; each level filters the one below).

``filter_trace`` consumes L1-level :class:`TraceRecord`s and yields the
post-L2 stream: L2 misses (demand fills) and dirty L2 evictions
(writebacks), with instruction gaps re-accumulated so the downstream
core model sees correct instruction counts.  Dependence flags survive on
the misses of dependent loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro import params
from repro.cache.lru import LRUCache
from repro.cpu.trace import TraceRecord


@dataclass
class HierarchyStats:
    l1_accesses: int = 0
    l1_hits: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0
    llc_level_accesses: int = 0
    writebacks_emitted: int = 0

    @property
    def l1_hit_ratio(self) -> float:
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_hit_ratio(self) -> float:
        return self.l2_hits / self.l2_accesses if self.l2_accesses else 0.0


class TwoLevelFilter:
    """L1D + L2 filter producing the post-L2 access stream."""

    def __init__(
        self,
        l1_size_bytes: int = 32 * 1024,
        l1_assoc: int = 4,
        l2_size_bytes: int = 256 * 1024,
        l2_assoc: int = 8,
        line_bytes: int = params.CACHELINE_BYTES,
    ) -> None:
        self.l1 = LRUCache.from_geometry(l1_size_bytes, l1_assoc, line_bytes)
        self.l2 = LRUCache.from_geometry(l2_size_bytes, l2_assoc, line_bytes)
        self.stats = HierarchyStats()

    def _access_l2(self, block: int, is_write: bool,
                   dependent: bool, gap: int) -> Iterator[TraceRecord]:
        """Access L2; yields the post-L2 records this access causes."""
        self.stats.l2_accesses += 1
        result = self.l2.access(block, is_write)
        if result.hit:
            self.stats.l2_hits += 1
            return
        # L2 miss: a dirty L2 victim becomes a writeback below, and the
        # fill itself goes below as a read-or-write demand access.
        if result.victim is not None and result.victim.dirty:
            victim_block = self.l2.block_of(
                self.l2.set_index(block), result.victim.tag,
            )
            self.stats.writebacks_emitted += 1
            self.stats.llc_level_accesses += 1
            yield TraceRecord(0, victim_block, True, False)
        self.stats.llc_level_accesses += 1
        yield TraceRecord(gap, block, is_write, dependent and not is_write)

    def filter_trace(
        self, records: Iterable[TraceRecord],
    ) -> Iterator[TraceRecord]:
        """Yield the post-L2 stream for an L1-level input stream.

        Instruction gaps of filtered (hitting) accesses accumulate and are
        attached to the *first* record of the next emitted burst, so the
        downstream core retires the same instruction total.
        """
        pending_gap = 0
        for record in records:
            pending_gap += record.gap_insts
            self.stats.l1_accesses += 1
            l1_result = self.l1.access(record.block, record.is_write)
            if l1_result.hit:
                self.stats.l1_hits += 1
                continue
            burst = []
            # L1 miss: dirty L1 victim is written back into L2.
            if l1_result.victim is not None and l1_result.victim.dirty:
                victim_block = self.l1.block_of(
                    self.l1.set_index(record.block), l1_result.victim.tag,
                )
                burst.extend(self._access_l2(victim_block, True, False, 0))
            burst.extend(self._access_l2(record.block, record.is_write,
                                         record.dependent, 0))
            if not burst:
                continue
            first = burst[0]
            yield TraceRecord(pending_gap, first.block, first.is_write,
                              first.dependent)
            pending_gap = 0
            for out in burst[1:]:
                yield out
