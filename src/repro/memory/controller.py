"""Event-driven memory controller (the NVMain-equivalent substrate).

Scheduling rules (Sections IV and V, Table II):

* Per idle bank, reads issue before writes; writes issue opportunistically
  when their bank has no queued read; eager requests issue only when their
  bank has neither queued reads nor queued writes.
* When the write queue fills to ``drain_high`` the controller enters *write
  drain* mode and prioritises writes over reads (per bank) until occupancy
  falls to ``drain_low``.
* A read arriving for a bank that is currently executing a *cancellable*
  write cancels it (write cancellation, Qureshi et al.); the victim write
  returns to the head of its queue and its partial cell stress is recorded
  as fractional wear.
* Write speed (normal vs slow) is chosen at issue time by the Figure-9
  decision tree (:mod:`repro.core.decision`).
* One shared 64-bit data bus serialises all data bursts (20 ns per line).
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional

from repro import params
from repro.core.decision import choose_write_factor
from repro.core.policies import WritePolicy
from repro.core.wear_quota import WearQuota
from repro.endurance.wear import WearTracker
from repro.faults.injector import (WRITE_FATAL, WRITE_OK, WRITE_RETIRED,
                                   WRITE_RETRY, FaultInjector)
from repro.lint.sanitize import check, close_enough, resolve
from repro.memory.address import AddressMap
from repro.memory.bank import Bank, InFlight
from repro.memory.queues import EAGER, READ, WRITE, Request, RequestQueue
from repro.memory.rank import RankFawLimiter
from repro.memory.timing import MemoryTiming
from repro.sim.events import EventQueue
from repro.telemetry import (EV_CANCEL, EV_CELL_FAIL, EV_COMPLETE,
                             EV_DRAIN_ENTER, EV_DRAIN_EXIT, EV_ENQUEUE,
                             EV_ISSUE, EV_LINE_RETIRE, EV_PAUSE,
                             EV_UNCORRECTABLE, EV_VERIFY_RETRY,
                             NULL_TELEMETRY, Telemetry)
from repro.telemetry.metrics import Counter, bank_metric_name


class _ControllerTelemetry:
    """Pre-resolved instrument references for the enabled-telemetry path.

    Resolving every counter once at construction keeps the per-event cost
    of *enabled* telemetry to attribute loads; the *disabled* path never
    builds this object at all and pays a single ``is not None`` check per
    instrumentation site.
    """

    def __init__(self, telemetry: Telemetry, num_banks: int) -> None:
        self.tel = telemetry
        # Bound method, saving two attribute loads per trace record.
        self.record = telemetry.tracer.record
        metrics = telemetry.metrics
        self.reads_issued = metrics.counter("ctrl.reads_issued")
        self.writes_normal = metrics.counter("ctrl.writes_normal")
        self.writes_slow = metrics.counter("ctrl.writes_slow")
        self.eager_issued = metrics.counter("ctrl.eager_issued")
        self.cancellations = metrics.counter("ctrl.cancellations")
        self.pauses = metrics.counter("ctrl.pauses")
        self.drains = metrics.counter("ctrl.drains")
        self.drain_active = metrics.gauge("ctrl.drain_active")
        self.read_latency = metrics.histogram("ctrl.read_latency_ns")
        # Per-bank slow/normal issue mix (the Bank-Aware observable).
        # bank_metric_name keeps the naming scheme in one cached place,
        # shared with the System wear/utilization probes.
        self.bank_slow: List[Counter] = [
            metrics.counter(bank_metric_name(i, "writes_slow"))
            for i in range(num_banks)
        ]
        self.bank_normal: List[Counter] = [
            metrics.counter(bank_metric_name(i, "writes_normal"))
            for i in range(num_banks)
        ]


class ControllerStats:
    """Raw counters accumulated by the controller."""

    def __init__(self) -> None:
        self.reads_from_llc = 0
        self.writes_from_llc = 0
        self.eager_from_llc = 0
        self.reads_issued = 0
        self.read_row_hits = 0
        self.read_row_misses = 0
        self.writes_issued_normal = 0
        self.writes_issued_slow = 0
        self.eager_issued = 0            # subset of writes_issued_slow/normal
        self.writes_completed = 0
        self.reads_completed = 0
        self.cancellations = 0
        self.pauses = 0
        self.drain_events = 0
        self.drain_time_ns = 0.0
        self.read_latency_sum_ns = 0.0

    @property
    def writes_issued_total(self) -> int:
        return self.writes_issued_normal + self.writes_issued_slow

    @property
    def requests_issued_total(self) -> int:
        return self.reads_issued + self.writes_issued_total

    @property
    def avg_read_latency_ns(self) -> float:
        if self.reads_completed == 0:
            return 0.0
        return self.read_latency_sum_ns / self.reads_completed

    def reset(self) -> None:
        self.__init__()


class MemoryController:
    """ReRAM memory controller with Mellow Writes support."""

    def __init__(
        self,
        events: EventQueue,
        policy: WritePolicy,
        address_map: Optional[AddressMap] = None,
        timing: Optional[MemoryTiming] = None,
        wear: Optional[WearTracker] = None,
        quota: Optional[WearQuota] = None,
        read_queue_entries: int = params.READ_QUEUE_ENTRIES,
        write_queue_entries: int = params.WRITE_QUEUE_ENTRIES,
        eager_queue_entries: int = params.EAGER_QUEUE_ENTRIES,
        drain_low: int = params.WRITE_DRAIN_LOW,
        drain_high: int = params.WRITE_DRAIN_HIGH,
        wear_scaler: Optional[Callable[[], float]] = None,
        cancel_threshold: float = 0.5,
        page_policy: str = "open",
        read_scheduler: str = "fcfs",
        sanitize: Optional[bool] = None,
        telemetry: Telemetry = NULL_TELEMETRY,
        faults: Optional[FaultInjector] = None,
        on_fatal: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.events = events
        self.policy = policy
        self.amap = address_map if address_map is not None else AddressMap()
        self.timing = (
            timing
            if timing is not None
            else MemoryTiming(slow_factor=policy.slow_factor)
        )
        self.wear = (
            wear
            if wear is not None
            else WearTracker(self.amap.num_banks, self.amap.blocks_per_bank)
        )
        self.quota = quota
        if policy.wear_quota and quota is None:
            raise ValueError("policy requires Wear Quota but none supplied")
        if not 0 < drain_low <= drain_high <= write_queue_entries:
            raise ValueError("need 0 < drain_low <= drain_high <= capacity")

        def clock() -> float:
            return self.events.now

        self._sanitize = resolve(sanitize)
        self.telemetry = telemetry
        self._ts: Optional[_ControllerTelemetry] = (
            _ControllerTelemetry(telemetry, self.amap.num_banks)
            if telemetry.enabled else None
        )
        self.read_q = RequestQueue(read_queue_entries, "read", clock=clock,
                                   sanitize=self._sanitize,
                                   telemetry=telemetry)
        self.write_q = RequestQueue(write_queue_entries, "write", clock=clock,
                                    sanitize=self._sanitize,
                                    telemetry=telemetry)
        self.eager_q = RequestQueue(eager_queue_entries, "eager", clock=clock,
                                    sanitize=self._sanitize,
                                    telemetry=telemetry)
        self.drain_low = drain_low
        self.drain_high = drain_high
        if not 0.0 <= cancel_threshold <= 1.0:
            raise ValueError("cancel_threshold must be in [0, 1]")
        # Threshold-based cancellation (Qureshi et al., HPCA 2010): a write
        # whose programming pulse has progressed beyond this fraction is
        # allowed to finish - aborting it would waste nearly a whole pulse
        # of cell stress and re-pay the full write later.
        self.cancel_threshold = cancel_threshold
        if page_policy not in ("open", "closed"):
            raise ValueError("page_policy must be 'open' or 'closed'")
        # Table II uses open-page; closed-page (precharge after every
        # access) is provided for sensitivity studies.
        self.page_policy = page_policy
        if read_scheduler not in ("fcfs", "frfcfs"):
            raise ValueError("read_scheduler must be 'fcfs' or 'frfcfs'")
        # Per-bank read selection: plain FCFS, or FR-FCFS (row hits first).
        self.read_scheduler = read_scheduler
        # Hoisted once: _select_request runs on every issue opportunity and
        # a string compare there is measurable.
        self._frfcfs = read_scheduler == "frfcfs"

        self.banks: List[Bank] = [Bank(i) for i in range(self.amap.num_banks)]
        self.faw: List[RankFawLimiter] = [
            RankFawLimiter(self.timing.t_faw_ns, self.timing.t_faw_activates)
            for _ in range(self.amap.num_ranks)
        ]
        self.bus_free_ns = 0.0
        self.drain_mode = False
        self._drain_started_ns = 0.0
        self.stats = ControllerStats()
        # Optional per-write damage multiplier in (0, 1]; Flip-N-Write uses
        # it to model the fraction of cells actually programmed.
        self.wear_scaler = wear_scaler
        # Fault injection: the injector ages cells alongside the wear
        # tracker and arbitrates write-verify outcomes at completion;
        # on_fatal fires once when an uncorrectable error ends the run.
        self.faults = faults
        self.on_fatal = on_fatal
        self._write_space_waiters: List[Callable[[], None]] = []
        self._read_space_waiters: List[Callable[[], None]] = []
        # Wear-conservation cross-check (sanitize mode): the controller
        # keeps its own tally of write fractions it hands to the wear
        # tracker; the two independently maintained sums must always agree.
        self._wear_write_tally = 0.0
        self._wear_write_baseline = self.wear.total_writes()
        # Run-local request ids: the module-global counter in queues.py
        # carries state across simulations in one process, which would
        # make trace req_ids depend on how many runs preceded this one
        # (serial sweeps vs fresh parallel workers would emit different
        # traces for the same config).
        self._request_ids = itertools.count()

    # ------------------------------------------------------------------
    # Submission API (called by the LLC / CPU side)
    # ------------------------------------------------------------------

    def _make_request(self, kind: str, block: int,
                      callback: Optional[Callable[[float], None]]) -> Request:
        rank, bank, row, _ = self.amap.decode(block)
        return Request(
            kind=kind, block=block, bank=bank, rank=rank, row=row,
            arrival_ns=self.events.now, callback=callback,
            req_id=next(self._request_ids),
        )

    def submit_read(self, block: int,
                    callback: Optional[Callable[[float], None]] = None) -> bool:
        """Enqueue a demand read; returns False if the read queue is full."""
        if self.read_q.full:
            return False
        request = self._make_request(READ, block, callback)
        self.read_q.push(request)
        self.stats.reads_from_llc += 1
        if self._ts is not None:
            self._ts.record(
                self.events.now, EV_ENQUEUE, bank=request.bank, block=block,
                req_id=request.req_id, detail=READ)
        self._maybe_cancel_for_read(request.bank)
        self._try_issue_bank(request.bank)
        return True

    def submit_write(self, block: int,
                     callback: Optional[Callable[[float], None]] = None) -> bool:
        """Enqueue a writeback; returns False if the write queue is full."""
        if self.write_q.full:
            return False
        request = self._make_request(WRITE, block, callback)
        self.write_q.push(request)
        self.stats.writes_from_llc += 1
        if self._ts is not None:
            self._ts.record(
                self.events.now, EV_ENQUEUE, bank=request.bank, block=block,
                req_id=request.req_id, detail=WRITE)
        if not self.drain_mode and len(self.write_q) >= self.drain_high:
            self._enter_drain()
        else:
            self._try_issue_bank(request.bank)
        return True

    def submit_eager(self, block: int,
                     callback: Optional[Callable[[float], None]] = None) -> bool:
        """Enqueue an eager mellow writeback; False if its queue is full."""
        if self.eager_q.full:
            return False
        request = self._make_request(EAGER, block, callback)
        self.eager_q.push(request)
        self.stats.eager_from_llc += 1
        if self._ts is not None:
            self._ts.record(
                self.events.now, EV_ENQUEUE, bank=request.bank, block=block,
                req_id=request.req_id, detail=EAGER)
        self._try_issue_bank(request.bank)
        return True

    def wait_for_write_space(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once the write queue can accept a request."""
        if not self.write_q.full:
            callback()
        else:
            self._write_space_waiters.append(callback)

    def wait_for_read_space(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once the read queue can accept a request."""
        if not self.read_q.full:
            callback()
        else:
            self._read_space_waiters.append(callback)

    @property
    def eager_queue_has_space(self) -> bool:
        return not self.eager_q.full

    # ------------------------------------------------------------------
    # Drain mode
    # ------------------------------------------------------------------

    def _enter_drain(self) -> None:
        self.drain_mode = True
        self._drain_started_ns = self.events.now
        self.stats.drain_events += 1
        ts = self._ts
        if ts is not None:
            ts.drains.value += 1.0
            ts.drain_active.set(1.0)
            ts.record(
                self.events.now, EV_DRAIN_ENTER,
                detail=f"write_q={len(self.write_q)}")
        for bank in self.banks:
            self._try_issue_bank(bank.index)

    def _maybe_exit_drain(self) -> None:
        if self.drain_mode and len(self.write_q) <= self.drain_low:
            self.drain_mode = False
            self.stats.drain_time_ns += self.events.now - self._drain_started_ns
            ts = self._ts
            if ts is not None:
                ts.drain_active.set(0.0)
                ts.record(
                    self.events.now, EV_DRAIN_EXIT,
                    detail=f"write_q={len(self.write_q)}")
            for bank in self.banks:
                self._try_issue_bank(bank.index)

    # ------------------------------------------------------------------
    # Write cancellation
    # ------------------------------------------------------------------

    def _maybe_cancel_for_read(self, bank_index: int) -> None:
        """Cancel a cancellable in-flight write when a read arrives."""
        if self.drain_mode:
            return
        bank = self.banks[bank_index]
        op = bank.in_flight
        now = self.events.now
        if op is None or bank.is_idle(now) or not op.cancellable:
            return
        pulse_ns = self.timing.write_pulse_ns_for(op.request.speed_factor)
        elapsed = min(pulse_ns, max(0.0, now - op.pulse_start_ns))
        fraction = elapsed / pulse_ns
        pausing = self.policy.pausing
        if not pausing and fraction >= self.cancel_threshold:
            return  # too far along; cancelling would waste a near-full pulse
        victim_queue = self.eager_q if op.request.kind == EAGER else self.write_q
        if victim_queue.full:
            return  # nowhere to put the victim; let the write finish
        bank.cancel(now)
        # Partial cell stress: fraction of the programming pulse completed.
        if fraction > 0.0:
            self._record_wear(op.request, fraction)
        if pausing:
            # Write pausing keeps the completed pulse time; the eventual
            # resume only pays (and only wears) the remainder.
            self.stats.pauses += 1
            op.request.progress_ns = op.resumed_progress_ns + elapsed
        else:
            self.stats.cancellations += 1
            op.request.progress_ns = 0.0
        ts = self._ts
        if ts is not None:
            if pausing:
                ts.pauses.value += 1.0
            else:
                ts.cancellations.value += 1.0
            ts.record(
                now, EV_PAUSE if pausing else EV_CANCEL,
                bank=bank.index, block=op.request.block,
                req_id=op.request.req_id, factor=op.request.speed_factor,
                detail=f"{op.request.kind} progress={fraction:.3f}")
        victim_queue.push_front(op.request)
        # tiny turnaround penalty before the bank can accept the read
        bank.busy_until = now + self.timing.cancel_penalty_ns
        self.events.schedule(
            bank.busy_until, lambda b=bank.index: self._try_issue_bank(b),
        )

    # ------------------------------------------------------------------
    # Issue logic
    # ------------------------------------------------------------------

    def _try_issue_bank(self, bank_index: int) -> None:
        bank = self.banks[bank_index]
        now = self.events.now
        # A bank is free only when no operation object is outstanding AND
        # any cancel-penalty window has elapsed.  Checking busy_until alone
        # is not enough: at the exact finish time another event can run
        # before the completion event, and issuing then would overwrite the
        # in-flight operation and lose its completion callback.
        if bank.in_flight is not None or not bank.is_idle(now):
            return
        request = self._select_request(bank_index)
        if request is None:
            return
        if request.kind == READ:
            self._issue_read(bank, request)
        else:
            self._issue_write(bank, request)

    def _select_request(self, bank_index: int) -> Optional[Request]:
        # Runs on every issue opportunity; try_pop_bank folds the
        # emptiness test into the pop so each queue is probed once.
        if self.drain_mode:
            # Write drain stalls reads system-wide until the queue empties
            # to drain_low - this global turnaround is what makes drains
            # "an expensive memory operation" (Section VI-C).
            return self.write_q.try_pop_bank(bank_index)
        if self._frfcfs:
            if self.read_q.count_bank(bank_index):
                return self.read_q.pop_bank_row_first(
                    bank_index, self.banks[bank_index].open_row,
                )
        else:
            request = self.read_q.try_pop_bank(bank_index)
            if request is not None:
                return request
        request = self.write_q.try_pop_bank(bank_index)
        if request is not None:
            return request
        return self.eager_q.try_pop_bank(bank_index)

    def _reserve_bus(self, earliest_ns: float) -> float:
        """Reserve the shared data bus; returns the burst start time."""
        start = max(earliest_ns, self.bus_free_ns)
        self.bus_free_ns = start + self.timing.burst_ns
        return start

    def _issue_read(self, bank: Bank, request: Request) -> None:
        now = self.events.now
        row_hit = bank.row_hit(request.row)
        ready = now
        if not row_hit:
            limiter = self.faw[self.amap.rank_of_bank(bank.index)]
            act_start = limiter.earliest_activate(now)
            limiter.record_activate(act_start)
            ready = act_start + self.timing.t_rcd_ns
            bank.open_row_for(request.row)
            self.stats.read_row_misses += 1
        else:
            self.stats.read_row_hits += 1
        data_start = self._reserve_bus(ready + self.timing.t_cas_ns)
        finish = data_start + self.timing.burst_ns
        request.attempts += 1
        self.stats.reads_issued += 1
        ts = self._ts
        if ts is not None:
            ts.reads_issued.value += 1.0
            ts.record(
                now, EV_ISSUE, bank=bank.index, block=request.block,
                req_id=request.req_id,
                detail="read" if row_hit else "read miss")
        op = InFlight(
            request=request, start_ns=now, finish_ns=finish,
            pulse_start_ns=finish, cancellable=False,
        )
        bank.begin(op)
        self._notify_read_space()
        self.events.schedule(finish, lambda: self._complete_read(bank, op))

    def _issue_write(self, bank: Bank, request: Request) -> None:
        now = self.events.now
        if request.progress_ns > 0.0:
            # Resuming a paused write: the pulse speed is committed; only
            # the remaining pulse time is paid.
            factor = request.speed_factor
        elif request.retries > 0:
            # Write-verify retry: re-issue on the Mellow Writes slow path
            # regardless of policy - a longer pulse is the device's best
            # shot at programming marginal cells (and wears them least).
            factor = self.timing.slow_factor
            request.speed_factor = factor
        else:
            factor = choose_write_factor(
                self.policy,
                kind=request.kind,
                other_writes_for_bank=self.write_q.count_bank(bank.index),
                reads_for_bank=self.read_q.count_bank(bank.index),
                quota_exceeded=(
                    self.quota.is_slow_only(bank.index) if self.quota else False
                ),
                telemetry=self.telemetry,
            )
            request.speed_factor = factor
        slow = request.slow
        request.attempts += 1
        data_start = self._reserve_bus(now)
        pulse_start = data_start + self.timing.burst_ns
        full_pulse = self.timing.write_pulse_ns_for(factor)
        remaining = max(0.0, full_pulse - request.progress_ns)
        finish = pulse_start + remaining
        if slow:
            self.stats.writes_issued_slow += 1
        else:
            self.stats.writes_issued_normal += 1
        if request.kind == EAGER:
            self.stats.eager_issued += 1
        ts = self._ts
        if ts is not None:
            if slow:
                ts.writes_slow.value += 1.0
                ts.bank_slow[bank.index].value += 1.0
            else:
                ts.writes_normal.value += 1.0
                ts.bank_normal[bank.index].value += 1.0
            if request.kind == EAGER:
                ts.eager_issued.value += 1.0
            ts.record(
                now, EV_ISSUE, bank=bank.index, block=request.block,
                req_id=request.req_id, factor=factor, detail=request.kind)
        op = InFlight(
            request=request, start_ns=now, finish_ns=finish,
            pulse_start_ns=pulse_start,
            cancellable=self.policy.cancellable(slow),
            resumed_progress_ns=request.progress_ns,
        )
        bank.begin(op)
        if request.kind == WRITE:
            self._notify_write_space()
            self._maybe_exit_drain()
        self.events.schedule(finish, lambda: self._complete_write(bank, op))

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def _complete_read(self, bank: Bank, op: InFlight) -> None:
        if bank.in_flight is not op:
            # Stale completion for a cancelled/replaced operation; the bank
            # may still be idle with queued work, so poke it.
            self._try_issue_bank(bank.index)
            return
        request = op.request
        bank.complete()
        if self.page_policy == "closed":
            bank.open_row = None
        now = self.events.now
        self.stats.reads_completed += 1
        self.stats.read_latency_sum_ns += now - request.arrival_ns
        ts = self._ts
        if ts is not None:
            ts.read_latency.observe(now - request.arrival_ns)
            ts.record(
                now, EV_COMPLETE, bank=bank.index, block=request.block,
                req_id=request.req_id, detail=READ)
        if request.callback is not None:
            request.callback(now)
        self._try_issue_bank(bank.index)

    def _complete_write(self, bank: Bank, op: InFlight) -> None:
        if bank.in_flight is not op:
            # The write was cancelled; a fresh issue will complete it.  The
            # bank may be idle with queued work, so poke it.
            self._try_issue_bank(bank.index)
            return
        request = op.request
        bank.complete()
        self.stats.writes_completed += 1
        full_pulse = self.timing.write_pulse_ns_for(request.speed_factor)
        executed_fraction = 1.0
        if op.resumed_progress_ns > 0.0 and full_pulse > 0.0:
            # A resumed write already deposited wear for its paused
            # portions; charge only the remainder executed this attempt.
            executed_fraction = max(
                0.0, 1.0 - op.resumed_progress_ns / full_pulse,
            )
        self._record_wear(request, executed_fraction)
        ts = self._ts
        if ts is not None:
            ts.record(
                self.events.now, EV_COMPLETE, bank=bank.index,
                block=request.block, req_id=request.req_id,
                factor=request.speed_factor, detail=request.kind)
        if self.faults is not None:
            outcome = self.faults.verify_write(
                request.bank, self.amap.bank_local_block(request.block),
                request.retries,
            )
            if outcome != WRITE_OK and self._handle_fault_outcome(
                    bank, request, outcome):
                # Re-issued as a verify retry: completion (and the
                # callback) is deferred until the retry finishes.
                return
        if request.callback is not None:
            request.callback(self.events.now)
        self._try_issue_bank(bank.index)

    def _handle_fault_outcome(self, bank: Bank, request: Request,
                              outcome: str) -> bool:
        """Apply a non-OK write-verify outcome; True = write re-issued."""
        now = self.events.now
        ts = self._ts
        if outcome == WRITE_RETRY:
            request.retries += 1
            request.progress_ns = 0.0
            if ts is not None:
                ts.record(
                    now, EV_VERIFY_RETRY, bank=bank.index,
                    block=request.block, req_id=request.req_id,
                    factor=request.speed_factor,
                    detail=f"retry={request.retries}")
            # The bank just freed up, so the retry starts immediately -
            # no queue round trip, which also means a full write queue
            # can never strand a retry.
            self._issue_write(bank, request)
            return True
        if outcome == WRITE_RETIRED:
            bank.lines_retired += 1
            if ts is not None:
                ts.record(
                    now, EV_LINE_RETIRE, bank=bank.index,
                    block=request.block, req_id=request.req_id,
                    detail=request.kind)
        elif outcome == WRITE_FATAL:
            if ts is not None:
                ts.record(
                    now, EV_UNCORRECTABLE, bank=bank.index,
                    block=request.block, req_id=request.req_id,
                    detail=request.kind)
            if self.on_fatal is not None:
                self.on_fatal(now)
        # WRITE_CORRECTED needs no controller action: the injector has
        # already counted it, and ECC repaired the line in place.
        return False

    def _record_wear(self, request: Request, fraction: float) -> None:
        factor = request.speed_factor
        if self.wear_scaler is not None:
            fraction *= self.wear_scaler()
        local = self.amap.bank_local_block(request.block)
        self.wear.record_write(
            request.bank, factor, block=local, fraction=fraction,
        )
        if self._sanitize:
            self._wear_write_tally += fraction
            expected = self._wear_write_baseline + self._wear_write_tally
            recorded = self.wear.total_writes()
            check(
                close_enough(expected, recorded), "wear-conservation",
                "controller-issued write fractions and per-bank wear "
                "records disagree",
                controller_total=expected, wear_total=recorded,
                bank=request.bank, block=request.block,
            )
        if self.quota is not None:
            damage = self.wear.model.damage_per_write(factor) * fraction
            self.quota.record_wear(request.bank, damage)
        if self.faults is not None:
            newly_dead = self.faults.record_damage(
                request.bank, local, factor, fraction,
            )
            if newly_dead and self._ts is not None:
                self._ts.record(
                    self.events.now, EV_CELL_FAIL, bank=request.bank,
                    block=request.block, req_id=request.req_id,
                    factor=factor, detail=f"cells={newly_dead}")

    def _notify_write_space(self) -> None:
        while self._write_space_waiters and not self.write_q.full:
            self._write_space_waiters.pop(0)()

    def _notify_read_space(self) -> None:
        while self._read_space_waiters and not self.read_q.full:
            self._read_space_waiters.pop(0)()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------

    def bank_utilization(self, window_ns: float) -> float:
        """Mean fraction of time banks were busy over ``window_ns``."""
        if window_ns <= 0:
            return 0.0
        busy = sum(b.busy_time_ns for b in self.banks)
        return busy / (window_ns * len(self.banks))

    def drain_fraction(self, window_ns: float) -> float:
        """Fraction of time spent in write-drain mode over ``window_ns``."""
        if window_ns <= 0:
            return 0.0
        total = self.stats.drain_time_ns
        if self.drain_mode:
            total += self.events.now - self._drain_started_ns
        return total / window_ns

    def reset_statistics(self) -> None:
        """Clear stats and utilization counters (end of warmup)."""
        self.stats.reset()
        for bank in self.banks:
            # Charge only the remaining busy time to the new window.
            if bank.in_flight is not None:
                bank.busy_time_ns = max(0.0, bank.in_flight.finish_ns - self.events.now)
            else:
                bank.busy_time_ns = 0.0
        if self.drain_mode:
            self._drain_started_ns = self.events.now
        for queue in (self.read_q, self.write_q, self.eager_q):
            queue.reset_depth_statistics()
        # Re-anchor the wear-conservation cross-check: the caller may zero
        # the wear records around this reset, so re-read the actual total.
        self._wear_write_tally = 0.0
        self._wear_write_baseline = self.wear.total_writes()
