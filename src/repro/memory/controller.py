"""Event-driven memory controller (the NVMain-equivalent substrate).

Scheduling rules (Sections IV and V, Table II):

* Per idle bank, reads issue before writes; writes issue opportunistically
  when their bank has no queued read; eager requests issue only when their
  bank has neither queued reads nor queued writes.
* When the write queue fills to ``drain_high`` the controller enters *write
  drain* mode and prioritises writes over reads (per bank) until occupancy
  falls to ``drain_low``.
* A read arriving for a bank that is currently executing a *cancellable*
  write cancels it (write cancellation, Qureshi et al.); the victim write
  returns to the head of its queue and its partial cell stress is recorded
  as fractional wear.
* Write speed (normal vs slow) is chosen at issue time by the Figure-9
  decision tree (:mod:`repro.core.decision`).
* One shared 64-bit data bus serialises all data bursts (20 ns per line).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro import params
from repro.core.decision import choose_write_factor
from repro.core.policies import WritePolicy
from repro.core.wear_quota import WearQuota
from repro.endurance.wear import WearTracker
from repro.faults.injector import (WRITE_FATAL, WRITE_OK, WRITE_RETIRED,
                                   WRITE_RETRY, FaultInjector)
from repro.lint.sanitize import check, close_enough, resolve
from repro.memory.address import AddressMap
from repro.memory.bank import Bank, InFlight
from repro.memory.queues import EAGER, READ, WRITE, Request, RequestQueue
from repro.memory.rank import RankFawLimiter
from repro.memory.timing import MemoryTiming
from repro.sim.events import EventQueue
from repro.telemetry import (EV_CANCEL, EV_CELL_FAIL, EV_COMPLETE,
                             EV_DRAIN_ENTER, EV_DRAIN_EXIT, EV_ENQUEUE,
                             EV_ISSUE, EV_LINE_RETIRE, EV_PAUSE,
                             EV_UNCORRECTABLE, EV_VERIFY_RETRY,
                             NULL_TELEMETRY, Telemetry)
from repro.telemetry.metrics import Counter, bank_metric_name


class _ControllerTelemetry:
    """Pre-resolved instrument references for the enabled-telemetry path.

    Resolving every counter once at construction keeps the per-event cost
    of *enabled* telemetry to attribute loads; the *disabled* path never
    builds this object at all and pays a single ``is not None`` check per
    instrumentation site.
    """

    def __init__(self, telemetry: Telemetry, num_banks: int) -> None:
        self.tel = telemetry
        # Bound method, saving two attribute loads per trace record.
        self.record = telemetry.tracer.record
        metrics = telemetry.metrics
        self.reads_issued = metrics.counter("ctrl.reads_issued")
        self.writes_normal = metrics.counter("ctrl.writes_normal")
        self.writes_slow = metrics.counter("ctrl.writes_slow")
        self.eager_issued = metrics.counter("ctrl.eager_issued")
        self.cancellations = metrics.counter("ctrl.cancellations")
        self.pauses = metrics.counter("ctrl.pauses")
        self.drains = metrics.counter("ctrl.drains")
        self.drain_active = metrics.gauge("ctrl.drain_active")
        self.read_latency = metrics.histogram("ctrl.read_latency_ns")
        # Per-bank slow/normal issue mix (the Bank-Aware observable).
        # bank_metric_name keeps the naming scheme in one cached place,
        # shared with the System wear/utilization probes.
        self.bank_slow: List[Counter] = [
            metrics.counter(bank_metric_name(i, "writes_slow"))
            for i in range(num_banks)
        ]
        self.bank_normal: List[Counter] = [
            metrics.counter(bank_metric_name(i, "writes_normal"))
            for i in range(num_banks)
        ]
        # Per-epoch pending increments (fast path only): whole-unit counter
        # bumps accumulate in plain ints / flat per-bank int lists and are
        # folded in by flush_pending, which the registry runs before every
        # sample.  Integer adds commute exactly, so the sampled series are
        # bit-identical to the reference path's per-event increments.
        self.pend_reads = 0
        self.pend_writes_normal = 0
        self.pend_writes_slow = 0
        self.pend_eager = 0
        self.pend_cancellations = 0
        self.pend_pauses = 0
        self.pend_bank_slow: List[int] = [0] * num_banks
        self.pend_bank_normal: List[int] = [0] * num_banks

    def flush_pending(self) -> None:
        """Fold the buffered fast-path increments into the live counters."""
        if self.pend_reads:
            self.reads_issued.value += self.pend_reads
            self.pend_reads = 0
        if self.pend_writes_normal:
            self.writes_normal.value += self.pend_writes_normal
            self.pend_writes_normal = 0
        if self.pend_writes_slow:
            self.writes_slow.value += self.pend_writes_slow
            self.pend_writes_slow = 0
        if self.pend_eager:
            self.eager_issued.value += self.pend_eager
            self.pend_eager = 0
        if self.pend_cancellations:
            self.cancellations.value += self.pend_cancellations
            self.pend_cancellations = 0
        if self.pend_pauses:
            self.pauses.value += self.pend_pauses
            self.pend_pauses = 0
        bank_slow = self.pend_bank_slow
        for index, count in enumerate(bank_slow):
            if count:
                self.bank_slow[index].value += count
                bank_slow[index] = 0
        bank_normal = self.pend_bank_normal
        for index, count in enumerate(bank_normal):
            if count:
                self.bank_normal[index].value += count
                bank_normal[index] = 0


class ControllerStats:
    """Raw counters accumulated by the controller."""

    def __init__(self) -> None:
        self.reads_from_llc = 0
        self.writes_from_llc = 0
        self.eager_from_llc = 0
        self.reads_issued = 0
        self.read_row_hits = 0
        self.read_row_misses = 0
        self.writes_issued_normal = 0
        self.writes_issued_slow = 0
        self.eager_issued = 0            # subset of writes_issued_slow/normal
        self.writes_completed = 0
        self.reads_completed = 0
        self.cancellations = 0
        self.pauses = 0
        self.drain_events = 0
        self.drain_time_ns = 0.0
        self.read_latency_sum_ns = 0.0

    @property
    def writes_issued_total(self) -> int:
        return self.writes_issued_normal + self.writes_issued_slow

    @property
    def requests_issued_total(self) -> int:
        return self.reads_issued + self.writes_issued_total

    @property
    def avg_read_latency_ns(self) -> float:
        if self.reads_completed == 0:
            return 0.0
        return self.read_latency_sum_ns / self.reads_completed

    def reset(self) -> None:
        self.__init__()


class MemoryController:
    """ReRAM memory controller with Mellow Writes support."""

    def __init__(
        self,
        events: EventQueue,
        policy: WritePolicy,
        address_map: Optional[AddressMap] = None,
        timing: Optional[MemoryTiming] = None,
        wear: Optional[WearTracker] = None,
        quota: Optional[WearQuota] = None,
        read_queue_entries: int = params.READ_QUEUE_ENTRIES,
        write_queue_entries: int = params.WRITE_QUEUE_ENTRIES,
        eager_queue_entries: int = params.EAGER_QUEUE_ENTRIES,
        drain_low: int = params.WRITE_DRAIN_LOW,
        drain_high: int = params.WRITE_DRAIN_HIGH,
        wear_scaler: Optional[Callable[[], float]] = None,
        cancel_threshold: float = 0.5,
        page_policy: str = "open",
        read_scheduler: str = "fcfs",
        sanitize: Optional[bool] = None,
        telemetry: Telemetry = NULL_TELEMETRY,
        faults: Optional[FaultInjector] = None,
        on_fatal: Optional[Callable[[float], None]] = None,
        fastpath: bool = False,
    ) -> None:
        self.events = events
        self.policy = policy
        self.amap = address_map if address_map is not None else AddressMap()
        self.timing = (
            timing
            if timing is not None
            else MemoryTiming(slow_factor=policy.slow_factor)
        )
        self.wear = (
            wear
            if wear is not None
            else WearTracker(self.amap.num_banks, self.amap.blocks_per_bank)
        )
        self.quota = quota
        if policy.wear_quota and quota is None:
            raise ValueError("policy requires Wear Quota but none supplied")
        if not 0 < drain_low <= drain_high <= write_queue_entries:
            raise ValueError("need 0 < drain_low <= drain_high <= capacity")

        def clock() -> float:
            return self.events.now

        self._sanitize = resolve(sanitize)
        self.telemetry = telemetry
        self._ts: Optional[_ControllerTelemetry] = (
            _ControllerTelemetry(telemetry, self.amap.num_banks)
            if telemetry.enabled else None
        )
        self.read_q = RequestQueue(read_queue_entries, "read", clock=clock,
                                   sanitize=self._sanitize,
                                   telemetry=telemetry,
                                   num_banks=self.amap.num_banks)
        self.write_q = RequestQueue(write_queue_entries, "write", clock=clock,
                                    sanitize=self._sanitize,
                                    telemetry=telemetry,
                                    num_banks=self.amap.num_banks)
        self.eager_q = RequestQueue(eager_queue_entries, "eager", clock=clock,
                                    sanitize=self._sanitize,
                                    telemetry=telemetry,
                                    num_banks=self.amap.num_banks)
        self.drain_low = drain_low
        self.drain_high = drain_high
        if not 0.0 <= cancel_threshold <= 1.0:
            raise ValueError("cancel_threshold must be in [0, 1]")
        # Threshold-based cancellation (Qureshi et al., HPCA 2010): a write
        # whose programming pulse has progressed beyond this fraction is
        # allowed to finish - aborting it would waste nearly a whole pulse
        # of cell stress and re-pay the full write later.
        self.cancel_threshold = cancel_threshold
        if page_policy not in ("open", "closed"):
            raise ValueError("page_policy must be 'open' or 'closed'")
        # Table II uses open-page; closed-page (precharge after every
        # access) is provided for sensitivity studies.
        self.page_policy = page_policy
        if read_scheduler not in ("fcfs", "frfcfs"):
            raise ValueError("read_scheduler must be 'fcfs' or 'frfcfs'")
        # Per-bank read selection: plain FCFS, or FR-FCFS (row hits first).
        self.read_scheduler = read_scheduler
        # Hoisted once: _select_request runs on every issue opportunity and
        # a string compare there is measurable.
        self._frfcfs = read_scheduler == "frfcfs"

        self.banks: List[Bank] = [Bank(i) for i in range(self.amap.num_banks)]
        self.faw: List[RankFawLimiter] = [
            RankFawLimiter(self.timing.t_faw_ns, self.timing.t_faw_activates)
            for _ in range(self.amap.num_ranks)
        ]
        self.bus_free_ns = 0.0
        self.drain_mode = False
        self._drain_started_ns = 0.0
        self.stats = ControllerStats()
        # Optional per-write damage multiplier in (0, 1]; Flip-N-Write uses
        # it to model the fraction of cells actually programmed.
        self.wear_scaler = wear_scaler
        # Fault injection: the injector ages cells alongside the wear
        # tracker and arbitrates write-verify outcomes at completion;
        # on_fatal fires once when an uncorrectable error ends the run.
        self.faults = faults
        self.on_fatal = on_fatal
        self._write_space_waiters: List[Callable[[], None]] = []
        self._read_space_waiters: List[Callable[[], None]] = []
        # Wear-conservation cross-check (sanitize mode): the controller
        # keeps its own tally of write fractions it hands to the wear
        # tracker; the two independently maintained sums must always agree.
        self._wear_write_tally = 0.0
        self._wear_write_baseline = self.wear.total_writes()
        # Run-local request ids: the module-global counter in queues.py
        # carries state across simulations in one process, which would
        # make trace req_ids depend on how many runs preceded this one
        # (serial sweeps vs fresh parallel workers would emit different
        # traces for the same config).
        self._request_ids = itertools.count()

        # --------------------------------------------------------------
        # Hot-path twin switch and its hoisted state (see docs/performance.md).
        # Engaged only when the System asks for it AND nothing that needs
        # the reference spine is active: the sanitizer's invariant checks
        # and fault injection (write-verify at completion) run reference-
        # only by design.  The switch never changes observable results -
        # the fast twins below are bit-identical by construction - and
        # never enters the result-cache key.
        self._fastpath = bool(fastpath) and not self._sanitize and faults is None
        self._num_banks = self.amap.num_banks
        self._banks_per_rank = self.amap.banks_per_rank
        self._blocks_per_row = self.amap.blocks_per_row
        self._t_rcd = self.timing.t_rcd_ns
        self._t_cas = self.timing.t_cas_ns
        self._burst = self.timing.burst_ns
        self._t_wp = self.timing.t_wp_normal_ns
        self._cancel_penalty = self.timing.cancel_penalty_ns
        self._closed_page = page_policy == "closed"
        self._pausing = policy.pausing
        self._cancel_normal = policy.cancel_normal
        self._cancel_slow = policy.cancel_slow
        # The Figure-9 decision tree degenerates to a constant for the
        # static policies; only Bank-Aware / Wear-Quota / multi-latency
        # policies need the per-write queue probes.
        if policy.all_slow:
            self._static_write_factor: Optional[float] = policy.slow_factor
        elif policy.bank_aware or policy.wear_quota or policy.multi_latency:
            self._static_write_factor = None
        else:
            self._static_write_factor = 1.0
        # Eager writes never consult queue occupancy (Figure 9's rightmost
        # leaf), so their factor is always static.
        self._eager_factor = policy.slow_factor if policy.eager_slow else 1.0
        # damage_per_write(factor) is a pure function of the factor; cache
        # the handful of distinct factors a run can use.
        self._damage_by_factor: Dict[float, float] = {}
        # Flat mirrors of the scheduling-hot Bank fields, indexed by bank
        # id: the fast spine's issue scan reads and writes these primitives
        # and sync_bank_state writes them back to the Bank objects at sync
        # points.  The cold per-bank counters (busy_time_ns, ops_begun,
        # ops_cancelled) stay live on the Bank objects in both modes.
        self._bank_busy_until: List[float] = [0.0] * self._num_banks
        self._bank_open_row: List[Optional[int]] = [None] * self._num_banks
        self._bank_in_flight: List[Optional[InFlight]] = (
            [None] * self._num_banks)
        if self._fastpath and self._ts is not None:
            telemetry.metrics.add_pre_sample_hook(self._ts.flush_pending)
        if self._fastpath:
            # Instance-level rebinds: callers holding a bound reference
            # (the core's writeback sink, the DRAM buffer, the eager
            # queue) resolve the fast twins directly, skipping a dispatch
            # frame per submission.  The class-level methods keep their
            # dispatch for reference mode.
            self.submit_read = self.submit_read_fast      # type: ignore[method-assign]
            self.submit_write = self.submit_write_fast    # type: ignore[method-assign]
            self.submit_eager = self.submit_eager_fast    # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Submission API (called by the LLC / CPU side)
    # ------------------------------------------------------------------

    def _make_request(self, kind: str, block: int,
                      callback: Optional[Callable[[float], None]]) -> Request:
        rank, bank, row, _ = self.amap.decode(block)
        return Request(
            kind=kind, block=block, bank=bank, rank=rank, row=row,
            arrival_ns=self.events.now, callback=callback,
            req_id=next(self._request_ids),
        )

    def submit_read(self, block: int,
                    callback: Optional[Callable[[float], None]] = None) -> bool:
        """Enqueue a demand read; returns False if the read queue is full."""
        if self._fastpath:
            return self.submit_read_fast(block, callback)
        if self.read_q.full:
            return False
        request = self._make_request(READ, block, callback)
        self.read_q.push(request)
        self.stats.reads_from_llc += 1
        if self._ts is not None:
            self._ts.record(
                self.events.now, EV_ENQUEUE, request.bank, block,
                request.req_id, 0.0, READ)
        self._maybe_cancel_for_read(request.bank)
        self._try_issue_bank(request.bank)
        return True

    def submit_write(self, block: int,
                     callback: Optional[Callable[[float], None]] = None) -> bool:
        """Enqueue a writeback; returns False if the write queue is full."""
        if self._fastpath:
            return self.submit_write_fast(block, callback)
        if self.write_q.full:
            return False
        request = self._make_request(WRITE, block, callback)
        self.write_q.push(request)
        self.stats.writes_from_llc += 1
        if self._ts is not None:
            self._ts.record(
                self.events.now, EV_ENQUEUE, request.bank, block,
                request.req_id, 0.0, WRITE)
        if not self.drain_mode and len(self.write_q) >= self.drain_high:
            self._enter_drain()
        else:
            self._try_issue_bank(request.bank)
        return True

    def submit_eager(self, block: int,
                     callback: Optional[Callable[[float], None]] = None) -> bool:
        """Enqueue an eager mellow writeback; False if its queue is full."""
        if self._fastpath:
            return self.submit_eager_fast(block, callback)
        if self.eager_q.full:
            return False
        request = self._make_request(EAGER, block, callback)
        self.eager_q.push(request)
        self.stats.eager_from_llc += 1
        if self._ts is not None:
            self._ts.record(
                self.events.now, EV_ENQUEUE, request.bank, block,
                request.req_id, 0.0, EAGER)
        self._try_issue_bank(request.bank)
        return True

    def wait_for_write_space(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once the write queue can accept a request."""
        if not self.write_q.full:
            callback()
        else:
            self._write_space_waiters.append(callback)

    def wait_for_read_space(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once the read queue can accept a request."""
        if not self.read_q.full:
            callback()
        else:
            self._read_space_waiters.append(callback)

    @property
    def eager_queue_has_space(self) -> bool:
        return not self.eager_q.full

    # ------------------------------------------------------------------
    # Drain mode
    # ------------------------------------------------------------------

    def _enter_drain(self) -> None:
        self.drain_mode = True
        self._drain_started_ns = self.events.now
        self.stats.drain_events += 1
        ts = self._ts
        if ts is not None:
            ts.drains.value += 1.0
            ts.drain_active.set(1.0)
            ts.record(
                self.events.now, EV_DRAIN_ENTER, -1, -1, -1, 0.0,
                f"write_q={len(self.write_q)}")
        for bank in self.banks:
            self._try_issue_bank(bank.index)

    def _maybe_exit_drain(self) -> None:
        if self.drain_mode and len(self.write_q) <= self.drain_low:
            self.drain_mode = False
            self.stats.drain_time_ns += self.events.now - self._drain_started_ns
            ts = self._ts
            if ts is not None:
                ts.drain_active.set(0.0)
                ts.record(
                    self.events.now, EV_DRAIN_EXIT, -1, -1, -1, 0.0,
                    f"write_q={len(self.write_q)}")
            for bank in self.banks:
                self._try_issue_bank(bank.index)

    # ------------------------------------------------------------------
    # Write cancellation
    # ------------------------------------------------------------------

    def _maybe_cancel_for_read(self, bank_index: int) -> None:
        """Cancel a cancellable in-flight write when a read arrives."""
        if self.drain_mode:
            return
        bank = self.banks[bank_index]
        op = bank.in_flight
        now = self.events.now
        if op is None or bank.is_idle(now) or not op.cancellable:
            return
        pulse_ns = self.timing.write_pulse_ns_for(op.request.speed_factor)
        elapsed = min(pulse_ns, max(0.0, now - op.pulse_start_ns))
        fraction = elapsed / pulse_ns
        pausing = self.policy.pausing
        if not pausing and fraction >= self.cancel_threshold:
            return  # too far along; cancelling would waste a near-full pulse
        victim_queue = self.eager_q if op.request.kind == EAGER else self.write_q
        if victim_queue.full:
            return  # nowhere to put the victim; let the write finish
        bank.cancel(now)
        # Partial cell stress: fraction of the programming pulse completed.
        if fraction > 0.0:
            self._record_wear(op.request, fraction)
        if pausing:
            # Write pausing keeps the completed pulse time; the eventual
            # resume only pays (and only wears) the remainder.
            self.stats.pauses += 1
            op.request.progress_ns = op.resumed_progress_ns + elapsed
        else:
            self.stats.cancellations += 1
            op.request.progress_ns = 0.0
        ts = self._ts
        if ts is not None:
            if pausing:
                ts.pauses.value += 1.0
            else:
                ts.cancellations.value += 1.0
            ts.record(
                now, EV_PAUSE if pausing else EV_CANCEL,
                bank.index, op.request.block, op.request.req_id,
                op.request.speed_factor,
                f"{op.request.kind} progress={fraction:.3f}")
        victim_queue.push_front(op.request)
        # tiny turnaround penalty before the bank can accept the read
        bank.busy_until = now + self.timing.cancel_penalty_ns
        self.events.schedule(
            bank.busy_until, lambda b=bank.index: self._try_issue_bank(b),
        )

    # ------------------------------------------------------------------
    # Issue logic
    # ------------------------------------------------------------------

    def _try_issue_bank(self, bank_index: int) -> None:
        if self._fastpath:
            # Shared callers (drain sweeps, cancel-penalty pokes) land
            # here; route them onto the fast spine so the flat bank-state
            # mirrors stay the single source of truth in fast mode.
            self._try_issue_bank_fast(bank_index)
            return
        bank = self.banks[bank_index]
        now = self.events.now
        # A bank is free only when no operation object is outstanding AND
        # any cancel-penalty window has elapsed.  Checking busy_until alone
        # is not enough: at the exact finish time another event can run
        # before the completion event, and issuing then would overwrite the
        # in-flight operation and lose its completion callback.
        if bank.in_flight is not None or not bank.is_idle(now):
            return
        request = self._select_request(bank_index)
        if request is None:
            return
        if request.kind == READ:
            self._issue_read(bank, request)
        else:
            self._issue_write(bank, request)

    def _select_request(self, bank_index: int) -> Optional[Request]:
        # Runs on every issue opportunity; try_pop_bank folds the
        # emptiness test into the pop so each queue is probed once.
        if self.drain_mode:
            # Write drain stalls reads system-wide until the queue empties
            # to drain_low - this global turnaround is what makes drains
            # "an expensive memory operation" (Section VI-C).
            return self.write_q.try_pop_bank(bank_index)
        if self._frfcfs:
            if self.read_q.count_bank(bank_index):
                return self.read_q.pop_bank_row_first(
                    bank_index, self.banks[bank_index].open_row,
                )
        else:
            request = self.read_q.try_pop_bank(bank_index)
            if request is not None:
                return request
        request = self.write_q.try_pop_bank(bank_index)
        if request is not None:
            return request
        return self.eager_q.try_pop_bank(bank_index)

    def _reserve_bus(self, earliest_ns: float) -> float:
        """Reserve the shared data bus; returns the burst start time."""
        start = max(earliest_ns, self.bus_free_ns)
        self.bus_free_ns = start + self.timing.burst_ns
        return start

    def _issue_read(self, bank: Bank, request: Request) -> None:
        now = self.events.now
        row_hit = bank.row_hit(request.row)
        ready = now
        if not row_hit:
            limiter = self.faw[self.amap.rank_of_bank(bank.index)]
            act_start = limiter.earliest_activate(now)
            limiter.record_activate(act_start)
            ready = act_start + self.timing.t_rcd_ns
            bank.open_row_for(request.row)
            self.stats.read_row_misses += 1
        else:
            self.stats.read_row_hits += 1
        data_start = self._reserve_bus(ready + self.timing.t_cas_ns)
        finish = data_start + self.timing.burst_ns
        request.attempts += 1
        self.stats.reads_issued += 1
        ts = self._ts
        if ts is not None:
            ts.reads_issued.value += 1.0
            ts.record(
                now, EV_ISSUE, bank.index, request.block, request.req_id,
                0.0, "read" if row_hit else "read miss")
        op = InFlight(
            request=request, start_ns=now, finish_ns=finish,
            pulse_start_ns=finish, cancellable=False,
        )
        bank.begin(op)
        self._notify_read_space()
        self.events.schedule(finish, lambda: self._complete_read(bank, op))

    def _issue_write(self, bank: Bank, request: Request) -> None:
        now = self.events.now
        if request.progress_ns > 0.0:
            # Resuming a paused write: the pulse speed is committed; only
            # the remaining pulse time is paid.
            factor = request.speed_factor
        elif request.retries > 0:
            # Write-verify retry: re-issue on the Mellow Writes slow path
            # regardless of policy - a longer pulse is the device's best
            # shot at programming marginal cells (and wears them least).
            factor = self.timing.slow_factor
            request.speed_factor = factor
        else:
            factor = choose_write_factor(
                self.policy,
                kind=request.kind,
                other_writes_for_bank=self.write_q.count_bank(bank.index),
                reads_for_bank=self.read_q.count_bank(bank.index),
                quota_exceeded=(
                    self.quota.is_slow_only(bank.index) if self.quota else False
                ),
                telemetry=self.telemetry,
            )
            request.speed_factor = factor
        slow = request.slow
        request.attempts += 1
        data_start = self._reserve_bus(now)
        pulse_start = data_start + self.timing.burst_ns
        full_pulse = self.timing.write_pulse_ns_for(factor)
        remaining = max(0.0, full_pulse - request.progress_ns)
        finish = pulse_start + remaining
        if slow:
            self.stats.writes_issued_slow += 1
        else:
            self.stats.writes_issued_normal += 1
        if request.kind == EAGER:
            self.stats.eager_issued += 1
        ts = self._ts
        if ts is not None:
            if slow:
                ts.writes_slow.value += 1.0
                ts.bank_slow[bank.index].value += 1.0
            else:
                ts.writes_normal.value += 1.0
                ts.bank_normal[bank.index].value += 1.0
            if request.kind == EAGER:
                ts.eager_issued.value += 1.0
            ts.record(
                now, EV_ISSUE, bank.index, request.block, request.req_id,
                factor, request.kind)
        op = InFlight(
            request=request, start_ns=now, finish_ns=finish,
            pulse_start_ns=pulse_start,
            cancellable=self.policy.cancellable(slow),
            resumed_progress_ns=request.progress_ns,
        )
        bank.begin(op)
        if request.kind == WRITE:
            self._notify_write_space()
            self._maybe_exit_drain()
        self.events.schedule(finish, lambda: self._complete_write(bank, op))

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def _complete_read(self, bank: Bank, op: InFlight) -> None:
        if bank.in_flight is not op:
            # Stale completion for a cancelled/replaced operation; the bank
            # may still be idle with queued work, so poke it.
            self._try_issue_bank(bank.index)
            return
        request = op.request
        bank.complete()
        if self.page_policy == "closed":
            bank.open_row = None
        now = self.events.now
        self.stats.reads_completed += 1
        self.stats.read_latency_sum_ns += now - request.arrival_ns
        ts = self._ts
        if ts is not None:
            ts.read_latency.observe(now - request.arrival_ns)
            ts.record(
                now, EV_COMPLETE, bank.index, request.block,
                request.req_id, 0.0, READ)
        if request.callback is not None:
            request.callback(now)
        self._try_issue_bank(bank.index)

    def _complete_write(self, bank: Bank, op: InFlight) -> None:
        if bank.in_flight is not op:
            # The write was cancelled; a fresh issue will complete it.  The
            # bank may be idle with queued work, so poke it.
            self._try_issue_bank(bank.index)
            return
        request = op.request
        bank.complete()
        self.stats.writes_completed += 1
        full_pulse = self.timing.write_pulse_ns_for(request.speed_factor)
        executed_fraction = 1.0
        if op.resumed_progress_ns > 0.0 and full_pulse > 0.0:
            # A resumed write already deposited wear for its paused
            # portions; charge only the remainder executed this attempt.
            executed_fraction = max(
                0.0, 1.0 - op.resumed_progress_ns / full_pulse,
            )
        self._record_wear(request, executed_fraction)
        ts = self._ts
        if ts is not None:
            ts.record(
                self.events.now, EV_COMPLETE, bank.index, request.block,
                request.req_id, request.speed_factor, request.kind)
        if self.faults is not None:
            outcome = self.faults.verify_write(
                request.bank, self.amap.bank_local_block(request.block),
                request.retries,
            )
            if outcome != WRITE_OK and self._handle_fault_outcome(
                    bank, request, outcome):
                # Re-issued as a verify retry: completion (and the
                # callback) is deferred until the retry finishes.
                return
        if request.callback is not None:
            request.callback(self.events.now)
        self._try_issue_bank(bank.index)

    def _handle_fault_outcome(self, bank: Bank, request: Request,
                              outcome: str) -> bool:
        """Apply a non-OK write-verify outcome; True = write re-issued."""
        now = self.events.now
        ts = self._ts
        if outcome == WRITE_RETRY:
            request.retries += 1
            request.progress_ns = 0.0
            if ts is not None:
                ts.record(
                    now, EV_VERIFY_RETRY, bank.index, request.block,
                    request.req_id, request.speed_factor,
                    f"retry={request.retries}")
            # The bank just freed up, so the retry starts immediately -
            # no queue round trip, which also means a full write queue
            # can never strand a retry.
            self._issue_write(bank, request)
            return True
        if outcome == WRITE_RETIRED:
            bank.lines_retired += 1
            if ts is not None:
                ts.record(
                    now, EV_LINE_RETIRE, bank.index, request.block,
                    request.req_id, 0.0, request.kind)
        elif outcome == WRITE_FATAL:
            if ts is not None:
                ts.record(
                    now, EV_UNCORRECTABLE, bank.index, request.block,
                    request.req_id, 0.0, request.kind)
            if self.on_fatal is not None:
                self.on_fatal(now)
        # WRITE_CORRECTED needs no controller action: the injector has
        # already counted it, and ECC repaired the line in place.
        return False

    def _record_wear(self, request: Request, fraction: float) -> None:
        factor = request.speed_factor
        if self.wear_scaler is not None:
            fraction *= self.wear_scaler()
        local = self.amap.bank_local_block(request.block)
        self.wear.record_write(
            request.bank, factor, block=local, fraction=fraction,
        )
        if self._sanitize:
            self._wear_write_tally += fraction
            expected = self._wear_write_baseline + self._wear_write_tally
            recorded = self.wear.total_writes()
            check(
                close_enough(expected, recorded), "wear-conservation",
                "controller-issued write fractions and per-bank wear "
                "records disagree",
                controller_total=expected, wear_total=recorded,
                bank=request.bank, block=request.block,
            )
        if self.quota is not None:
            damage = self.wear.model.damage_per_write(factor) * fraction
            self.quota.record_wear(request.bank, damage)
        if self.faults is not None:
            newly_dead = self.faults.record_damage(
                request.bank, local, factor, fraction,
            )
            if newly_dead and self._ts is not None:
                self._ts.record(
                    self.events.now, EV_CELL_FAIL, request.bank,
                    request.block, request.req_id, factor,
                    f"cells={newly_dead}")

    # ------------------------------------------------------------------
    # Hot-path twins (REPRO_NO_FASTPATH=1 forces the reference spine; the
    # twins must stay bit-identical to it - see docs/performance.md)
    # ------------------------------------------------------------------

    def submit_read_fast(self, block: int,
                         callback: Optional[Callable[[float], None]] = None,
                         ) -> bool:   # simlint: hotpath
        """Hot-path :meth:`submit_read` twin: decode and dispatch inlined."""
        read_q = self.read_q
        if read_q._size >= read_q.capacity:
            return False
        now = self.events.now
        num_banks = self._num_banks
        bank = block % num_banks
        local = block // num_banks
        # Positional Request construction (field order: kind, block, bank,
        # rank, row, arrival_ns, callback, attempts, retries, speed_factor,
        # progress_ns, req_id) - kwargs cost measurably on this path.
        request = Request(
            READ, block, bank, bank // self._banks_per_rank,
            local // self._blocks_per_row, now, callback, 0, 0, 1.0, 0.0,
            next(self._request_ids),
        )
        read_q.push_fast(request, now)
        self.stats.reads_from_llc += 1
        ts = self._ts
        if ts is not None:
            ts.record(now, EV_ENQUEUE, bank, block, request.req_id,
                      0.0, READ)
        op = self._bank_in_flight[bank]
        if op is None:
            if now >= self._bank_busy_until[bank]:
                self._try_issue_bank_fast(bank)
        elif (op.cancellable and not self.drain_mode
              and now < self._bank_busy_until[bank]):
            self._cancel_for_read_fast(bank, op, now)
        return True

    def submit_write_fast(self, block: int,
                          callback: Optional[Callable[[float], None]] = None,
                          ) -> bool:   # simlint: hotpath
        """Hot-path :meth:`submit_write` twin."""
        write_q = self.write_q
        if write_q._size >= write_q.capacity:
            return False
        now = self.events.now
        num_banks = self._num_banks
        bank = block % num_banks
        local = block // num_banks
        request = Request(
            WRITE, block, bank, bank // self._banks_per_rank,
            local // self._blocks_per_row, now, callback, 0, 0, 1.0, 0.0,
            next(self._request_ids),
        )
        write_q.push_fast(request, now)
        self.stats.writes_from_llc += 1
        ts = self._ts
        if ts is not None:
            ts.record(now, EV_ENQUEUE, bank, block, request.req_id,
                      0.0, WRITE)
        if not self.drain_mode and write_q._size >= self.drain_high:
            self._enter_drain()
        elif (self._bank_in_flight[bank] is None
              and now >= self._bank_busy_until[bank]):
            self._try_issue_bank_fast(bank)
        return True

    def submit_eager_fast(self, block: int,
                          callback: Optional[Callable[[float], None]] = None,
                          ) -> bool:   # simlint: hotpath
        """Hot-path :meth:`submit_eager` twin."""
        eager_q = self.eager_q
        if eager_q._size >= eager_q.capacity:
            return False
        now = self.events.now
        num_banks = self._num_banks
        bank = block % num_banks
        local = block // num_banks
        request = Request(
            EAGER, block, bank, bank // self._banks_per_rank,
            local // self._blocks_per_row, now, callback, 0, 0, 1.0, 0.0,
            next(self._request_ids),
        )
        eager_q.push_fast(request, now)
        self.stats.eager_from_llc += 1
        ts = self._ts
        if ts is not None:
            ts.record(now, EV_ENQUEUE, bank, block, request.req_id,
                      0.0, EAGER)
        if (self._bank_in_flight[bank] is None
                and now >= self._bank_busy_until[bank]):
            self._try_issue_bank_fast(bank)
        return True

    def _try_issue_bank_fast(self, bank_index: int) -> None:   # simlint: hotpath
        """Hot-path :meth:`_try_issue_bank` twin: guard, select and issue.

        One monolithic body covers the reference path's
        ``_select_request`` / ``_issue_read`` / ``_issue_write`` chain with
        the bank state read from the flat mirrors and every timing
        constant pre-hoisted onto the controller.
        """
        if self._bank_in_flight[bank_index] is not None:
            return
        now = self.events.now
        if now < self._bank_busy_until[bank_index]:
            return
        if self.drain_mode:
            request = self.write_q.pop_bank_fast(bank_index, now)
            if request is None:
                return
        elif self._frfcfs and self.read_q.count_bank(bank_index):
            request = self.read_q.pop_bank_row_first(
                bank_index, self._bank_open_row[bank_index])
        else:
            request = self.read_q.pop_bank_fast(bank_index, now)
            if request is None:
                request = self.write_q.pop_bank_fast(bank_index, now)
                if request is None:
                    request = self.eager_q.pop_bank_fast(bank_index, now)
                    if request is None:
                        return
        stats = self.stats
        ts = self._ts
        burst = self._burst
        if request.kind == READ:
            row = request.row
            if self._bank_open_row[bank_index] == row:
                stats.read_row_hits += 1
                ready = now
                detail = "read"
            else:
                limiter = self.faw[bank_index // self._banks_per_rank]
                act_start = limiter.earliest_activate(now)
                limiter.record_activate(act_start)
                ready = act_start + self._t_rcd
                self._bank_open_row[bank_index] = row
                stats.read_row_misses += 1
                detail = "read miss"
            start = ready + self._t_cas
            if start < self.bus_free_ns:
                start = self.bus_free_ns
            self.bus_free_ns = start + burst
            finish = start + burst
            request.attempts += 1
            stats.reads_issued += 1
            if ts is not None:
                ts.pend_reads += 1
                ts.record(now, EV_ISSUE, bank_index, request.block,
                          request.req_id, 0.0, detail)
            op = InFlight(
                request=request, start_ns=now, finish_ns=finish,
                pulse_start_ns=finish, cancellable=False,
            )
            self._bank_in_flight[bank_index] = op
            self._bank_busy_until[bank_index] = finish
            bank = self.banks[bank_index]
            bank.busy_time_ns += finish - now
            bank.ops_begun += 1
            if self._read_space_waiters:
                self._notify_read_space()
            self.events.schedule(
                finish, lambda: self._complete_read_fast(bank_index, op))
            return
        # WRITE or EAGER from here on.
        progress = request.progress_ns
        if progress > 0.0:
            # Resuming a paused write: the pulse speed is committed.
            factor = request.speed_factor
        else:
            if request.kind == EAGER:
                factor = self._eager_factor
            else:
                static = self._static_write_factor
                if static is not None:
                    factor = static
                else:
                    factor = choose_write_factor(
                        self.policy,
                        kind=request.kind,
                        other_writes_for_bank=self.write_q.count_bank(
                            bank_index),
                        reads_for_bank=self.read_q.count_bank(bank_index),
                        quota_exceeded=(
                            self.quota.is_slow_only(bank_index)
                            if self.quota else False
                        ),
                        telemetry=self.telemetry,
                    )
            request.speed_factor = factor
        slow = factor > 1.0
        request.attempts += 1
        start = now
        if start < self.bus_free_ns:
            start = self.bus_free_ns
        self.bus_free_ns = start + burst
        pulse_start = start + burst
        remaining = self._t_wp * factor - progress
        if remaining < 0.0:
            remaining = 0.0
        finish = pulse_start + remaining
        if slow:
            stats.writes_issued_slow += 1
        else:
            stats.writes_issued_normal += 1
        eager = request.kind == EAGER
        if eager:
            stats.eager_issued += 1
        if ts is not None:
            if slow:
                ts.pend_writes_slow += 1
                ts.pend_bank_slow[bank_index] += 1
            else:
                ts.pend_writes_normal += 1
                ts.pend_bank_normal[bank_index] += 1
            if eager:
                ts.pend_eager += 1
            ts.record(now, EV_ISSUE, bank_index, request.block,
                      request.req_id, factor, request.kind)
        op = InFlight(
            request=request, start_ns=now, finish_ns=finish,
            pulse_start_ns=pulse_start,
            cancellable=self._cancel_slow if slow else self._cancel_normal,
            resumed_progress_ns=progress,
        )
        self._bank_in_flight[bank_index] = op
        self._bank_busy_until[bank_index] = finish
        bank = self.banks[bank_index]
        bank.busy_time_ns += finish - now
        bank.ops_begun += 1
        if not eager:
            if self._write_space_waiters:
                self._notify_write_space()
            if self.drain_mode and self.write_q._size <= self.drain_low:
                self._maybe_exit_drain()
        self.events.schedule(
            finish, lambda: self._complete_write_fast(bank_index, op))

    def _complete_read_fast(self, bank_index: int,
                            op: InFlight) -> None:   # simlint: hotpath
        """Hot-path :meth:`_complete_read` twin."""
        if self._bank_in_flight[bank_index] is not op:
            # Stale completion for a cancelled/replaced operation; the bank
            # may still be idle with queued work, so poke it.
            self._try_issue_bank_fast(bank_index)
            return
        request = op.request
        self._bank_in_flight[bank_index] = None
        if self._closed_page:
            self._bank_open_row[bank_index] = None
        now = self.events.now
        stats = self.stats
        stats.reads_completed += 1
        latency = now - request.arrival_ns
        stats.read_latency_sum_ns += latency
        ts = self._ts
        if ts is not None:
            ts.read_latency.observe(latency)
            ts.record(now, EV_COMPLETE, bank_index, request.block,
                      request.req_id, 0.0, READ)
        callback = request.callback
        if callback is not None:
            callback(now)
        self._try_issue_bank_fast(bank_index)

    def _complete_write_fast(self, bank_index: int,
                             op: InFlight) -> None:   # simlint: hotpath
        """Hot-path :meth:`_complete_write` twin (fault-free by contract)."""
        if self._bank_in_flight[bank_index] is not op:
            self._try_issue_bank_fast(bank_index)
            return
        request = op.request
        self._bank_in_flight[bank_index] = None
        self.stats.writes_completed += 1
        resumed = op.resumed_progress_ns
        if resumed > 0.0:
            # A resumed write already deposited wear for its paused
            # portions; charge only the remainder executed this attempt.
            fraction = 1.0 - resumed / (self._t_wp * request.speed_factor)
            if fraction < 0.0:
                fraction = 0.0
            self._record_wear_fast(request, fraction)
        else:
            self._record_wear_fast(request, 1.0)
        ts = self._ts
        if ts is not None:
            ts.record(self.events.now, EV_COMPLETE, bank_index,
                      request.block, request.req_id,
                      request.speed_factor, request.kind)
        callback = request.callback
        if callback is not None:
            callback(self.events.now)
        self._try_issue_bank_fast(bank_index)

    def _record_wear_fast(self, request: Request,
                          fraction: float) -> None:   # simlint: hotpath
        """Hot-path :meth:`_record_wear` twin: no sanitizer, no faults."""
        factor = request.speed_factor
        if self.wear_scaler is not None:
            fraction *= self.wear_scaler()
        self.wear.record_write_fast(
            request.bank, factor, request.block // self._num_banks, fraction)
        quota = self.quota
        if quota is not None:
            damage = self._damage_by_factor.get(factor)
            if damage is None:
                damage = self.wear.model.damage_per_write(factor)
                self._damage_by_factor[factor] = damage
            # Inlined WearQuota.record_wear: one accumulator add.
            quota.cumulative_wear[request.bank] += damage * fraction

    def _cancel_for_read_fast(self, bank_index: int, op: InFlight,
                              now: float) -> None:
        """Hot-path :meth:`_maybe_cancel_for_read` tail.

        The caller (submit_read_fast) has already established the guards:
        not in drain mode, an in-flight cancellable operation, bank busy.
        """
        pulse_ns = self._t_wp * op.request.speed_factor
        elapsed = now - op.pulse_start_ns
        if elapsed < 0.0:
            elapsed = 0.0
        elif elapsed > pulse_ns:
            elapsed = pulse_ns
        fraction = elapsed / pulse_ns
        pausing = self._pausing
        if not pausing and fraction >= self.cancel_threshold:
            return  # too far along; cancelling would waste a near-full pulse
        victim_queue = self.eager_q if op.request.kind == EAGER else self.write_q
        if victim_queue._size >= victim_queue.capacity:
            return  # nowhere to put the victim; let the write finish
        bank = self.banks[bank_index]
        bank.busy_time_ns -= max(0.0, op.finish_ns - now)
        self._bank_in_flight[bank_index] = None
        bank.ops_cancelled += 1
        # Partial cell stress: fraction of the programming pulse completed.
        if fraction > 0.0:
            self._record_wear_fast(op.request, fraction)
        if pausing:
            self.stats.pauses += 1
            op.request.progress_ns = op.resumed_progress_ns + elapsed
        else:
            self.stats.cancellations += 1
            op.request.progress_ns = 0.0
        ts = self._ts
        if ts is not None:
            if pausing:
                ts.pend_pauses += 1
            else:
                ts.pend_cancellations += 1
            ts.record(
                now, EV_PAUSE if pausing else EV_CANCEL,
                bank_index, op.request.block, op.request.req_id,
                op.request.speed_factor,
                f"{op.request.kind} progress={fraction:.3f}")
        victim_queue.push_front(op.request)
        # tiny turnaround penalty before the bank can accept the read
        busy = now + self._cancel_penalty
        self._bank_busy_until[bank_index] = busy
        self.events.schedule(
            busy, lambda b=bank_index: self._try_issue_bank(b),
        )

    def sync_bank_state(self) -> None:
        """Write the fast path's flat bank-state mirrors back to the banks.

        No-op on the reference path.  Runs at sync points only (end of
        warmup via reset_statistics, RunResult collection), so everything
        that inspects Bank objects after a fast run sees exactly what a
        reference run would have left there.
        """
        if not self._fastpath:
            return
        busy = self._bank_busy_until
        rows = self._bank_open_row
        ops = self._bank_in_flight
        for index, bank in enumerate(self.banks):
            bank.apply_hot_state(busy[index], rows[index], ops[index])

    def _notify_write_space(self) -> None:
        while self._write_space_waiters and not self.write_q.full:
            self._write_space_waiters.pop(0)()

    def _notify_read_space(self) -> None:
        while self._read_space_waiters and not self.read_q.full:
            self._read_space_waiters.pop(0)()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------

    def bank_utilization(self, window_ns: float) -> float:
        """Mean fraction of time banks were busy over ``window_ns``."""
        if window_ns <= 0:
            return 0.0
        busy = sum(b.busy_time_ns for b in self.banks)
        return busy / (window_ns * len(self.banks))

    def drain_fraction(self, window_ns: float) -> float:
        """Fraction of time spent in write-drain mode over ``window_ns``."""
        if window_ns <= 0:
            return 0.0
        total = self.stats.drain_time_ns
        if self.drain_mode:
            total += self.events.now - self._drain_started_ns
        return total / window_ns

    def reset_statistics(self) -> None:
        """Clear stats and utilization counters (end of warmup)."""
        self.sync_bank_state()
        self.stats.reset()
        for bank in self.banks:
            # Charge only the remaining busy time to the new window.
            if bank.in_flight is not None:
                bank.busy_time_ns = max(0.0, bank.in_flight.finish_ns - self.events.now)
            else:
                bank.busy_time_ns = 0.0
        if self.drain_mode:
            self._drain_started_ns = self.events.now
        for queue in (self.read_q, self.write_q, self.eager_q):
            queue.reset_depth_statistics()
        # Re-anchor the wear-conservation cross-check: the caller may zero
        # the wear records around this reset, so re-read the actual total.
        self._wear_write_tally = 0.0
        self._wear_write_baseline = self.wear.total_writes()
