"""DRAM write buffer: the classic wear-limiting baseline (Section VII).

Qureshi et al. (ISCA 2009) put a small DRAM buffer in front of a PCM main
memory; among its jobs is *write coalescing* - repeated writebacks to the
same line merge in DRAM and reach the resistive array only once, reducing
the number (not the damage) of resistive writes.  The paper classifies
this with Flip-N-Write as a *physical* technique orthogonal to Mellow
Writes, so the reproduction includes it as a composable baseline.

Model: a fully-associative LRU buffer of ``entries`` cachelines sitting
between the LLC's writebacks and the memory controller's write queue.

* a writeback that hits the buffer coalesces (no resistive write);
* a miss allocates; if the buffer is full the LRU entry drains to the
  resistive memory (that drain is the write the controller sees).

DRAM access latency (~tens of ns) is negligible next to the 150-450 ns
resistive write pulses and is folded into zero time; the buffer's effect
is on *which* and *how many* writes reach the array.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional


@dataclass
class DramBufferStats:
    """Counters for the DRAM write-coalescing buffer.

    Attributes:
        writebacks_in: LLC writebacks offered to the buffer.
        coalesced: writebacks absorbed by an existing entry (no resistive
            write ever happens for these).
        drains_out: LRU entries evicted to the memory controller.
    """

    writebacks_in: int = 0
    coalesced: int = 0
    drains_out: int = 0

    @property
    def coalesce_rate(self) -> float:
        if self.writebacks_in == 0:
            return 0.0
        return self.coalesced / self.writebacks_in


class DramWriteBuffer:
    """Fully-associative LRU write-coalescing buffer."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self.entries = entries
        self._lines: "OrderedDict[int, None]" = OrderedDict()
        self.stats = DramBufferStats()

    def __len__(self) -> int:
        return len(self._lines)

    @property
    def full(self) -> bool:
        return len(self._lines) >= self.entries

    def insert(self, block: int) -> Optional[int]:
        """Buffer a writeback; returns a drained block when one spills.

        A hit coalesces (the newer data overwrites the buffered copy) and
        refreshes recency.  A miss on a full buffer evicts the LRU entry,
        which must now be written to the resistive array.
        """
        self.stats.writebacks_in += 1
        if block in self._lines:
            self._lines.move_to_end(block)
            self.stats.coalesced += 1
            return None
        drained = None
        if self.full:
            drained, _ = self._lines.popitem(last=False)
            self.stats.drains_out += 1
        self._lines[block] = None
        return drained

    def drain_one(self) -> Optional[int]:
        """Force out the LRU entry (used at end-of-run flushes)."""
        if not self._lines:
            return None
        block, _ = self._lines.popitem(last=False)
        self.stats.drains_out += 1
        return block

    def contains(self, block: int) -> bool:
        return block in self._lines
