"""Physical address mapping: block address -> (rank, bank, row).

We use cacheline-granularity bank interleaving (consecutive 64 B blocks go to
consecutive banks), the layout that maximises the bank-level parallelism the
paper's mechanisms depend on (Section VI-H).  Within a bank, 16 consecutive
bank-local blocks share one 1 KB row buffer, so streaming workloads see open
rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro import params


@dataclass(frozen=True)
class AddressMap:
    """Maps global cacheline block indices onto memory geometry.

    Attributes:
        num_banks: total banks in the system.
        num_ranks: ranks the banks are distributed over.
        blocks_per_row: cachelines sharing one row buffer (1 KB / 64 B = 16).
        blocks_per_bank: bank capacity in cachelines.
    """

    num_banks: int = params.DEFAULT_BANKS
    num_ranks: int = params.DEFAULT_RANKS
    blocks_per_row: int = params.ROW_BUFFER_BYTES // params.CACHELINE_BYTES
    capacity_bytes: int = params.MEMORY_CAPACITY_BYTES

    def __post_init__(self) -> None:
        if self.num_banks < 1 or self.num_ranks < 1:
            raise ValueError("need at least one bank and one rank")
        if self.num_banks % self.num_ranks:
            raise ValueError("banks must divide evenly across ranks")
        if self.blocks_per_row < 1:
            raise ValueError("blocks_per_row must be >= 1")

    @property
    def banks_per_rank(self) -> int:
        return self.num_banks // self.num_ranks

    @property
    def blocks_per_bank(self) -> int:
        return self.capacity_bytes // params.CACHELINE_BYTES // self.num_banks

    def bank_of(self, block: int) -> int:
        """Bank owning a global block index."""
        return block % self.num_banks

    def rank_of_bank(self, bank: int) -> int:
        return bank // self.banks_per_rank

    def rank_of(self, block: int) -> int:
        return self.rank_of_bank(self.bank_of(block))

    def bank_local_block(self, block: int) -> int:
        """Index of the block within its bank."""
        return block // self.num_banks

    def row_of(self, block: int) -> int:
        """Row-buffer row the block belongs to (within its bank)."""
        return self.bank_local_block(block) // self.blocks_per_row

    def decode(self, block: int) -> Tuple[int, int, int, int]:
        """(rank, bank, row, bank_local_block) for a global block index."""
        bank = self.bank_of(block)
        local = self.bank_local_block(block)
        return (
            self.rank_of_bank(bank),
            bank,
            local // self.blocks_per_row,
            local,
        )

    def encode(self, bank: int, local_block: int) -> int:
        """Inverse of (bank_of, bank_local_block)."""
        if not 0 <= bank < self.num_banks:
            raise IndexError(f"bank {bank} out of range")
        return local_block * self.num_banks + bank
