"""Memory-controller request queues (Table II).

Three queues with strictly decreasing priority:

* ReadQueue   - 32 entries, highest priority;
* WriteQueue  - 32 entries, middle priority, drain thresholds 16 (low) /
  32 (high);
* EagerMellowQueue - 16 entries, lowest priority, never triggers drains and
  only ever issues slow writes.

Each queue keeps a per-bank FIFO index so the controller can ask, per idle
bank, for the oldest request targeting it, and for bank occupancy counts
(the Bank-Aware decision needs "how many writes are queued for this bank?").

The per-bank index is a flat list of deques indexed by bank id (banks are
small dense integers from :meth:`repro.memory.address.AddressMap.decode`),
so the controller's per-bank probes are list indexing rather than dict
hashing.  Pass ``num_banks`` to preallocate the list; without it the list
grows on demand, which keeps direct construction in tests trivial.  The
``*_fast`` methods are the controller hot-path twins of ``push`` /
``try_pop_bank``: the caller has already checked capacity, passes the
clock value instead of paying the clock-closure call, and runs only with
the sanitizer disarmed.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from repro.lint.sanitize import check, resolve
from repro.telemetry import NULL_TELEMETRY, Telemetry

READ = "read"
WRITE = "write"
EAGER = "eager"

_request_ids = itertools.count()


@dataclass(slots=True)
class Request:
    """One memory request as seen by the controller.

    Attributes:
        kind: READ, WRITE or EAGER.
        block: global cacheline block index.
        bank / rank / row: decoded location.
        arrival_ns: when the request entered the controller.
        callback: invoked with the completion time (reads and writes alike).
        attempts: times the request has been issued to a bank (cancellations
            re-issue, so attempts can exceed 1).
        retries: write-verify retries consumed (fault injection); each
            retry re-issues the write on the slow path from scratch.
        speed_factor: write slowdown chosen at issue time (1.0 = normal
            speed; meaningless for reads).  The derived :attr:`slow`
            property reports whether that puts the write below normal speed.
        progress_ns: completed programming-pulse time carried across
            attempts (write pausing).
        req_id: monotonically increasing id, for debugging and stable repr.
    """

    kind: str
    block: int
    bank: int
    rank: int
    row: int
    arrival_ns: float
    callback: Optional[Callable[[float], None]] = None
    attempts: int = 0
    retries: int = 0
    speed_factor: float = 1.0
    progress_ns: float = 0.0
    req_id: int = field(default_factory=lambda: next(_request_ids))

    @property
    def is_write(self) -> bool:
        return self.kind != READ

    @property
    def slow(self) -> bool:
        """Whether the write was issued below normal speed."""
        return self.speed_factor > 1.0


class RequestQueue:
    """Bounded FIFO with a per-bank view.

    When constructed with a ``clock`` callable (returning the current
    simulation time), the queue integrates its occupancy over time so the
    controller can report time-weighted average queue depth.

    With the sanitizer armed (``sanitize=True``, or ``REPRO_SANITIZE=1``
    when the argument is left at ``None``), every mutation re-verifies that
    the aggregate occupancy counter stays within ``[0, capacity]`` and
    equals the sum of the per-bank FIFO lengths - the queue-occupancy
    conservation invariant.
    """

    def __init__(self, capacity: int, name: str,
                 clock: Optional[Callable[[], float]] = None,
                 sanitize: Optional[bool] = None,
                 telemetry: Telemetry = NULL_TELEMETRY,
                 num_banks: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._fifos: List[Deque[Request]] = [deque() for _ in range(num_banks)]
        self._size = 0
        self._clock = clock
        self._occupancy_integral = 0.0
        self._last_change_ns = 0.0
        self._sanitize = resolve(sanitize)
        # Telemetry keeps a per-epoch high-water mark; the disabled path
        # costs one boolean check per push.
        self._track_peak = telemetry.enabled
        self._epoch_peak = 0

    def _check_occupancy(self) -> None:
        per_bank_total = sum(len(dq) for dq in self._fifos)
        check(
            0 <= self._size <= self.capacity, "queue-occupancy",
            f"{self.name} queue size counter out of bounds",
            queue=self.name, size=self._size, capacity=self.capacity,
        )
        check(
            per_bank_total == self._size, "queue-occupancy",
            f"{self.name} queue per-bank FIFOs disagree with the aggregate "
            "size counter",
            queue=self.name, size=self._size, per_bank_total=per_bank_total,
        )

    def _integrate(self) -> None:
        if self._clock is None:
            return
        now = self._clock()
        self._occupancy_integral += self._size * (now - self._last_change_ns)
        self._last_change_ns = now

    def average_depth(self, window_ns: float) -> float:
        """Time-weighted mean occupancy over ``window_ns``."""
        if window_ns <= 0:
            return 0.0
        self._integrate()
        return self._occupancy_integral / window_ns

    def reset_depth_statistics(self) -> None:
        if self._clock is not None:
            self._last_change_ns = self._clock()
        self._occupancy_integral = 0.0

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size >= self.capacity

    @property
    def empty(self) -> bool:
        return self._size == 0

    def _grow_to(self, bank: int) -> Deque[Request]:
        """Ensure the per-bank list covers ``bank``; returns its FIFO."""
        fifos = self._fifos
        while len(fifos) <= bank:
            fifos.append(deque())
        return fifos[bank]

    def push(self, request: Request) -> None:
        """Append a request; raises if the queue is full."""
        if self.full:
            raise OverflowError(f"{self.name} queue overflow")
        self._integrate()
        self._grow_to(request.bank).append(request)
        self._size += 1
        if self._track_peak and self._size > self._epoch_peak:
            self._epoch_peak = self._size
        if self._sanitize:
            self._check_occupancy()

    def push_front(self, request: Request) -> None:
        """Return a cancelled request to the head of its bank's FIFO."""
        if self.full:
            raise OverflowError(f"{self.name} queue overflow")
        self._integrate()
        self._grow_to(request.bank).appendleft(request)
        self._size += 1
        if self._track_peak and self._size > self._epoch_peak:
            self._epoch_peak = self._size
        if self._sanitize:
            self._check_occupancy()

    def push_fast(self, request: Request, now: float) -> None:   # simlint: hotpath
        """Hot-path :meth:`push` twin: preallocated banks, caller's clock.

        The caller has already rejected the full-queue case, constructed
        the queue with ``num_banks`` (so no growth check is needed) and
        runs with the sanitizer disarmed; ``now`` is passed in so the
        occupancy integration skips the clock-closure call.
        """
        if self._clock is not None:
            self._occupancy_integral += self._size * (now - self._last_change_ns)
            self._last_change_ns = now
        self._fifos[request.bank].append(request)
        self._size += 1
        if self._track_peak and self._size > self._epoch_peak:
            self._epoch_peak = self._size

    def peek_bank(self, bank: int) -> Optional[Request]:
        """Oldest request for ``bank`` without removing it."""
        fifos = self._fifos
        if bank < len(fifos) and fifos[bank]:
            return fifos[bank][0]
        return None

    def pop_bank_row_first(self, bank: int, open_row: Optional[int]) -> Request:
        """Remove the oldest row-hit request for ``bank``, else the oldest.

        This is the FR-FCFS (first-ready, first-come-first-served)
        selection rule: requests to the currently open row bypass older
        row-miss requests, trading fairness for row-buffer locality.
        """
        fifos = self._fifos
        per_bank = fifos[bank] if bank < len(fifos) else None
        if not per_bank:
            raise LookupError(f"no {self.name} request for bank {bank}")
        self._integrate()
        if open_row is not None:
            for index, request in enumerate(per_bank):
                if request.row == open_row:
                    del per_bank[index]
                    self._size -= 1
                    if self._sanitize:
                        self._check_occupancy()
                    return request
        self._size -= 1
        popped = per_bank.popleft()
        if self._sanitize:
            self._check_occupancy()
        return popped

    def pop_bank(self, bank: int) -> Request:
        """Remove and return the oldest request for ``bank``."""
        fifos = self._fifos
        per_bank = fifos[bank] if bank < len(fifos) else None
        if not per_bank:
            raise LookupError(f"no {self.name} request for bank {bank}")
        self._integrate()
        self._size -= 1
        popped = per_bank.popleft()
        if self._sanitize:
            self._check_occupancy()
        return popped

    def try_pop_bank(self, bank: int) -> Optional[Request]:
        """:meth:`pop_bank`, but None for an empty bank FIFO.

        The controller's per-bank issue loop runs this on every issue
        opportunity; folding the emptiness test into the pop halves the
        index lookups of the ``count_bank``-then-``pop_bank`` idiom.
        """
        fifos = self._fifos
        per_bank = fifos[bank] if bank < len(fifos) else None
        if not per_bank:
            return None
        self._integrate()
        self._size -= 1
        popped = per_bank.popleft()
        if self._sanitize:
            self._check_occupancy()
        return popped

    def pop_bank_fast(self, bank: int, now: float) -> Optional[Request]:   # simlint: hotpath
        """Hot-path :meth:`try_pop_bank` twin (see :meth:`push_fast`)."""
        fifo = self._fifos[bank]
        if not fifo:
            return None
        if self._clock is not None:
            self._occupancy_integral += self._size * (now - self._last_change_ns)
            self._last_change_ns = now
        self._size -= 1
        return fifo.popleft()

    def epoch_peak_depth(self) -> int:
        """Peak occupancy since the last call (telemetry epoch probe).

        Restarts the watermark from the *current* occupancy, so a queue
        that stays full across an epoch boundary still reports full.
        """
        peak = self._epoch_peak
        self._epoch_peak = self._size
        return peak

    def count_bank(self, bank: int) -> int:
        """Number of queued requests targeting ``bank``."""
        fifos = self._fifos
        return len(fifos[bank]) if bank < len(fifos) else 0

    def banks_with_requests(self) -> List[int]:
        """Banks that currently have at least one queued request."""
        return [bank for bank, dq in enumerate(self._fifos) if dq]
