"""Memory-controller request queues (Table II).

Three queues with strictly decreasing priority:

* ReadQueue   - 32 entries, highest priority;
* WriteQueue  - 32 entries, middle priority, drain thresholds 16 (low) /
  32 (high);
* EagerMellowQueue - 16 entries, lowest priority, never triggers drains and
  only ever issues slow writes.

Each queue keeps a per-bank FIFO index so the controller can ask, per idle
bank, for the oldest request targeting it, and for bank occupancy counts
(the Bank-Aware decision needs "how many writes are queued for this bank?").
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.lint.sanitize import check, resolve
from repro.telemetry import NULL_TELEMETRY, Telemetry

READ = "read"
WRITE = "write"
EAGER = "eager"

_request_ids = itertools.count()


@dataclass(slots=True)
class Request:
    """One memory request as seen by the controller.

    Attributes:
        kind: READ, WRITE or EAGER.
        block: global cacheline block index.
        bank / rank / row: decoded location.
        arrival_ns: when the request entered the controller.
        callback: invoked with the completion time (reads and writes alike).
        attempts: times the request has been issued to a bank (cancellations
            re-issue, so attempts can exceed 1).
        retries: write-verify retries consumed (fault injection); each
            retry re-issues the write on the slow path from scratch.
        speed_factor: write slowdown chosen at issue time (1.0 = normal
            speed; meaningless for reads).  The derived :attr:`slow`
            property reports whether that puts the write below normal speed.
        progress_ns: completed programming-pulse time carried across
            attempts (write pausing).
        req_id: monotonically increasing id, for debugging and stable repr.
    """

    kind: str
    block: int
    bank: int
    rank: int
    row: int
    arrival_ns: float
    callback: Optional[Callable[[float], None]] = None
    attempts: int = 0
    retries: int = 0
    speed_factor: float = 1.0
    progress_ns: float = 0.0
    req_id: int = field(default_factory=lambda: next(_request_ids))

    @property
    def is_write(self) -> bool:
        return self.kind != READ

    @property
    def slow(self) -> bool:
        """Whether the write was issued below normal speed."""
        return self.speed_factor > 1.0


class RequestQueue:
    """Bounded FIFO with a per-bank view.

    When constructed with a ``clock`` callable (returning the current
    simulation time), the queue integrates its occupancy over time so the
    controller can report time-weighted average queue depth.

    With the sanitizer armed (``sanitize=True``, or ``REPRO_SANITIZE=1``
    when the argument is left at ``None``), every mutation re-verifies that
    the aggregate occupancy counter stays within ``[0, capacity]`` and
    equals the sum of the per-bank FIFO lengths - the queue-occupancy
    conservation invariant.
    """

    def __init__(self, capacity: int, name: str,
                 clock: Optional[Callable[[], float]] = None,
                 sanitize: Optional[bool] = None,
                 telemetry: Telemetry = NULL_TELEMETRY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._per_bank: Dict[int, Deque[Request]] = {}
        self._size = 0
        self._clock = clock
        self._occupancy_integral = 0.0
        self._last_change_ns = 0.0
        self._sanitize = resolve(sanitize)
        # Telemetry keeps a per-epoch high-water mark; the disabled path
        # costs one boolean check per push.
        self._track_peak = telemetry.enabled
        self._epoch_peak = 0

    def _check_occupancy(self) -> None:
        per_bank_total = sum(len(dq) for dq in self._per_bank.values())
        check(
            0 <= self._size <= self.capacity, "queue-occupancy",
            f"{self.name} queue size counter out of bounds",
            queue=self.name, size=self._size, capacity=self.capacity,
        )
        check(
            per_bank_total == self._size, "queue-occupancy",
            f"{self.name} queue per-bank FIFOs disagree with the aggregate "
            "size counter",
            queue=self.name, size=self._size, per_bank_total=per_bank_total,
        )

    def _integrate(self) -> None:
        if self._clock is None:
            return
        now = self._clock()
        self._occupancy_integral += self._size * (now - self._last_change_ns)
        self._last_change_ns = now

    def average_depth(self, window_ns: float) -> float:
        """Time-weighted mean occupancy over ``window_ns``."""
        if window_ns <= 0:
            return 0.0
        self._integrate()
        return self._occupancy_integral / window_ns

    def reset_depth_statistics(self) -> None:
        if self._clock is not None:
            self._last_change_ns = self._clock()
        self._occupancy_integral = 0.0

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size >= self.capacity

    @property
    def empty(self) -> bool:
        return self._size == 0

    def push(self, request: Request) -> None:
        """Append a request; raises if the queue is full."""
        if self.full:
            raise OverflowError(f"{self.name} queue overflow")
        self._integrate()
        self._per_bank.setdefault(request.bank, deque()).append(request)
        self._size += 1
        if self._track_peak and self._size > self._epoch_peak:
            self._epoch_peak = self._size
        if self._sanitize:
            self._check_occupancy()

    def push_front(self, request: Request) -> None:
        """Return a cancelled request to the head of its bank's FIFO."""
        if self.full:
            raise OverflowError(f"{self.name} queue overflow")
        self._integrate()
        self._per_bank.setdefault(request.bank, deque()).appendleft(request)
        self._size += 1
        if self._track_peak and self._size > self._epoch_peak:
            self._epoch_peak = self._size
        if self._sanitize:
            self._check_occupancy()

    def peek_bank(self, bank: int) -> Optional[Request]:
        """Oldest request for ``bank`` without removing it."""
        per_bank = self._per_bank.get(bank)
        if per_bank:
            return per_bank[0]
        return None

    def pop_bank_row_first(self, bank: int, open_row: Optional[int]) -> Request:
        """Remove the oldest row-hit request for ``bank``, else the oldest.

        This is the FR-FCFS (first-ready, first-come-first-served)
        selection rule: requests to the currently open row bypass older
        row-miss requests, trading fairness for row-buffer locality.
        """
        per_bank = self._per_bank.get(bank)
        if not per_bank:
            raise LookupError(f"no {self.name} request for bank {bank}")
        self._integrate()
        if open_row is not None:
            for index, request in enumerate(per_bank):
                if request.row == open_row:
                    del per_bank[index]
                    self._size -= 1
                    if self._sanitize:
                        self._check_occupancy()
                    return request
        self._size -= 1
        popped = per_bank.popleft()
        if self._sanitize:
            self._check_occupancy()
        return popped

    def pop_bank(self, bank: int) -> Request:
        """Remove and return the oldest request for ``bank``."""
        per_bank = self._per_bank.get(bank)
        if not per_bank:
            raise LookupError(f"no {self.name} request for bank {bank}")
        self._integrate()
        self._size -= 1
        popped = per_bank.popleft()
        if self._sanitize:
            self._check_occupancy()
        return popped

    def try_pop_bank(self, bank: int) -> Optional[Request]:
        """:meth:`pop_bank`, but None for an empty bank FIFO.

        The controller's per-bank issue loop runs this on every issue
        opportunity; folding the emptiness test into the pop halves the
        dictionary lookups of the ``count_bank``-then-``pop_bank`` idiom.
        """
        per_bank = self._per_bank.get(bank)
        if not per_bank:
            return None
        self._integrate()
        self._size -= 1
        popped = per_bank.popleft()
        if self._sanitize:
            self._check_occupancy()
        return popped

    def epoch_peak_depth(self) -> int:
        """Peak occupancy since the last call (telemetry epoch probe).

        Restarts the watermark from the *current* occupancy, so a queue
        that stays full across an epoch boundary still reports full.
        """
        peak = self._epoch_peak
        self._epoch_peak = self._size
        return peak

    def count_bank(self, bank: int) -> int:
        """Number of queued requests targeting ``bank``."""
        per_bank = self._per_bank.get(bank)
        return len(per_bank) if per_bank else 0

    def banks_with_requests(self) -> List[int]:
        """Banks that currently have at least one queued request."""
        return [bank for bank, dq in self._per_bank.items() if dq]
