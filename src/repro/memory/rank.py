"""Rank-level tFAW activation limiter.

At most ``t_faw_activates`` row activations may start within any sliding
``t_faw_ns`` window per rank.  ``earliest_activate`` answers when the next
activation may begin; ``record_activate`` logs one.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro import params


class RankFawLimiter:
    def __init__(
        self,
        t_faw_ns: float = params.T_FAW_NS,
        max_activates: int = params.T_FAW_ACTIVATES,
    ) -> None:
        if max_activates < 1:
            raise ValueError("max_activates must be >= 1")
        if t_faw_ns <= 0:
            raise ValueError("t_faw_ns must be positive")
        self.t_faw_ns = t_faw_ns
        self.max_activates = max_activates
        self._recent: Deque[float] = deque()

    def _prune(self, now: float) -> None:
        while self._recent and self._recent[0] <= now - self.t_faw_ns:
            self._recent.popleft()

    def earliest_activate(self, now: float) -> float:
        """Earliest time >= now at which a new activation may start."""
        self._prune(now)
        if len(self._recent) < self.max_activates:
            return now
        # The oldest tracked activation leaves the window at +t_faw.
        return self._recent[0] + self.t_faw_ns

    def record_activate(self, time_ns: float) -> None:
        self._prune(time_ns)
        if len(self._recent) >= self.max_activates:
            raise RuntimeError("tFAW violated: too many activates in window")
        self._recent.append(time_ns)
