"""Memory timing parameters (Table II) and the slow-write latency ladder."""

from __future__ import annotations

from dataclasses import dataclass

from repro import params


@dataclass(frozen=True)
class MemoryTiming:
    """All Table II timing constants, in nanoseconds.

    Writes are write-through (they bypass the row buffer), so a write costs
    the data burst plus the programming pulse t_WP, which is scaled by the
    slow factor.  Reads cost an activation (t_RCD) on a row-buffer miss plus
    t_CAS and the data burst.
    """

    t_rcd_ns: float = params.T_RCD_NS
    t_cas_ns: float = params.T_CAS_NS
    t_wp_normal_ns: float = params.T_WP_NORMAL_NS
    t_faw_ns: float = params.T_FAW_NS
    t_faw_activates: int = params.T_FAW_ACTIVATES
    burst_ns: float = params.BURST_NS
    slow_factor: float = params.SLOW_FACTOR_DEFAULT
    cancel_penalty_ns: float = params.MEM_CLK_NS

    def write_pulse_ns(self, slow: bool) -> float:
        """Programming-pulse width for a normal or slow write."""
        if slow:
            return self.t_wp_normal_ns * self.slow_factor
        return self.t_wp_normal_ns

    def write_pulse_ns_for(self, factor: float) -> float:
        """Programming-pulse width for an arbitrary slowdown factor
        (multi-latency Mellow Writes, the paper's Section VI-I extension)."""
        if factor < 1.0:
            raise ValueError("slowdown factor must be >= 1.0")
        return self.t_wp_normal_ns * factor

    def write_factor(self, slow: bool) -> float:
        """Slowdown factor of the chosen write speed (1.0 or slow_factor)."""
        return self.slow_factor if slow else 1.0

    def read_service_ns(self, row_hit: bool) -> float:
        """Bank-occupancy time of a read (excluding bus contention)."""
        latency = self.t_cas_ns + self.burst_ns
        if not row_hit:
            latency += self.t_rcd_ns
        return latency

    def write_service_ns(self, slow: bool) -> float:
        """Bank-occupancy time of a write (data burst + programming pulse)."""
        return self.burst_ns + self.write_pulse_ns(slow)

    @staticmethod
    def with_slow_factor(factor: float) -> "MemoryTiming":
        if factor < 1.0:
            raise ValueError("slow factor must be >= 1.0")
        return MemoryTiming(slow_factor=factor)
