"""Bank state machine: row buffer, busy tracking, in-flight operation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.queues import Request


@dataclass(slots=True)
class InFlight:
    """The operation a bank is currently executing.

    Attributes:
        request: the queued request being serviced.
        start_ns: simulated time the bank became busy with it.
        finish_ns: simulated time the bank frees up.
        pulse_start_ns: when cell stress begins (after the data burst);
            cancellation before this point wears nothing.
        cancellable: whether an arriving read may abort this operation.
        resumed_progress_ns: pulse time already completed in prior
            attempts (write pausing, the +WP policies).
    """

    request: Request
    start_ns: float
    finish_ns: float
    pulse_start_ns: float
    cancellable: bool
    resumed_progress_ns: float = 0.0


class Bank:
    """One memory bank with an open-page 1 KB row buffer.

    Writes are write-through: they never load the row buffer, and a write to
    the currently open row leaves the buffer open (the device updates it in
    place).  Reads open rows.

    The three scheduling-hot fields (``busy_until``, ``open_row``,
    ``in_flight``) have flat-array mirrors in the controller's fast path
    (one list per field, indexed by bank id), so its issue scan reads
    primitives instead of walking Bank objects.  The cold counters
    (``busy_time_ns``, ``ops_begun``, ``ops_cancelled``, ``lines_retired``)
    stay authoritative *here* in both modes - telemetry probes read them
    live - and :meth:`apply_hot_state` writes the mirrors back at the fast
    path's sync points (end of warmup, end of run).
    """

    __slots__ = ("index", "open_row", "busy_until", "in_flight",
                 "busy_time_ns", "ops_begun", "ops_cancelled",
                 "lines_retired")

    def __init__(self, index: int) -> None:
        self.index = index
        self.open_row: Optional[int] = None
        self.busy_until: float = 0.0
        self.in_flight: Optional[InFlight] = None
        self.busy_time_ns: float = 0.0   # accumulated for utilization stats
        # Lifetime operation tallies; exported per-bank by telemetry probes
        # and cheap enough (one integer add) to keep unconditionally.
        self.ops_begun = 0
        self.ops_cancelled = 0
        # Lines this bank has retired into its spare region (fault
        # injection); stays 0 when the subsystem is disabled.
        self.lines_retired = 0

    def is_idle(self, now: float) -> bool:
        return now >= self.busy_until

    def row_hit(self, row: int) -> bool:
        return self.open_row == row

    def begin(self, op: InFlight) -> None:
        """Start an operation; the bank is busy until ``op.finish_ns``."""
        if op.finish_ns < op.start_ns:
            raise ValueError("operation finishes before it starts")
        self.in_flight = op
        self.busy_until = op.finish_ns
        self.busy_time_ns += op.finish_ns - op.start_ns
        self.ops_begun += 1

    def complete(self) -> None:
        """Mark the in-flight operation finished."""
        self.in_flight = None

    def cancel(self, now: float) -> InFlight:
        """Abort the in-flight operation at ``now``; returns it.

        The busy-time accumulator is trimmed back to the actual time spent.
        """
        op = self.in_flight
        if op is None:
            raise RuntimeError(f"bank {self.index} has nothing to cancel")
        self.busy_time_ns -= max(0.0, op.finish_ns - now)
        self.busy_until = now
        self.in_flight = None
        self.ops_cancelled += 1
        return op

    def open_row_for(self, row: int) -> None:
        self.open_row = row

    def apply_hot_state(self, busy_until: float, open_row: Optional[int],
                        in_flight: Optional[InFlight]) -> None:
        """Adopt the controller fast path's flat-array state for this bank.

        Called at sync points only (never per event), so any code that
        inspects Bank objects after a fast run - RunResult collection,
        warmup reset, tests - sees exactly what a reference run would.
        """
        self.busy_until = busy_until
        self.open_row = open_row
        self.in_flight = in_flight
