"""NVMain-equivalent memory substrate: controller, banks, queues,
timing (Table II), plus the DRAM write-buffer baseline."""
