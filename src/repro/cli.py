"""Command-line interface for the Mellow Writes simulator.

Examples::

    python -m repro run --workload lbm --policy BE-Mellow+SC+WQ
    python -m repro sweep --workloads lbm,stream --policies Norm,Slow+SC
    python -m repro figure fig11
    python -m repro ablation abl_flip_n_write
    python -m repro list
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro import params
from repro.analysis.report import Table, render
from repro.core.policies import PAPER_POLICY_NAMES, parse_policy
from repro.experiments.ablations import ALL_ABLATIONS
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.runner import Runner
from repro.lint.cli import (add_check_arguments, add_lint_arguments,
                            cmd_check, cmd_lint)
from repro.sim.config import SimConfig
from repro.workloads.profiles import PROFILES, WORKLOAD_NAMES


class CLIError(Exception):
    """A user-input problem worth one clear line on stderr, not a traceback.

    Raised by command handlers for bad workload/policy names and similar;
    ``main`` catches it, prints the message, and exits 1.
    """


def _validate_workload(name: str) -> str:
    from repro.workloads.mix import MIXES
    if name not in PROFILES and name not in MIXES:
        known = ", ".join(list(WORKLOAD_NAMES) + sorted(MIXES))
        raise CLIError(f"unknown workload {name!r} (known: {known})")
    return name


def _validate_policy(name: str) -> str:
    try:
        parse_policy(name)
    except ValueError as error:
        raise CLIError(str(error)) from None
    return name


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    # Workload names are validated in _config_from_args (not argparse
    # choices) so mixes work and typos get one clear line, exit code 1.
    parser.add_argument("--workload", required=True,
                        help="workload or mix name (see 'repro list')")
    parser.add_argument("--policy", default="Norm",
                        help="Table III policy name, e.g. BE-Mellow+SC+WQ")
    parser.add_argument("--slow-factor", type=float,
                        default=params.SLOW_FACTOR_DEFAULT)
    parser.add_argument("--banks", type=int, default=params.DEFAULT_BANKS)
    parser.add_argument("--ranks", type=int, default=params.DEFAULT_RANKS)
    parser.add_argument("--expo-factor", type=float,
                        default=params.EXPO_FACTOR_DEFAULT)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--measure", type=int, default=None,
                        help="measured LLC accesses (default from SimConfig)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="scale factor on the simulation windows")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        help="pause and snapshot every N processed LLC "
                             "accesses (resume with 'repro resume')")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="directory for snapshot files (only written "
                             "when the run actually simulates, i.e. on "
                             "cache misses)")


def _config_from_args(args: argparse.Namespace, workload: str,
                      policy: str) -> SimConfig:
    kwargs = dict(
        workload=_validate_workload(workload),
        policy=_validate_policy(policy),
        slow_factor=args.slow_factor,
        num_banks=args.banks,
        num_ranks=args.ranks,
        expo_factor=args.expo_factor,
        seed=args.seed,
    )
    if args.measure is not None:
        kwargs["measure_accesses"] = args.measure
    if getattr(args, "checkpoint_every", None) is not None:
        if args.checkpoint_every < 1:
            raise CLIError(f"--checkpoint-every must be >= 1, "
                           f"got {args.checkpoint_every}")
        kwargs["checkpoint_every"] = args.checkpoint_every
    if getattr(args, "checkpoint_dir", None) is not None:
        kwargs["checkpoint_dir"] = args.checkpoint_dir
    config = SimConfig(**kwargs)
    if args.scale != 1.0:
        config = config.scaled(args.scale)
    return config


def _result_table(results) -> Table:
    table = Table(
        title="Simulation results",
        columns=["workload", "policy", "ipc", "lifetime_years",
                 "utilization", "drain", "slow_writes", "eager",
                 "cancels", "energy_uJ"],
    )
    for result in results:
        table.add_row(
            result.workload, result.policy, result.ipc,
            min(result.lifetime_years, 1e4), result.bank_utilization,
            result.drain_fraction, result.writes_issued_slow,
            result.eager_writebacks, result.cancellations,
            result.total_energy_pj / 1e6,
        )
    return table


def cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args, args.workload, args.policy)
    runner = Runner()
    bundle: Optional[Path] = None
    if args.telemetry:
        result, bundle = runner.run_traced(config)
    else:
        result = runner.run(config)
    print(render(_result_table([result])))
    if bundle is not None:
        print(f"telemetry bundle: {bundle}")
    if args.output:
        from repro.analysis.export import write_run_result
        path = write_run_result(result, args.output, telemetry=bundle)
        print(f"wrote {path}")
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    """Resume a checkpointed run from a snapshot file.

    The snapshot embeds its full config, so the file is the only required
    input; ``--checkpoint-every`` / ``--checkpoint-dir`` override the
    slicing knobs for the rest of the run (they are not part of the
    simulation's identity).  The completed result is bit-identical to
    the run that would have produced it straight through.
    """
    from dataclasses import replace

    from repro.checkpoint import (CheckpointCorruptionError, CheckpointError,
                                  load_snapshot, restore_state)
    from repro.sim.system import System

    path = Path(args.snapshot)
    try:
        config, state = load_snapshot(path)
    except FileNotFoundError:
        raise CLIError(f"snapshot not found: {path}") from None
    except CheckpointCorruptionError as error:
        raise CLIError(str(error)) from None
    if args.checkpoint_every is not None:
        if args.checkpoint_every < 1:
            raise CLIError(f"--checkpoint-every must be >= 1, "
                           f"got {args.checkpoint_every}")
        config = replace(config, checkpoint_every=args.checkpoint_every)
    if args.checkpoint_dir is not None:
        config = replace(config, checkpoint_dir=args.checkpoint_dir)
    system = System(config)
    try:
        restore_state(system, state)
    except CheckpointError as error:
        raise CLIError(str(error)) from None
    system.rearm_after_restore()
    result = system.finish_run()
    print(render(_result_table([result])))
    if args.output:
        from repro.analysis.export import write_run_result
        out = write_run_result(result, args.output)
        print(f"wrote {out}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one config with telemetry and surface its event trace."""
    config = _config_from_args(args, args.workload, args.policy)
    result, bundle = Runner().run_traced(config)
    manifest = json.loads((bundle / "manifest.json").read_text())
    trace_info = manifest["trace"]
    chrome_src = bundle / "trace.chrome.json"
    if args.output:
        shutil.copyfile(chrome_src, args.output)
        chrome_dst = Path(args.output)
    else:
        chrome_dst = chrome_src
    print(render(_result_table([result])))
    print(
        f"trace: {trace_info['retained']} events retained "
        f"({trace_info['recorded']} recorded, {trace_info['dropped']} "
        f"dropped; ring capacity {trace_info['capacity']}), "
        f"{manifest['num_epochs']} epochs sampled"
    )
    print(f"chrome trace: {chrome_dst}  (open at https://ui.perfetto.dev)")
    print(f"raw events:   {bundle / 'trace.jsonl'}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run one config with telemetry and summarise its metric series."""
    config = _config_from_args(args, args.workload, args.policy)
    _result, bundle = Runner().run_traced(config)
    metrics = json.loads((bundle / "metrics.json").read_text())
    series = metrics["series"]
    table = Table(
        title=f"Telemetry metrics: {args.workload}/{args.policy} "
              f"({len(metrics['sample_times_ns'])} epochs)",
        columns=["series", "samples", "first", "last"],
    )
    shown = 0
    for name in sorted(series):
        if args.match and args.match not in name:
            continue
        column = series[name]
        defined = [v for v in column if v is not None]
        table.add_row(
            name, len(column),
            defined[0] if defined else "-",
            defined[-1] if defined else "-",
        )
        shown += 1
    print(render(table))
    if not shown and args.match:
        print(f"no series matching {args.match!r} "
              f"({len(series)} series total)", file=sys.stderr)
        return 1
    if args.output:
        shutil.copyfile(bundle / "metrics.json", args.output)
        print(f"wrote {args.output}")
    return 0


def _print_progress(event) -> None:
    source = "cache" if event.from_cache else "sim"
    print(
        f"[{event.completed}/{event.total}] "
        f"{event.config.workload}/{event.config.policy_name} ({source})",
        file=sys.stderr,
    )


def _profile_caller_groups(
        stats: Any) -> List[Tuple[str, float, float, int]]:
    """Aggregate cProfile rows into per-module groups.

    Buckets every profiled function by the ``repro`` submodule its file
    lives in (``sim``, ``memory``, ``telemetry``, ...; top-level modules
    like ``hotpath.py`` fall into ``repro``; everything outside the
    package - stdlib, builtins - into ``<other>``).  Must run on the raw
    stats, *before* ``strip_dirs()`` discards the paths the grouping
    keys on.  Returns ``(group, tottime, cumtime, ncalls)`` tuples sorted
    by own-time, which is the honest attribution: cumtime double-counts
    the whole call chain, so module cumtimes do not sum to wall clock.
    """
    sep = os.sep
    marker = f"{sep}repro{sep}"
    groups: Dict[str, Tuple[float, float, int]] = {}
    for (filename, _lineno, _name), (_cc, nc, tt, ct, _callers) in \
            stats.stats.items():
        where = filename.rfind(marker)
        if where < 0:
            group = "<other>"
        else:
            rest = filename[where + len(marker):]
            group = (f"repro.{rest.split(sep, 1)[0]}" if sep in rest
                     else "repro")
        own, cum, calls = groups.get(group, (0.0, 0.0, 0))
        groups[group] = (own + tt, cum + ct, calls + nc)
    return sorted(
        ((group, own, cum, calls)
         for group, (own, cum, calls) in groups.items()),
        key=lambda row: row[1], reverse=True,
    )


def cmd_profile(args: argparse.Namespace) -> int:
    """Run one config under cProfile and print the hottest call sites.

    Bypasses the result cache (profiling a cache hit tells you nothing)
    and, with ``--no-fastpath``, profiles the readable reference path
    instead - the two profiles side by side show where the hot-path
    layer spends its wins.  ``--top-callers`` collapses the per-function
    rows into per-module own-time totals, the 30-second answer to "is
    this run core-bound or controller-bound?".  Note cProfile's tracing
    overhead inflates wall clock severalfold; compare *shapes*, not
    absolute times (use ``benchmarks/check_hotpath_speedup.py`` for
    honest timings).
    """
    import cProfile
    import pstats

    from repro.hotpath import FASTPATH_ENV
    from repro.sim.system import run_simulation

    config = _config_from_args(args, args.workload, args.policy)
    if args.no_fastpath:
        os.environ[FASTPATH_ENV] = "1"
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_simulation(config)
    profiler.disable()
    print(render(_result_table([result])))
    mode = "reference path" if args.no_fastpath else "hot path"
    stats = pstats.Stats(profiler, stream=sys.stdout)
    if args.top_callers:
        # Group while the stats still carry full paths; strip_dirs()
        # below would collapse every file to its basename first.
        rows = _profile_caller_groups(stats)
        total_own = sum(own for _g, own, _c, _n in rows) or 1.0
        print(f"\ncProfile ({mode}), own time by module:")
        print(f"{'module':<18s} {'tottime':>9s} {'share':>6s} "
              f"{'cumtime':>9s} {'calls':>10s}")
        for group, own, cum, calls in rows:
            print(f"{group:<18s} {own:9.3f} {own / total_own:6.1%} "
                  f"{cum:9.3f} {calls:10d}")
    print(f"\ncProfile ({mode}), top {args.limit} by {args.sort}:")
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    if args.output:
        stats.dump_stats(args.output)
        print(f"wrote {args.output} (open with python -m pstats)")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    workloads = (args.workloads.split(",") if args.workloads
                 else list(WORKLOAD_NAMES))
    policies = (args.policies.split(",") if args.policies
                else list(PAPER_POLICY_NAMES))
    for name in policies:
        _validate_policy(name)   # fail fast on typos
    for workload in workloads:
        _validate_workload(workload)
    configs = [
        _config_from_args(args, workload, policy)
        for workload in workloads for policy in policies
    ]
    progress = None if args.quiet else _print_progress
    results = Runner().sweep(configs, jobs=args.jobs, progress=progress)
    print(render(_result_table(results)))
    return 0


def _cache_target(args: argparse.Namespace):
    """The store the maintenance verbs operate on.

    ``--cache-url`` wins over ``--cache-dir``; with neither, environment
    resolution applies (``REPRO_CACHE_URL`` then ``REPRO_CACHE_DIR``).
    ``REPRO_NO_CACHE`` is ignored on purpose - inspecting or clearing an
    on-disk cache must work even where caching is disabled for runs.
    """
    from repro.store import StoreURLError, resolve_store
    try:
        return resolve_store(cache_dir=args.cache_dir, url=args.cache_url,
                             respect_no_cache=False)
    except StoreURLError as error:
        raise CLIError(str(error)) from None


def cmd_cache(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.store import (
        StoreURLError,
        cache_clear,
        cache_stats,
        cache_verify,
        store_from_url,
        sync_stores,
    )

    if args.action == "sync":
        if not args.src or not args.dst:
            raise CLIError(
                "cache sync needs source and destination store URLs: "
                "repro cache sync <src-url> <dst-url>")
        try:
            src = store_from_url(args.src)
            dst = store_from_url(args.dst)
        except StoreURLError as error:
            raise CLIError(str(error)) from None
        try:
            report = sync_stores(src, dst)
        finally:
            src.close()
            dst.close()
        if args.json:
            print(json_module.dumps(report.as_dict(), indent=2))
        else:
            print(f"synced {src.description} -> {dst.description}: "
                  f"{report.entries_copied} entries and "
                  f"{report.bundles_copied} bundles copied "
                  f"({report.bytes_copied} bytes), "
                  f"{report.entries_skipped + report.bundles_skipped} "
                  "already present")
        return 0

    if args.src is not None or args.dst is not None:
        raise CLIError(f"cache {args.action} takes no positional arguments")
    store = _cache_target(args)
    try:
        if args.action == "stats":
            stats = cache_stats(store)
            if args.json:
                print(json_module.dumps(stats, indent=2, sort_keys=True))
                return 0
            table = Table(title=f"Result cache: {stats['cache_dir']}",
                          columns=["stat", "value"])
            table.add_row("backend", stats["backend"])
            table.add_row("entries", stats["entries"])
            table.add_row("total_bytes", stats["total_bytes"])
            table.add_row("valid", stats["valid"])
            table.add_row("invalid", stats["invalid"])
            table.add_row("telemetry_bundles", stats["telemetry_bundles"])
            for schema, count in sorted(stats["schema_versions"].items()):
                table.add_row(f"schema {schema}", count)
            print(render(table))
            return 0
        if args.action == "verify":
            report = cache_verify(store)
            print(f"{report['ok']} entries ok in {report['cache_dir']}")
            for bad in report["bad"]:
                print(f"BAD {bad['path']}: {bad['error']}", file=sys.stderr)
            return 1 if report["bad"] else 0
        if args.action == "clear":
            removed = cache_clear(store)
            print(f"removed {removed} objects from {store.description}")
            return 0
    finally:
        store.close()
    print(f"unknown cache action {args.action!r}", file=sys.stderr)
    return 2


def _emit_table(table, output: Optional[str]) -> None:
    print(render(table))
    if output:
        from repro.analysis.export import write_table
        path = write_table(table, output)
        print(f"\nwrote {path}")


def cmd_figure(args: argparse.Namespace) -> int:
    if args.name == "all":
        for name, regenerate in ALL_FIGURES.items():
            print(f"[{name}]")
            _emit_table(regenerate(), None)
            print()
        return 0
    try:
        regenerate = ALL_FIGURES[args.name]
    except KeyError:
        known = ", ".join(list(ALL_FIGURES) + ["all"])
        print(f"unknown figure {args.name!r} (known: {known})",
              file=sys.stderr)
        return 2
    _emit_table(regenerate(), args.output)
    return 0


def cmd_ablation(args: argparse.Namespace) -> int:
    try:
        regenerate = ALL_ABLATIONS[args.name]
    except KeyError:
        known = ", ".join(ALL_ABLATIONS)
        print(f"unknown ablation {args.name!r} (known: {known})",
              file=sys.stderr)
        return 2
    _emit_table(regenerate(), args.output)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.compare import compare_configs
    try:
        parse_policy(args.policy)
        parse_policy(args.against)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    baseline = _config_from_args(args, args.workload, args.against)
    candidate = _config_from_args(args, args.workload, args.policy)
    table = compare_configs(baseline, candidate, Runner())
    _emit_table(table, args.output)
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Monte Carlo lifetime-to-failure comparison under fault injection.

    With ``--slices > 1`` the study runs sharded: every (policy, seed)
    sample is cut into checkpointed time slices and seeds x slices
    scatter across the worker pool, which is bit-identical to the
    serial study (the sliced runs share its cache entries).  Output is
    the per-policy summary, a survival bar chart, and a Kaplan-Meier
    table with Greenwood 95% confidence bands.
    """
    from repro.analysis.charts import bar_chart
    from repro.experiments.faults import (
        DEFAULT_MC_SCALE,
        SURVIVAL_POLICIES,
        sharded_survival_study,
        survival_configs,
        survival_curve_table,
        survival_records,
        survival_summary,
    )
    if args.seeds < 1:
        raise CLIError(f"--seeds must be >= 1, got {args.seeds}")
    if args.slices < 1:
        raise CLIError(f"--slices must be >= 1, got {args.slices}")
    policies = (args.policies.split(",") if args.policies
                else list(SURVIVAL_POLICIES))
    for name in policies:
        _validate_policy(name)
    _validate_workload(args.workload)
    runner = Runner()
    scale = args.scale if args.scale is not None else DEFAULT_MC_SCALE
    progress = None if args.quiet else _print_progress
    if args.slices > 1:
        records = sharded_survival_study(
            runner=runner, workload=args.workload, policies=policies,
            seeds=args.seeds, scale=scale, slices=args.slices,
            jobs=args.jobs, checkpoint_dir=args.checkpoint_dir,
            progress=progress,
        )
        progress = None   # the summary below replays from the cache
    else:
        results = runner.sweep(
            survival_configs(args.workload, policies, args.seeds,
                             scale=scale),
            jobs=args.jobs, progress=progress,
        )
        records = survival_records(policies, args.seeds, results)
        progress = None
    table = survival_summary(
        runner=runner, workload=args.workload, policies=policies,
        seeds=args.seeds, scale=scale, jobs=args.jobs, progress=progress,
    )
    print(render(table))
    print()
    survival = {str(row[0]): float(row[2]) for row in table.rows}
    print(bar_chart(
        [(policy, survival[policy]) for policy in policies],
        unit=" ns",
    ))
    print()
    print(render(survival_curve_table(records, policies, args.workload)))
    if args.output:
        from repro.analysis.export import write_table
        path = write_table(table, args.output)
        print(f"\nwrote {path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation-as-a-service HTTP job API (see docs/serving.md).

    Blocks until SIGINT/SIGTERM, then drains the worker pool for
    ``--drain-timeout`` seconds before cancelling what remains.  Bad
    arguments and an unbindable port exit 1 via :class:`CLIError`, like
    every other verb.
    """
    import asyncio
    import errno
    import logging

    from repro.serve import ReproServer, ServeError

    logging.basicConfig(
        level=logging.INFO, stream=sys.stderr,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    if args.workers < 1:
        raise CLIError(f"--workers must be >= 1, got {args.workers}")
    if args.drain_timeout < 0:
        raise CLIError(
            f"--drain-timeout cannot be negative, got {args.drain_timeout}")
    try:
        server = ReproServer(
            host=args.host, port=args.port, workers=args.workers,
            drain_timeout=args.drain_timeout,
        )
    except ServeError as error:
        raise CLIError(str(error)) from None
    try:
        asyncio.run(server.run())
    except OSError as error:
        if error.errno == errno.EADDRINUSE:
            raise CLIError(
                f"port {args.port} on {args.host} is already in use "
                "(is another repro serve running? try --port)") from None
        raise CLIError(
            f"cannot bind {args.host}:{args.port}: "
            f"{error.strerror or error}") from None
    except KeyboardInterrupt:
        pass   # drained by server.run()'s signal handler where possible
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    workloads = Table(
        title="Workloads (Table IV)",
        columns=["name", "mpki_paper", "apki", "base_cpi"],
    )
    for profile in PROFILES.values():
        workloads.add_row(profile.name, profile.mpki_paper, profile.apki,
                          profile.base_cpi)
    print(render(workloads))
    print()
    policies = Table(title="Evaluated policies (Table III)",
                     columns=["name"])
    for name in PAPER_POLICY_NAMES:
        policies.add_row(name)
    print(render(policies))
    print()
    figures = Table(title="Reproducible figures/tables", columns=["id"])
    for name in ALL_FIGURES:
        figures.add_row(name)
    for name in ALL_ABLATIONS:
        figures.add_row(name)
    print(render(figures))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mellow Writes (ISCA 2016) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="simulate one workload under one policy",
    )
    _add_run_arguments(run_parser)
    run_parser.add_argument("--telemetry", action="store_true",
                            help="record telemetry (metrics, trace, "
                                 "heatmap) alongside the run")
    run_parser.add_argument("--output", default=None,
                            help="write the full result as JSON (includes "
                                 "telemetry when --telemetry is set)")
    run_parser.set_defaults(handler=cmd_run)

    resume_parser = subparsers.add_parser(
        "resume", help="resume a checkpointed run from a snapshot file",
    )
    resume_parser.add_argument("snapshot",
                               help="snapshot file written by a "
                                    "--checkpoint-dir run (self-contained: "
                                    "embeds its full config)")
    resume_parser.add_argument("--checkpoint-every", type=int, default=None,
                               help="override the pause interval for the "
                                    "rest of the run")
    resume_parser.add_argument("--checkpoint-dir", default=None,
                               help="override where further snapshots "
                                    "are written")
    resume_parser.add_argument("--output", default=None,
                               help="write the full result as JSON")
    resume_parser.set_defaults(handler=cmd_resume)

    trace_parser = subparsers.add_parser(
        "trace", help="run with telemetry and export a Perfetto-ready "
                      "Chrome trace",
    )
    _add_run_arguments(trace_parser)
    trace_parser.add_argument("--output", default=None,
                              help="copy the Chrome trace JSON here "
                                   "(default: leave it in the bundle dir)")
    trace_parser.set_defaults(handler=cmd_trace)

    metrics_parser = subparsers.add_parser(
        "metrics", help="run with telemetry and summarise the metric "
                        "time series",
    )
    _add_run_arguments(metrics_parser)
    metrics_parser.add_argument("--match", default=None,
                                help="only show series containing this "
                                     "substring (e.g. 'queue.' or 'bank.')")
    metrics_parser.add_argument("--output", default=None,
                                help="copy the metrics JSON here")
    metrics_parser.set_defaults(handler=cmd_metrics)

    profile_parser = subparsers.add_parser(
        "profile", help="run one config under cProfile and print the "
                        "hottest call sites",
    )
    _add_run_arguments(profile_parser)
    profile_parser.add_argument("--sort", default="cumtime",
                                choices=["cumtime", "tottime", "ncalls"],
                                help="pstats sort key (default cumtime)")
    profile_parser.add_argument("--limit", type=int, default=25,
                                help="rows of profile output (default 25)")
    profile_parser.add_argument("--no-fastpath", action="store_true",
                                help="profile the readable reference path "
                                     "(sets REPRO_NO_FASTPATH=1)")
    profile_parser.add_argument("--output", default=None,
                                help="also dump raw pstats data here")
    profile_parser.add_argument("--top-callers", action="store_true",
                                help="first print own time grouped by "
                                     "repro submodule (sim/memory/...)")
    profile_parser.set_defaults(handler=cmd_profile)

    sweep_parser = subparsers.add_parser(
        "sweep", help="simulate a workload x policy grid",
    )
    sweep_parser.add_argument("--workloads", default=None,
                              help="comma separated (default: all 11)")
    sweep_parser.add_argument("--policies", default=None,
                              help="comma separated (default: Table III set)")
    sweep_parser.add_argument("--slow-factor", type=float,
                              default=params.SLOW_FACTOR_DEFAULT)
    sweep_parser.add_argument("--banks", type=int,
                              default=params.DEFAULT_BANKS)
    sweep_parser.add_argument("--ranks", type=int,
                              default=params.DEFAULT_RANKS)
    sweep_parser.add_argument("--expo-factor", type=float,
                              default=params.EXPO_FACTOR_DEFAULT)
    sweep_parser.add_argument("--seed", type=int, default=1)
    sweep_parser.add_argument("--measure", type=int, default=None)
    sweep_parser.add_argument("--scale", type=float, default=1.0)
    sweep_parser.add_argument("--jobs", type=int, default=None,
                              help="parallel workers (default REPRO_JOBS "
                                   "or all cores)")
    sweep_parser.add_argument("--quiet", action="store_true",
                              help="suppress per-run progress on stderr")
    sweep_parser.set_defaults(handler=cmd_sweep)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect, maintain, or replicate the result cache",
    )
    cache_parser.add_argument(
        "action", choices=["stats", "verify", "clear", "sync"])
    cache_parser.add_argument(
        "src", nargs="?", default=None,
        help="sync only: source store URL (e.g. file:.repro_cache)")
    cache_parser.add_argument(
        "dst", nargs="?", default=None,
        help="sync only: destination store URL (e.g. sqlite:cache.db)")
    cache_parser.add_argument("--cache-dir", default=None,
                              help="cache location (default REPRO_CACHE_DIR "
                                   "or .repro_cache)")
    cache_parser.add_argument("--cache-url", default=None,
                              help="store URL (file:<dir>, sqlite:<db>, "
                                   "memory:, tiered:<local>|<remote>); "
                                   "wins over --cache-dir")
    cache_parser.add_argument("--json", action="store_true",
                              help="emit machine-readable JSON "
                                   "(stats and sync)")
    cache_parser.set_defaults(handler=cmd_cache)

    figure_parser = subparsers.add_parser(
        "figure", help="regenerate one paper table/figure",
    )
    figure_parser.add_argument("name", help="e.g. fig11, tab06, or 'all'")
    figure_parser.add_argument("--output", default=None,
                               help="also export to .csv or .json")
    figure_parser.set_defaults(handler=cmd_figure)

    ablation_parser = subparsers.add_parser(
        "ablation", help="run one ablation study",
    )
    ablation_parser.add_argument("name", help="e.g. abl_flip_n_write")
    ablation_parser.add_argument("--output", default=None,
                                 help="also export to .csv or .json")
    ablation_parser.set_defaults(handler=cmd_ablation)

    compare_parser = subparsers.add_parser(
        "compare", help="compare one policy against another on a workload",
    )
    _add_run_arguments(compare_parser)
    compare_parser.add_argument("--against", default="Norm",
                                help="baseline policy (default Norm)")
    compare_parser.add_argument("--output", default=None,
                                help="also export to .csv or .json")
    compare_parser.set_defaults(handler=cmd_compare)

    faults_parser = subparsers.add_parser(
        "faults", help="Monte Carlo lifetime-to-failure under fault "
                       "injection (accelerated aging)",
    )
    faults_parser.add_argument("--workload", default="zeusmp",
                               help="workload or mix name (default zeusmp)")
    faults_parser.add_argument("--policies", default=None,
                               help="comma separated (default "
                                    "Norm,BE-Mellow+SC,Slow+SC)")
    faults_parser.add_argument("--seeds", type=int, default=20,
                               help="Monte Carlo samples per policy "
                                    "(default 20)")
    faults_parser.add_argument("--scale", type=float, default=None,
                               help="window scale for each sample "
                                    "(default 0.02)")
    faults_parser.add_argument("--jobs", type=int, default=None,
                               help="parallel workers (default REPRO_JOBS "
                                    "or all cores)")
    faults_parser.add_argument("--slices", type=int, default=1,
                               help="checkpoint time slices per sample; "
                                    ">1 shards seeds x slices across the "
                                    "worker pool (default 1 = unsliced)")
    faults_parser.add_argument("--checkpoint-dir", default=None,
                               help="directory for intermediate shard "
                                    "snapshots (default: private temp dir, "
                                    "removed afterwards)")
    faults_parser.add_argument("--quiet", action="store_true",
                               help="suppress per-run progress on stderr")
    faults_parser.add_argument("--output", default=None,
                               help="also export the table to .csv or .json")
    faults_parser.set_defaults(handler=cmd_faults)

    serve_parser = subparsers.add_parser(
        "serve", help="run the async HTTP job API "
                      "(POST /jobs, GET /jobs/<id>, /healthz, /metrics)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8765,
                              help="bind port (default 8765; 0 = ephemeral)")
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="concurrent job executors (default 2)")
    serve_parser.add_argument("--drain-timeout", type=float, default=10.0,
                              help="seconds to let jobs drain on shutdown "
                                   "before cancelling (default 10)")
    serve_parser.set_defaults(handler=cmd_serve)

    list_parser = subparsers.add_parser(
        "list", help="list workloads, policies, figures",
    )
    list_parser.set_defaults(handler=cmd_list)

    lint_parser = subparsers.add_parser(
        "lint", help="simulator-aware static analysis (simlint)",
    )
    add_lint_arguments(lint_parser)
    lint_parser.set_defaults(handler=cmd_lint)

    check_parser = subparsers.add_parser(
        "check", help="umbrella static checking: simlint + ruff + mypy",
    )
    add_check_arguments(check_parser)
    check_parser.set_defaults(handler=cmd_check)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except CLIError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
