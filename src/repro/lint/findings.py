"""Finding and rule metadata shared by every simlint layer.

A :class:`Finding` is one rule violation at one source location.  Findings
are plain data: the engine produces them, the CLI formats them (text or
JSON), and the tests assert on them directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

#: Finding severities, weakest to strongest.  ``error`` findings are the
#: ones that have historically corrupted results (nondeterminism, unit
#: slips); ``warning`` findings are robustness hazards.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class RuleInfo:
    """Static description of one simlint rule."""

    rule_id: str          # "SIM001"
    name: str             # short kebab-case slug
    severity: str         # "error" or "warning"
    summary: str          # one-line description of the hazard
    hint: str             # how to fix it

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    column: int
    message: str
    hint: str
    snippet: str = ""     # the offending source line, stripped

    def format_text(self) -> str:
        location = f"{self.path}:{self.line}:{self.column}"
        text = f"{location}: {self.severity} {self.rule_id}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        if self.snippet:
            text += f"\n    {self.snippet}"
        return text


def findings_to_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report: a JSON object with findings + summary."""
    payload = {
        "findings": [
            {
                "rule": f.rule_id,
                "severity": f.severity,
                "path": f.path,
                "line": f.line,
                "column": f.column,
                "message": f.message,
                "hint": f.hint,
            }
            for f in findings
        ],
        "counts": summarize(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def summarize(findings: Sequence[Finding]) -> Dict[str, Any]:
    """Per-rule and per-severity counts for report footers."""
    by_rule: Dict[str, int] = {}
    by_severity = {name: 0 for name in SEVERITIES}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
        by_severity[finding.severity] += 1
    return {
        "total": len(findings),
        "by_rule": dict(sorted(by_rule.items())),
        "by_severity": by_severity,
    }


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.column, f.rule_id))
