"""Runtime invariant sanitizer: the dynamic half of simlint.

The static rules (:mod:`repro.lint.rules`) catch hazards visible in source
text; this module arms cheap runtime checks at the seams they cannot see.
When sanitizing is enabled - ``REPRO_SANITIZE=1`` in the environment or
``SimConfig(sanitize=True)`` - core components verify their invariants on
every mutation and raise a structured :class:`InvariantViolation` naming
the broken invariant and the simulator state around it.

Armed invariants:

* **event-time-monotonicity** (:class:`repro.sim.events.EventQueue`) -
  the simulated clock never moves backwards.
* **queue-occupancy** (:class:`repro.memory.queues.RequestQueue`) - the
  aggregate size counter stays within ``[0, capacity]`` and always equals
  the sum of the per-bank FIFO lengths.
* **wear-conservation** (:class:`repro.endurance.wear.WearTracker` +
  :class:`repro.memory.controller.MemoryController`) - every write the
  controller accounts for lands in exactly one bank record (the two
  independent tallies agree), and per-bank damage is monotone
  nondecreasing.
* **startgap-bijectivity** (:class:`repro.endurance.startgap.StartGap`) -
  the logical-to-physical remap stays injective and in range after every
  gap move.

The checks are read-only: a sanitized run either raises or produces
bit-identical results to an unsanitized run (asserted by
``tests/test_sanitizer.py``).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

#: Environment variable that arms the sanitizer globally.
ENV_VAR = "REPRO_SANITIZE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Relative tolerance for float conservation checks.  Wear tallies sum
#: thousands of float fractions in different orders on the two sides of
#: the seam, so exact equality is not meaningful.
CONSERVATION_RTOL = 1e-6


class InvariantViolation(AssertionError):
    """A runtime invariant of the simulator was broken.

    Attributes:
        invariant: short kebab-case name of the violated invariant.
        state: snapshot of the relevant simulator state at violation time.
    """

    def __init__(self, invariant: str, message: str,
                 state: Optional[Dict[str, Any]] = None) -> None:
        self.invariant = invariant
        self.state = dict(state) if state else {}
        details = ", ".join(f"{k}={v!r}" for k, v in self.state.items())
        text = f"[{invariant}] {message}"
        if details:
            text += f" ({details})"
        super().__init__(text)


def env_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` arms the sanitizer for this process."""
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


def resolve(sanitize: Optional[bool] = None) -> bool:
    """Resolve a component's ``sanitize`` constructor argument.

    ``True``/``False`` are explicit and win; ``None`` defers to the
    environment, so ``REPRO_SANITIZE=1`` arms components constructed
    without an explicit choice (standalone unit tests, ad-hoc scripts).
    """
    if sanitize is None:
        return env_enabled()
    return sanitize


def check(condition: bool, invariant: str, message: str,
          **state: Any) -> None:
    """Raise :class:`InvariantViolation` unless ``condition`` holds."""
    if not condition:
        raise InvariantViolation(invariant, message, state)


def close_enough(a: float, b: float, rtol: float = CONSERVATION_RTOL) -> bool:
    """Relative float comparison used by conservation checks."""
    return abs(a - b) <= rtol * max(1.0, abs(a), abs(b))
