"""Cross-module taint analysis and the flow-aware rules SIM011-SIM013.

:mod:`repro.lint.graph` reduces each file to a serialisable summary;
this module links those summaries into a project-wide function index,
runs a fixpoint that decides which functions *return* nondeterministic
values, and emits the three flow rules:

* **SIM011** - a nondeterminism source reaches a digest sink (either the
  sink's own return value is tainted, or a tainted argument is passed
  into a resolved sink call).  The finding message carries the full
  interprocedural witness path, source first.
* **SIM012** - cache-key completeness: every field of a ``@dataclass``
  that defines ``cache_key()``/``key()`` must be read (transitively,
  through properties and same-class helpers) by that method, or appear
  in the module's ``CACHE_KEY_EXCLUDED`` registry with a reason.  Stale
  or contradictory registry entries are findings too.
* **SIM013** - attribute mutations on classes marked
  ``# simlint: thread-shared`` must happen inside a ``with <lock>:``
  scope.  Ownership is resolved through ``self`` and through parameter
  annotations, which is what lets the rule see across the
  asyncio/ThreadPoolExecutor boundary in ``repro.serve``.

The analysis is context-insensitive with one level of argument flow:
a function returning its own parameter propagates the taint of the
call-site argument, but parameter-through-parameter chains deeper than
:data:`MAX_FLOW_DEPTH` are treated as clean (a deliberate linter
cut-off, not a soundness claim).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.graph import (
    SINK_FUNCTION_NAMES,
    SINK_METHOD_NAMES,
    Dep,
    DepSet,
    Summary,
)
from repro.lint.rules import RULES

#: One step of an interprocedural witness, ordered sink-side first.
WitnessStep = Dict[str, Any]
Witness = List[WitnessStep]

#: Recursion bound for argument-flow evaluation.
MAX_FLOW_DEPTH = 12

#: Fixpoint iteration bound (far above any real call-chain depth).
MAX_FIXPOINT_ROUNDS = 50

#: Map of file path -> source lines, used only for finding snippets.
Sources = Dict[str, Sequence[str]]


def _suffix_match(module: str, suffix: str) -> bool:
    return module == suffix or module.endswith("." + suffix)


def _display(qualname: str) -> str:
    return qualname.split(":", 1)[1]


def _is_sink(fn: Summary) -> bool:
    if fn["name"] in SINK_FUNCTION_NAMES:
        return True
    return fn["cls"] is not None and fn["name"] in SINK_METHOD_NAMES


def _snippet(sources: Sources, path: str, line: int) -> str:
    lines = sources.get(path)
    if lines is not None and 1 <= line <= len(lines):
        return str(lines[line - 1]).strip()
    return ""


def _finding(rule_id: str, path: str, line: int, message: str,
             sources: Sources, column: int = 1) -> Finding:
    info = RULES[rule_id]
    return Finding(
        rule_id=rule_id, severity=info.severity, path=path, line=line,
        column=column, message=message, hint=info.hint,
        snippet=_snippet(sources, path, line),
    )


class ProjectTaint:
    """Function index + return-taint fixpoint over module summaries."""

    def __init__(self, summaries: Sequence[Summary]) -> None:
        #: qualname -> (function summary, file path)
        self.functions: Dict[str, Tuple[Summary, str]] = {}
        self._plain: Dict[str, List[Tuple[str, str]]] = {}
        self._methods: Dict[Tuple[str, str], List[Tuple[str, str]]] = {}
        self.ret_taint: Dict[str, Optional[Witness]] = {}
        for summary in summaries:
            path = summary["path"]
            module = summary["module"]
            for qualname, fn in summary["functions"].items():
                self.functions[qualname] = (fn, path)
                if fn["cls"] is None:
                    self._plain.setdefault(fn["name"], []).append(
                        (module, qualname))
                else:
                    self._methods.setdefault(
                        (fn["cls"], fn["name"]), []).append((module, qualname))
        for index in (self._plain, self._methods):
            for entries in index.values():
                entries.sort()
        self._fixpoint()

    # -- reference resolution ------------------------------------------

    def resolve(self, ref: Optional[str]) -> Optional[str]:
        """Callee reference (``q:``/``r:``/``m:``) -> qualname or None."""
        if ref is None:
            return None
        if ref.startswith("q:"):
            qualname = ref[2:]
            return qualname if qualname in self.functions else None
        if ref.startswith("r:"):
            dotted = ref[2:]
            head, _, name = dotted.rpartition(".")
            if head:
                for module, qualname in self._plain.get(name, []):
                    if _suffix_match(module, head):
                        return qualname
                mod_head, _, cls = head.rpartition(".")
                if cls:
                    for module, qualname in self._methods.get((cls, name), []):
                        if not mod_head or _suffix_match(module, mod_head):
                            return qualname
            return None
        if ref.startswith("m:"):
            _, type_ref, method = ref.split(":", 2)
            bare = type_ref.split(".")[-1]
            prefix = type_ref.rsplit(".", 1)[0] if "." in type_ref else ""
            candidates = self._methods.get((bare, method), [])
            for module, qualname in candidates:
                if not prefix or _suffix_match(module, prefix):
                    return qualname
            return None
        return None

    # -- taint evaluation ----------------------------------------------

    def _fixpoint(self) -> None:
        qualnames = sorted(self.functions)
        for qualname in qualnames:
            self.ret_taint[qualname] = None
        for _round in range(MAX_FIXPOINT_ROUNDS):
            changed = False
            for qualname in qualnames:
                if self.ret_taint[qualname] is not None:
                    continue
                fn, path = self.functions[qualname]
                witness = self.first_taint(fn["ret"], path)
                if witness is not None:
                    self.ret_taint[qualname] = witness
                    changed = True
            if not changed:
                return

    def first_taint(self, deps: DepSet, path: str,
                    depth: int = 0) -> Optional[Witness]:
        for dep in deps:
            witness = self.dep_taint(dep, path, depth)
            if witness is not None:
                return witness
        return None

    def dep_taint(self, dep: Dep, path: str,
                  depth: int = 0) -> Optional[Witness]:
        """Witness that ``dep`` carries nondeterminism, or None."""
        if depth > MAX_FLOW_DEPTH:
            return None
        kind = dep[0]
        if kind == "source":
            return [{"path": path, "line": dep[2], "note": dep[3]}]
        if kind != "call":
            return None        # bare params are accounted at call sites
        ref, line, args = dep[1], dep[2], dep[3]
        qualname = self.resolve(ref)
        if qualname is None:
            return None
        display = _display(qualname)
        callee_witness = self.ret_taint.get(qualname)
        if callee_witness:
            step = {"path": path, "line": line,
                    "note": f"tainted return of {display}()"}
            return [step, *callee_witness]
        callee, _callee_path = self.functions[qualname]
        for ret_dep in callee["ret"]:
            if ret_dep[0] != "param":
                continue
            for arg_dep in self._args_for_param(callee, ret_dep[1], args):
                arg_witness = self.dep_taint(arg_dep, path, depth + 1)
                if arg_witness is not None:
                    step = {
                        "path": path, "line": line,
                        "note": f"{display}() returns its "
                                f"{ret_dep[1]!r} argument",
                    }
                    return [step, *arg_witness]
        return None

    @staticmethod
    def _args_for_param(callee: Summary, param: str,
                        args: Dict[str, DepSet]) -> DepSet:
        params: List[str] = callee["params"]
        if param not in params:
            return args.get(param, [])
        index = params.index(param)
        if callee["cls"] is not None and params and params[0] in ("self", "cls"):
            index -= 1
        deps: DepSet = []
        if index >= 0:
            deps = list(args.get(str(index), []))
        return [*deps, *args.get(param, [])]


def _render_witness(witness: Witness) -> str:
    """Human-readable source-to-sink chain for the finding message."""
    steps = list(reversed(witness))
    return " -> ".join(
        f"{step['note']} [{step['path']}:{step['line']}]" for step in steps)


def check_project(summaries: Sequence[Summary], sources: Sources,
                  ) -> Tuple[List[Finding], Set[Tuple[str, int]]]:
    """Run the cross-file rules (SIM011, SIM013) over linked summaries.

    Returns the findings plus the set of ``(path, line)`` source
    locations witnessed by a SIM011 finding; the engine drops syntactic
    SIM001/SIM003 findings at those locations as subsumed.
    """
    taint = ProjectTaint(summaries)
    findings: List[Finding] = []
    subsumed: Set[Tuple[str, int]] = set()
    seen: Set[Tuple[str, int, str]] = set()

    def emit(path: str, line: int, message: str,
             witness: Witness) -> None:
        key = (path, line, message)
        if key in seen:
            return
        seen.add(key)
        findings.append(_finding("SIM011", path, line, message, sources))
        source_step = witness[-1]
        subsumed.add((str(source_step["path"]), int(source_step["line"])))

    for qualname in sorted(taint.functions):
        fn, path = taint.functions[qualname]
        if not _is_sink(fn):
            continue
        witness = taint.ret_taint[qualname]
        if witness:
            emit(
                path, int(witness[0]["line"]),
                f"nondeterministic value reaches digest sink "
                f"{_display(qualname)}(): {_render_witness(witness)}",
                witness,
            )

    for qualname in sorted(taint.functions):
        fn, path = taint.functions[qualname]
        for call in fn["calls"]:
            target = taint.resolve(call["callee"])
            if target is None or not _is_sink(taint.functions[target][0]):
                continue
            for arg_key in sorted(call["args"]):
                witness = taint.first_taint(call["args"][arg_key], path)
                if witness is not None:
                    emit(
                        path, int(call["line"]),
                        f"tainted argument flows into digest sink "
                        f"{_display(target)}(): {_render_witness(witness)}",
                        witness,
                    )
                    break

    findings.extend(_check_thread_shared(summaries, sources))
    return findings, subsumed


# --------------------------------------------------------------------------
# SIM013: thread-shared mutations outside lock scopes
# --------------------------------------------------------------------------

def _check_thread_shared(summaries: Sequence[Summary],
                         sources: Sources) -> List[Finding]:
    marked: Set[str] = set()
    for summary in summaries:
        for name, info in summary["classes"].items():
            if info["thread_shared"]:
                marked.add(name)
    if not marked:
        return []
    findings: List[Finding] = []
    for summary in summaries:
        path = summary["path"]
        for mutation in summary["mutations"]:
            owner = str(mutation["owner"]).split(".")[-1]
            if owner not in marked or mutation["locked"]:
                continue
            if mutation["owner_kind"] == "self" and mutation["is_init"]:
                continue
            findings.append(_finding(
                "SIM013", path, int(mutation["line"]),
                f"attribute {mutation['attr']!r} of thread-shared "
                f"{owner} mutated outside a lock scope "
                f"(in {mutation['func']}())",
                sources,
            ))
    return findings


# --------------------------------------------------------------------------
# SIM012: cache-key completeness (per-file; cacheable)
# --------------------------------------------------------------------------

def check_cache_completeness(summary: Summary,
                             source_lines: Sequence[str]) -> List[Finding]:
    """Every keyed dataclass field needs a digest decision (SIM012)."""
    sources: Sources = {summary["path"]: source_lines}
    path = summary["path"]
    module = summary["module"]
    excluded = summary["excluded"]
    excluded_entries: Dict[str, str] = (
        dict(excluded["entries"]) if excluded else {})
    keyed = sorted(
        (name, info) for name, info in summary["classes"].items()
        if info["dataclass"] and info["key_method"])
    findings: List[Finding] = []
    all_fields: Set[str] = set()

    for name, info in keyed:
        all_fields.update(info["fields"])
        key_method = info["key_method"]
        reads = _key_closure(summary, name, key_method, info)
        key_fn = summary["functions"].get(f"{module}:{name}.{key_method}")
        line = int(key_fn["lineno"]) if key_fn else int(info["lineno"])
        missing = [field for field in info["fields"]
                   if field not in reads and field not in excluded_entries]
        if missing:
            listed = ", ".join(repr(field) for field in missing)
            findings.append(_finding(
                "SIM012", path, line,
                f"field(s) {listed} of {name} appear in neither "
                f"{name}.{key_method}() nor CACHE_KEY_EXCLUDED",
                sources,
            ))
        if excluded is not None:
            for field in info["fields"]:
                if field in excluded_entries and field in reads:
                    findings.append(_finding(
                        "SIM012", path, int(excluded["line"]),
                        f"CACHE_KEY_EXCLUDED lists {field!r} but "
                        f"{name}.{key_method}() reads it - pick one",
                        sources,
                    ))

    if excluded is not None and keyed:
        for entry in sorted(excluded_entries):
            if entry not in all_fields:
                findings.append(_finding(
                    "SIM012", path, int(excluded["line"]),
                    f"stale CACHE_KEY_EXCLUDED entry {entry!r} matches "
                    "no field of any keyed dataclass in this module",
                    sources,
                ))
    return findings


def _key_closure(summary: Summary, cls: str, start: str,
                 info: Summary) -> Set[str]:
    """Names transitively read via ``self`` from the key method.

    Follows same-class helper calls *and* property reads
    (``cache_key`` -> ``policy_name`` -> ``policy``), which is what
    makes indirect field coverage count.
    """
    module = summary["module"]
    methods = set(info["methods"])
    reads: Set[str] = set()
    seen: Set[str] = set()
    queue: List[str] = [start]
    while queue:
        method = queue.pop()
        if method in seen:
            continue
        seen.add(method)
        fn = summary["functions"].get(f"{module}:{cls}.{method}")
        if fn is None:
            continue
        for read in fn["self_reads"]:
            reads.add(read)
            if read in methods and read not in seen:
                queue.append(read)
        for call in fn["self_calls"]:
            if call in methods and call not in seen:
                queue.append(call)
    return reads
