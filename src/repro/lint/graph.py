"""Project model for the flow-aware simlint rules (SIM011-SIM013).

This module turns one parsed file into a JSON-serialisable **module
summary**: the per-function taint facts, class/dataclass shapes, and
thread-shared mutation sites that :mod:`repro.lint.taint` later links
into a project-wide call graph.  Keeping the summary serialisable is
what makes the incremental cache work - a cached file contributes its
summary to the cross-file fixpoint without being re-parsed.

Dependency sets ("where could this value have come from") are lists of
tagged JSON values, deduplicated and sorted by canonical encoding so
every run of the analysis is bit-for-bit deterministic:

* ``["source", kind, line, detail]`` - a nondeterminism source was
  evaluated here (``hash()``, global ``random.*``, wall-clock reads,
  ``os.environ``, ``id()``, set-iteration order);
* ``["param", name]`` - the value flows in from a caller's argument;
* ``["call", ref, line, args, text]`` - the return value of another
  function, with the dependency sets of every argument.  ``ref`` is a
  resolution request for the link phase (see :data:`REF_KINDS`).

The analysis is deliberately a linter, not a verifier: straight-line
union semantics over statements, attribute loads propagate the taint of
their root object, unknown calls conservatively forward their argument
taint, and parameter-through-parameter chains are cut off (callers'
taint is accounted at the call site instead).
"""

from __future__ import annotations

import ast
import json
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.rules import GLOBAL_RANDOM_FUNCTIONS, WALL_CLOCK_CALLS

#: Dependency / summary value types (JSON-shaped on purpose).
Dep = List[Any]
DepSet = List[Dep]
Summary = Dict[str, Any]

#: Callee reference prefixes produced here and resolved by taint.py:
#: ``q:``  exact qualified name (same-file resolution already done);
#: ``r:``  dotted path resolved by module-suffix match at link time;
#: ``m:``  ``m:<type>:<method>`` - method on an annotated object.
REF_KINDS = ("q:", "r:", "m:")

#: Builtins whose output order/value does not inherit *ordering* taint:
#: ``sorted({...})`` is deterministic even though set iteration is not.
ORDER_SANITIZERS = frozenset({"sorted", "min", "max", "len", "sum"})

#: Comment marker documenting that a class is mutated from more than one
#: thread; SIM013 requires every attribute mutation on such objects to
#: happen inside a ``with <lock>:`` scope.
THREAD_SHARED_MARKER = "simlint: thread-shared"

#: Registry variable name for SIM012 field exclusions.
EXCLUDED_REGISTRY_NAME = "CACHE_KEY_EXCLUDED"

#: Method names whose return value is a digest/cache identity (SIM011
#: sinks).  ``key`` is only a sink as a *method* of a class (FaultConfig
#: style), never as a free function; taint.py enforces that split.
SINK_FUNCTION_NAMES = frozenset({
    "cache_key", "cache_digest", "digest_for_key", "_job_digest",
    "entry_to_json",
})
SINK_METHOD_NAMES = frozenset({"key"})

#: Mutating method names treated as attribute mutations when called on
#: ``owner.attr`` (``self._jobs.pop(...)`` mutates ``self._jobs``).
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "remove", "discard", "clear",
    "update", "setdefault", "pop", "popitem",
})

#: Functions exempt from SIM013: they run before the object is shared
#: (construction happens-before publication).
_INIT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def _dep_key(dep: Dep) -> str:
    return json.dumps(dep, sort_keys=True)


def merge_deps(*sets: Sequence[Dep]) -> DepSet:
    """Union of dependency sets, deduplicated, canonically ordered."""
    out: Dict[str, Dep] = {}
    for deps in sets:
        for dep in deps:
            out[_dep_key(dep)] = dep
    return [out[key] for key in sorted(out)]


def module_dots(path: str) -> str:
    """Dotted module path derived from a file path.

    ``src/repro/sim/config.py`` becomes ``src.repro.sim.config``; the
    link phase matches import targets against it by *suffix*, so the
    ``src.`` (or any tmp-dir) prefix never has to be configured.
    """
    norm = path.replace("\\", "/")
    if norm.endswith(".py"):
        norm = norm[:-3]
    parts = [p for p in norm.split("/") if p not in ("", ".", "..")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def dotted_parts(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _annotation_text(node: Optional[ast.expr]) -> Optional[str]:
    """Simple dotted annotation (``Job``, ``jobs.Job``), else None.

    Container annotations (``List[Job]``, ``Optional[Job]``) describe a
    wrapper, not the object itself, so they deliberately resolve to
    nothing rather than mis-typing the variable.
    """
    if node is None:
        return None
    parts = dotted_parts(node)
    return ".".join(parts) if parts else None


def _is_set_like(node: ast.expr) -> bool:
    """Expression whose *iteration order* is interpreter-dependent."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        parts = dotted_parts(node.func)
        return parts in (("set",), ("frozenset",))
    return False


def _is_lock_context(node: ast.expr) -> bool:
    """``with <expr>:`` context manager that names a lock."""
    if isinstance(node, ast.Call):
        node = node.func
    parts = dotted_parts(node)
    return bool(parts) and "lock" in parts[-1].lower()


def _marker_on_def(node: ast.ClassDef, source_lines: Sequence[str],
                   marker: str) -> bool:
    body_start = node.body[0].lineno if node.body else node.lineno + 1
    for lineno in range(node.lineno, body_start):
        if 1 <= lineno <= len(source_lines) and marker in source_lines[lineno - 1]:
            return True
    return False


def _collect_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    """Local name -> dotted import target for every top-level import."""
    imports: Dict[str, str] = {}
    package = module.rsplit(".", 1)[0] if "." in module else ""
    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            base = stmt.module or ""
            if stmt.level:
                # Relative import: anchor on this module's package chain.
                anchor = module.split(".")
                anchor = anchor[: max(0, len(anchor) - stmt.level)]
                base = ".".join([*anchor, base] if base else anchor)
            elif not base:
                base = package
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        parts = dotted_parts(target)
        if parts and parts[-1] == "dataclass":
            return True
    return False


def _class_fields(node: ast.ClassDef) -> List[str]:
    fields: List[str] = []
    for stmt in node.body:
        if (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)):
            ann = stmt.annotation
            base = ann.value if isinstance(ann, ast.Subscript) else ann
            parts = dotted_parts(base)
            if parts and parts[-1] == "ClassVar":
                continue
            fields.append(stmt.target.id)
    return fields


def _parse_excluded_registry(value: ast.expr) -> Optional[Dict[str, str]]:
    """``CACHE_KEY_EXCLUDED`` literal -> {field: reason}, else None."""
    entries: Dict[str, str] = {}
    if isinstance(value, ast.Dict):
        for key, reason in zip(value.keys, value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                return None
            text = reason.value if (isinstance(reason, ast.Constant)
                                    and isinstance(reason.value, str)) else ""
            entries[key.value] = text
        return entries
    if isinstance(value, ast.Set):
        for elt in value.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                return None
            entries[elt.value] = ""
        return entries
    if isinstance(value, ast.Call) and _is_set_like(value) and len(value.args) == 1:
        return _parse_excluded_registry(value.args[0])
    return None


class _ModuleContext:
    """Shared per-module state handed to every function analyzer."""

    def __init__(self, module: str, path: str, imports: Dict[str, str],
                 module_functions: FrozenSet[str],
                 module_classes: FrozenSet[str],
                 mutations: List[Dict[str, Any]],
                 source_lines: Sequence[str]) -> None:
        self.module = module
        self.path = path
        self.imports = imports
        self.module_functions = module_functions
        self.module_classes = module_classes
        self.mutations = mutations
        self.source_lines = source_lines

    def expand(self, parts: Tuple[str, ...]) -> Tuple[str, ...]:
        """Rewrite the dotted chain's root through the import map."""
        target = self.imports.get(parts[0])
        if target is None:
            return parts
        return tuple(target.split(".")) + parts[1:]

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""


class _FunctionAnalyzer:
    """Straight-line taint walk over one function body."""

    def __init__(self, ctx: _ModuleContext, cls: Optional[str],
                 cls_methods: FrozenSet[str],
                 outer_annotations: Optional[Dict[str, str]] = None) -> None:
        self.ctx = ctx
        self.cls = cls
        self.cls_methods = cls_methods
        self.env: Dict[str, DepSet] = {}
        self.annotations: Dict[str, str] = dict(outer_annotations or {})
        self.ret: DepSet = []
        self.calls: List[Dict[str, Any]] = []
        self.self_reads: Set[str] = set()
        self.self_calls: Set[str] = set()
        self.params: List[str] = []
        self.lock_depth = 0
        self.fn_name = "<lambda>"

    # -- entry ---------------------------------------------------------

    def summarize(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> Summary:
        self.fn_name = node.name
        args = node.args
        for arg in [*args.posonlyargs, *args.args]:
            self.params.append(arg.arg)
            self.env[arg.arg] = [["param", arg.arg]]
            ann = _annotation_text(arg.annotation)
            if ann is not None:
                self.annotations[arg.arg] = ann
        for arg in [*args.kwonlyargs,
                    *([args.vararg] if args.vararg else []),
                    *([args.kwarg] if args.kwarg else [])]:
            self.env[arg.arg] = [["param", arg.arg]]
            ann = _annotation_text(arg.annotation)
            if ann is not None:
                self.annotations[arg.arg] = ann
        for stmt in node.body:
            self.visit_stmt(stmt)
        return {
            "name": node.name,
            "cls": self.cls,
            "lineno": node.lineno,
            "params": self.params,
            "ret": self.ret,
            "calls": self.calls,
            "self_reads": sorted(self.self_reads),
            "self_calls": sorted(self.self_calls),
        }

    # -- statements ----------------------------------------------------

    def visit_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            deps = self.visit_expr(node.value)
            for target in node.targets:
                self.assign_target(target, deps)
        elif isinstance(node, ast.AnnAssign):
            ann = _annotation_text(node.annotation)
            if isinstance(node.target, ast.Name) and ann is not None:
                self.annotations[node.target.id] = ann
            deps = self.visit_expr(node.value) if node.value else []
            self.assign_target(node.target, deps)
        elif isinstance(node, ast.AugAssign):
            deps = self.visit_expr(node.value)
            if isinstance(node.target, ast.Name):
                existing = self.env.get(node.target.id, [])
                self.env[node.target.id] = merge_deps(existing, deps)
            else:
                self.assign_target(node.target, deps)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.ret = merge_deps(self.ret, self.visit_expr(node.value))
        elif isinstance(node, ast.Expr):
            self.visit_expr(node.value)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            iter_deps = self.visit_expr(node.iter)
            if _is_set_like(node.iter):
                iter_deps = merge_deps(iter_deps, [[
                    "source", "set-order", node.iter.lineno,
                    "set iteration order is interpreter-dependent",
                ]])
            self.assign_target(node.target, iter_deps)
            for stmt in [*node.body, *node.orelse]:
                self.visit_stmt(stmt)
        elif isinstance(node, ast.While):
            self.visit_expr(node.test)
            for stmt in [*node.body, *node.orelse]:
                self.visit_stmt(stmt)
        elif isinstance(node, ast.If):
            self.visit_expr(node.test)
            for stmt in [*node.body, *node.orelse]:
                self.visit_stmt(stmt)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            locked = any(_is_lock_context(item.context_expr)
                         for item in node.items)
            for item in node.items:
                deps = self.visit_expr(item.context_expr)
                if item.optional_vars is not None:
                    self.assign_target(item.optional_vars, deps)
            if locked:
                self.lock_depth += 1
            for stmt in node.body:
                self.visit_stmt(stmt)
            if locked:
                self.lock_depth -= 1
        elif isinstance(node, ast.Try):
            handlers: List[ast.stmt] = []
            for handler in node.handlers:
                handlers.extend(handler.body)
            for stmt in [*node.body, *handlers, *node.orelse, *node.finalbody]:
                self.visit_stmt(stmt)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self.record_mutation_target(target)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested functions (worker callbacks, closures): their taint
            # stays local, but mutations of enclosing annotated objects
            # still count - that is exactly the asyncio/thread boundary
            # SIM013 exists for.
            nested = _FunctionAnalyzer(
                self.ctx, self.cls, self.cls_methods, self.annotations)
            nested.calls = self.calls
            nested.lock_depth = self.lock_depth
            nested.summarize(node)
            self.self_reads |= nested.self_reads
            self.self_calls |= nested.self_calls
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.visit_expr(child)
        elif isinstance(node, (ast.Import, ast.ImportFrom, ast.Global,
                               ast.Nonlocal, ast.Pass, ast.Break,
                               ast.Continue, ast.ClassDef)):
            return
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self.visit_stmt(child)
                elif isinstance(child, ast.expr):
                    self.visit_expr(child)

    def assign_target(self, target: ast.expr, deps: DepSet) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = deps
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign_target(elt, deps)
        elif isinstance(target, ast.Starred):
            self.assign_target(target.value, deps)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self.record_mutation_target(target)

    # -- SIM013 mutation sites ----------------------------------------

    def record_mutation_target(self, target: ast.expr) -> None:
        """Attribute/subscript store -> mutation of ``owner.attr``."""
        node: ast.expr = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if not isinstance(node, ast.Attribute):
            return
        if not isinstance(node.value, ast.Name):
            return
        self.record_mutation(node.value.id, node.attr, target.lineno)

    def record_mutation(self, root: str, attr: str, lineno: int) -> None:
        owner: Optional[Tuple[str, str]] = None
        if root == "self" and self.cls is not None:
            owner = ("self", self.cls)
        elif root in self.annotations:
            owner = ("ann", self.annotations[root])
        if owner is None:
            return
        self.ctx.mutations.append({
            "line": lineno,
            "owner_kind": owner[0],
            "owner": owner[1],
            "attr": attr,
            "locked": self.lock_depth > 0,
            "func": self.fn_name,
            "is_init": self.fn_name in _INIT_METHODS,
            "snippet": self.ctx.snippet(lineno),
        })

    # -- expressions ---------------------------------------------------

    def visit_expr(self, node: Optional[ast.expr]) -> DepSet:
        if node is None:
            return []
        if isinstance(node, ast.Name):
            return self.env.get(node.id, [])
        if isinstance(node, ast.Attribute):
            inner: ast.expr = node
            while isinstance(inner, ast.Attribute):
                if isinstance(inner.value, ast.Name) and inner.value.id == "self":
                    if self.cls is not None:
                        self.self_reads.add(inner.attr)
                inner = inner.value
            return self.visit_expr(node.value)
        if isinstance(node, ast.Call):
            return self.visit_call(node)
        if isinstance(node, ast.Subscript):
            parts = dotted_parts(node.value)
            if parts is not None and self.ctx.expand(parts)[-2:] == ("os", "environ"):
                return [["source", "environ", node.lineno,
                         "os.environ read couples the value to the host"]]
            return merge_deps(self.visit_expr(node.value),
                              self.visit_expr(node.slice))
        if isinstance(node, ast.NamedExpr):
            deps = self.visit_expr(node.value)
            self.env[node.target.id] = deps
            return deps
        if isinstance(node, ast.Lambda):
            return []
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            out: DepSet = []
            for gen in node.generators:
                iter_deps = self.visit_expr(gen.iter)
                if _is_set_like(gen.iter):
                    iter_deps = merge_deps(iter_deps, [[
                        "source", "set-order", gen.iter.lineno,
                        "set iteration order is interpreter-dependent",
                    ]])
                self.assign_target(gen.target, iter_deps)
                out = merge_deps(out, iter_deps,
                                 *[self.visit_expr(c) for c in gen.ifs])
            if isinstance(node, ast.DictComp):
                out = merge_deps(out, self.visit_expr(node.key),
                                 self.visit_expr(node.value))
            else:
                out = merge_deps(out, self.visit_expr(node.elt))
            return out
        if isinstance(node, ast.Constant):
            return []
        children = [child for child in ast.iter_child_nodes(node)
                    if isinstance(child, ast.expr)]
        return merge_deps(*[self.visit_expr(child) for child in children])

    # -- calls ---------------------------------------------------------

    def visit_call(self, node: ast.Call) -> DepSet:
        parts = dotted_parts(node.func)
        func_deps = [] if parts is not None else self.visit_expr(node.func)
        arg_sets: Dict[str, DepSet] = {}
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                arg_sets[f"*{index}"] = self.visit_expr(arg.value)
            else:
                arg_sets[str(index)] = self.visit_expr(arg)
        for keyword in node.keywords:
            key = keyword.arg if keyword.arg is not None else "**"
            arg_sets[key] = merge_deps(arg_sets.get(key, []),
                                       self.visit_expr(keyword.value))
        if parts is not None and len(parts) == 3 and parts[2] in _MUTATOR_METHODS:
            # ``owner.attr.append(...)`` mutates ``owner.attr``.
            self.record_mutation(parts[0], parts[1], node.lineno)
        if parts is not None:
            source = self.source_for_call(node, self.ctx.expand(parts))
            if source is not None:
                return [source]
            if len(parts) == 1 and parts[0] in ORDER_SANITIZERS:
                merged = merge_deps(func_deps, *arg_sets.values())
                return [dep for dep in merged
                        if not (dep[0] == "source" and dep[1] == "set-order")]
            if parts in (("list",), ("tuple",)) and any(
                    _is_set_like(arg) for arg in node.args):
                return merge_deps(
                    [["source", "set-order", node.lineno,
                      f"{parts[0]}() over a set materialises "
                      "interpreter-dependent order"]],
                    *arg_sets.values())
        callee = self.resolve_call(parts, node)
        self.calls.append({
            "callee": callee,
            "line": node.lineno,
            "args": arg_sets,
            "text": ".".join(parts) if parts else "<dynamic>",
        })
        if callee is not None:
            return [["call", callee, node.lineno, arg_sets,
                     ".".join(parts) if parts else "<dynamic>"]]
        return merge_deps(func_deps, *arg_sets.values())

    def source_for_call(self, node: ast.Call,
                        parts: Tuple[str, ...]) -> Optional[Dep]:
        line = node.lineno
        if parts == ("hash",):
            return ["source", "hash", line,
                    "hash() is randomized per interpreter process "
                    "(PYTHONHASHSEED)"]
        if parts == ("id",):
            return ["source", "id", line,
                    "id() depends on allocation addresses"]
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] in GLOBAL_RANDOM_FUNCTIONS:
                return ["source", "random", line,
                        f"random.{parts[1]}() draws from the shared "
                        "module-global generator"]
            if parts[1] == "Random" and not node.args and not node.keywords:
                return ["source", "random", line,
                        "random.Random() without a seed is seeded from "
                        "the OS entropy pool"]
        if len(parts) >= 2 and (parts[-2], parts[-1]) in WALL_CLOCK_CALLS:
            return ["source", "wall-clock", line,
                    f"{'.'.join(parts)}() reads the host wall clock"]
        if parts == ("os", "getenv") or parts[-3:] == ("os", "environ", "get"):
            return ["source", "environ", line,
                    "os.environ read couples the value to the host"]
        return None

    def resolve_call(self, parts: Optional[Tuple[str, ...]],
                     node: ast.Call) -> Optional[str]:
        if parts is None:
            return None
        if len(parts) == 1:
            name = parts[0]
            if name in self.ctx.module_functions:
                return f"q:{self.ctx.module}:{name}"
            target = self.ctx.imports.get(name)
            if target is not None:
                return f"r:{target}"
            return None
        root = parts[0]
        if root == "self" and self.cls is not None:
            # ``self.faults.key()`` reads ``self.faults`` even though the
            # call itself is dispatched on the attribute's value.
            self.self_reads.add(parts[1])
            if len(parts) != 2:
                return None
            self.self_calls.add(parts[1])
            if parts[1] in self.cls_methods:
                return f"q:{self.ctx.module}:{self.cls}.{parts[1]}"
            return None
        if root in self.annotations and len(parts) == 2:
            type_ref = self.annotations[root]
            type_ref = self.ctx.imports.get(type_ref, type_ref)
            if type_ref in self.ctx.module_classes:
                type_ref = f"{self.ctx.module}.{type_ref}"
            return f"m:{type_ref}:{parts[1]}"
        if root in self.ctx.module_classes and len(parts) == 2:
            return f"q:{self.ctx.module}:{root}.{parts[1]}"
        if root in self.ctx.imports:
            expanded = self.ctx.expand(parts)
            return "r:" + ".".join(expanded)
        return None


def build_module_summary(path: str, tree: ast.Module,
                         source_lines: Sequence[str]) -> Summary:
    """Extract one file's contribution to the project analysis."""
    module = module_dots(path)
    imports = _collect_imports(tree, module)
    module_functions = frozenset(
        stmt.name for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)))
    module_classes = frozenset(
        stmt.name for stmt in tree.body if isinstance(stmt, ast.ClassDef))
    mutations: List[Dict[str, Any]] = []
    ctx = _ModuleContext(module, path, imports, module_functions,
                         module_classes, mutations, source_lines)

    functions: Dict[str, Summary] = {}
    classes: Dict[str, Summary] = {}
    excluded: Optional[Dict[str, Any]] = None

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            analyzer = _FunctionAnalyzer(ctx, None, frozenset())
            functions[f"{module}:{stmt.name}"] = analyzer.summarize(stmt)
        elif isinstance(stmt, ast.ClassDef):
            methods = frozenset(
                sub.name for sub in stmt.body
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)))
            key_method = ("cache_key" if "cache_key" in methods
                          else "key" if "key" in methods else None)
            classes[stmt.name] = {
                "name": stmt.name,
                "lineno": stmt.lineno,
                "dataclass": _is_dataclass_decorated(stmt),
                "fields": _class_fields(stmt),
                "methods": sorted(methods),
                "key_method": key_method,
                "thread_shared": _marker_on_def(
                    stmt, source_lines, THREAD_SHARED_MARKER),
            }
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    analyzer = _FunctionAnalyzer(ctx, stmt.name, methods)
                    qualname = f"{module}:{stmt.name}.{sub.name}"
                    functions[qualname] = analyzer.summarize(sub)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if EXCLUDED_REGISTRY_NAME in names and stmt.value is not None:
                entries = _parse_excluded_registry(stmt.value)
                if entries is not None:
                    excluded = {"entries": entries, "line": stmt.lineno}

    return {
        "path": path,
        "module": module,
        "functions": functions,
        "classes": classes,
        "mutations": mutations,
        "excluded": excluded,
    }
