"""The simlint rule set: AST checks tuned to this simulator's hazards.

Every rule exists because its hazard class has either already bitten this
codebase (SIM001 is the PR-1 ``hash(name)`` seeding bug) or silently
invalidates results when it does (unit slips, nondeterminism, wall-clock
coupling).  Rules are deliberately heuristic: they trade a few suppressible
false positives for catching the real thing at commit time.

Rule index:

* ``SIM001`` hash-seeding       - ``hash()`` feeding anything; str hashing is
  randomized per interpreter process (PYTHONHASHSEED), so results differ
  across processes and runs.
* ``SIM002`` global-random      - module-level ``random.*`` calls or an
  unseeded ``random.Random()``; simulation randomness must come from seeded
  per-component generators.
* ``SIM003`` wall-clock         - ``time.time``/``datetime.now`` family
  inside simulation code; simulated time must come from the event queue.
* ``SIM004`` float-time-eq      - ``==``/``!=`` on float simulated-time
  values (``*_ns``/``*_us``/``*_ms`` identifiers or ``now``).
* ``SIM005`` mutable-default    - mutable default argument values.
* ``SIM006`` bare-except        - ``except:`` swallowing everything
  including ``KeyboardInterrupt`` and invariant violations.
* ``SIM007`` unit-mix           - additive arithmetic or comparison mixing
  identifiers of different time units (``_ns`` vs ``_us``/``_years``)
  without an explicit conversion.
* ``SIM008`` telemetry-wall-clock - any ``time``/``datetime`` import or
  dotted call inside ``src/repro/telemetry/``; telemetry timestamps must
  come from the simulated clock or traced runs stop being bit-identical.
* ``SIM009`` hotpath-alloc       - lambda or nested ``def`` allocated on
  every iteration of a loop inside a function marked ``# simlint:
  hotpath``; closure allocation is exactly the overhead those functions
  exist to avoid (hoist the callable or prebind a method).
* ``SIM010`` faults-direct-random - any ``random.*`` call (even a seeded
  ``random.Random(n)``) or ``from random import ...`` inside
  ``repro.faults``; fault randomness must flow through the injected
  generator so every draw is attributable to the run's seed.

Flow-aware rules (computed from the project model in
:mod:`repro.lint.graph` / :mod:`repro.lint.taint`):

* ``SIM011`` taint-reaches-digest - a nondeterminism source reaches a
  digest sink through any chain of assignments/returns/calls; the
  finding message carries the interprocedural witness path.  Subsumes
  SIM001/SIM003 at witnessed source locations.
* ``SIM012`` cache-key-completeness - a ``@dataclass`` field of a keyed
  config (``cache_key()``/``key()``) that the key neither reads nor the
  module's ``CACHE_KEY_EXCLUDED`` registry excludes.
* ``SIM013`` unlocked-shared-mutation - attribute mutation on a class
  marked ``# simlint: thread-shared`` outside a ``with <lock>:`` scope.
* ``SIM100`` unused-suppression - a ``# simlint: ignore[...]`` comment
  that matches no finding on its line (reported by default; disable
  with ``--no-report-unused-suppressions``).
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.lint.findings import Finding, RuleInfo

RULES: Dict[str, RuleInfo] = {
    info.rule_id: info
    for info in (
        RuleInfo(
            rule_id="SIM001",
            name="hash-seeding",
            severity="error",
            summary="builtin hash() is interpreter-randomized and breaks "
                    "cross-process reproducibility",
            hint="derive stable integers with zlib.crc32(text.encode()) or "
                 "hashlib instead of hash()",
        ),
        RuleInfo(
            rule_id="SIM002",
            name="global-random",
            severity="error",
            summary="global random module state (or an unseeded "
                    "random.Random()) makes runs order-dependent",
            hint="use a per-component random.Random(seed) derived from "
                 "SimConfig.seed",
        ),
        RuleInfo(
            rule_id="SIM003",
            name="wall-clock",
            severity="error",
            summary="wall-clock time inside simulation code couples results "
                    "to the host machine",
            hint="use the event queue's simulated clock (events.now); "
                 "suppress explicitly when benchmarking host runtime",
        ),
        RuleInfo(
            rule_id="SIM004",
            name="float-time-eq",
            severity="warning",
            summary="exact ==/!= on float simulated-time values is "
                    "rounding-fragile",
            hint="compare with <=/>= against a bound, or use math.isclose "
                 "with an explicit tolerance",
        ),
        RuleInfo(
            rule_id="SIM005",
            name="mutable-default",
            severity="error",
            summary="mutable default argument is shared across calls",
            hint="default to None and create the object inside the function "
                 "(or use dataclasses.field(default_factory=...))",
        ),
        RuleInfo(
            rule_id="SIM006",
            name="bare-except",
            severity="warning",
            summary="bare except swallows every exception, including "
                    "InvariantViolation and KeyboardInterrupt",
            hint="catch the narrowest exception type that the handler "
                 "actually handles",
        ),
        RuleInfo(
            rule_id="SIM007",
            name="unit-mix",
            severity="error",
            summary="arithmetic/comparison mixes identifiers of different "
                    "time units without an explicit conversion",
            hint="convert one side explicitly (e.g. multiply by a "
                 "*_PER_* constant) or rename the identifier to its true "
                 "unit",
        ),
        RuleInfo(
            rule_id="SIM008",
            name="telemetry-wall-clock",
            severity="error",
            summary="wall-clock module use inside repro.telemetry; "
                    "telemetry timestamps must come from simulated time",
            hint="take the timestamp as a now_ns argument (or the "
                 "Telemetry clock callable) instead of importing "
                 "time/datetime",
        ),
        RuleInfo(
            rule_id="SIM009",
            name="hotpath-alloc",
            severity="warning",
            summary="lambda/closure allocated on every loop iteration of "
                    "a '# simlint: hotpath' function",
            hint="hoist the callable out of the loop - bind it once "
                 "before the loop or prebind a method; per-iteration "
                 "closure allocation is the overhead hotpath functions "
                 "exist to avoid",
        ),
        RuleInfo(
            rule_id="SIM010",
            name="faults-direct-random",
            severity="error",
            summary="direct use of the random module inside repro.faults; "
                    "fault randomness must come from the injected RNG",
            hint="take a random.Random parameter (System seeds one from "
                 "the config) and draw from it; 'import random' purely "
                 "for type annotations stays legal",
        ),
        RuleInfo(
            rule_id="SIM011",
            name="taint-reaches-digest",
            severity="error",
            summary="a nondeterminism source (hash/random/wall-clock/"
                    "environ/id/set-order) flows into a digest sink; "
                    "identical configs would stop mapping to identical "
                    "cache entries",
            hint="cut the flow at the witness path's first step: derive "
                 "the value from config fields or a seeded generator "
                 "instead of the nondeterministic source",
        ),
        RuleInfo(
            rule_id="SIM012",
            name="cache-key-completeness",
            severity="error",
            summary="keyed dataclass field without a digest decision: "
                    "neither read by cache_key()/key() nor listed in "
                    "CACHE_KEY_EXCLUDED",
            hint="add the field to the key tuple, or register it in the "
                 "module's CACHE_KEY_EXCLUDED dict with a one-line "
                 "reason why it cannot affect results",
        ),
        RuleInfo(
            rule_id="SIM013",
            name="unlocked-shared-mutation",
            severity="error",
            summary="attribute mutation on a '# simlint: thread-shared' "
                    "class outside a 'with <lock>:' scope",
            hint="wrap the mutation in the owning object's lock (or move "
                 "it into a locked method of the owner); construction in "
                 "__init__/__post_init__ is exempt",
        ),
        RuleInfo(
            rule_id="SIM100",
            name="unused-suppression",
            severity="warning",
            summary="'# simlint: ignore[...]' comment matches no finding "
                    "on its line",
            hint="delete the stale suppression, or fix its rule list if "
                 "it targets the wrong rule id",
        ),
    )
}

#: Version of the analysis semantics.  Part of the incremental cache
#: key: bump it whenever any rule's logic (not just its metadata)
#: changes, so stale per-file results can never leak into a report.
RULESET_VERSION = "2.0.0"

# --------------------------------------------------------------------------
# SIM002 / SIM003 call tables
# --------------------------------------------------------------------------

#: ``random.<fn>`` calls that mutate or read the module-global generator.
GLOBAL_RANDOM_FUNCTIONS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "setstate", "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
})

#: ``<module>.<fn>`` wall-clock reads.  ``monotonic``/``perf_counter`` are
#: included: they are fine for *benchmarking host runtime* but never for
#: simulation logic, and a benchmark is exactly the place an explicit
#: suppression comment documents intent.
WALL_CLOCK_CALLS = frozenset({
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
})

# --------------------------------------------------------------------------
# Unit inference (SIM004 / SIM007)
# --------------------------------------------------------------------------

#: Identifier suffix token -> canonical unit.
UNIT_TOKENS: Dict[str, str] = {
    "ns": "ns",
    "us": "us",
    "ms": "ms",
    "year": "years",
    "years": "years",
}

#: Units SIM004 treats as float simulated time.
FLOAT_TIME_UNITS = frozenset({"ns", "us", "ms"})

# --------------------------------------------------------------------------
# SIM008: the telemetry package is wall-clock-free by construction
# --------------------------------------------------------------------------

#: Modules repro.telemetry may not import at all.  SIM003 bans specific
#: wall-clock *calls* everywhere; inside the telemetry package the whole
#: module is off-limits so no future helper can smuggle host time into
#: trace timestamps (which must be simulated time for bit-identical runs).
TELEMETRY_BANNED_MODULES = frozenset({"time", "datetime"})

#: Normalized path fragment that marks a file as part of the telemetry
#: package.
_TELEMETRY_PATH_FRAGMENT = "repro/telemetry/"

# --------------------------------------------------------------------------
# SIM010: fault randomness flows through the injected generator only
# --------------------------------------------------------------------------

#: Normalized path fragment that marks a file as part of the fault
#: injection package.  Inside it, every draw must come from the
#: ``random.Random`` that ``System`` seeds from the config - a stray
#: ``random.Random(42)`` would be deterministic but *unattributable* to
#: the run's seed, silently decoupling fault outcomes from SimConfig.
_FAULTS_PATH_FRAGMENT = "repro/faults/"

# --------------------------------------------------------------------------
# SIM009: hotpath functions must not allocate closures per iteration
# --------------------------------------------------------------------------

#: Comment text that opts a function into SIM009.  By convention it sits on
#: the ``def`` line (or any line of a multi-line signature) of functions on
#: the simulator's measured hot paths.
HOTPATH_MARKER = "simlint: hotpath"


def is_telemetry_path(path: str) -> bool:
    """True when ``path`` lies inside ``src/repro/telemetry/``."""
    return _TELEMETRY_PATH_FRAGMENT in path.replace("\\", "/")


def is_faults_path(path: str) -> bool:
    """True when ``path`` lies inside ``src/repro/faults/``."""
    return _FAULTS_PATH_FRAGMENT in path.replace("\\", "/")


def unit_of_identifier(name: str) -> Optional[str]:
    """Canonical time unit of an identifier, or None.

    ``window_ns`` -> ``ns``; ``lifetime_years`` -> ``years``.  Identifiers
    mentioning two different units (``NS_PER_YEAR``) are conversion factors
    and deliberately read as unit-neutral, so multiplying by them never
    trips SIM007.
    """
    tokens = name.lower().split("_")
    units = {UNIT_TOKENS[t] for t in tokens if t in UNIT_TOKENS}
    if len(units) != 1:
        return None
    unit = next(iter(units))
    # Only a *suffix* names the unit of the value itself.
    return unit if tokens[-1] in UNIT_TOKENS else None


def _identifier_text(node: ast.AST) -> Optional[str]:
    """Bare identifier behind a Name or Attribute node, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _unit_of_node(node: ast.AST) -> Optional[str]:
    text = _identifier_text(node)
    return unit_of_identifier(text) if text is not None else None


def _is_time_like(node: ast.AST) -> bool:
    """SIM004 operand test: a *_ns/_us/_ms identifier or a ``now`` clock."""
    text = _identifier_text(node)
    if text is None:
        return False
    if text == "now":
        return True
    return unit_of_identifier(text) in FLOAT_TIME_UNITS


# --------------------------------------------------------------------------
# The visitor
# --------------------------------------------------------------------------

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)
_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter",
    "OrderedDict",
})


class _RuleVisitor(ast.NodeVisitor):
    """Single-pass AST walk emitting findings for every enabled rule."""

    def __init__(self, path: str, emit: Callable[..., None],
                 source_lines: Optional[List[str]] = None) -> None:
        self.path = path
        self.emit = emit
        self.in_telemetry = is_telemetry_path(path)
        self.in_faults = is_faults_path(path)
        self.source_lines = source_lines if source_lines is not None else []
        # SIM009 state: whether the innermost enclosing function carries
        # the hotpath marker, and how many per-iteration loop scopes deep
        # the walk currently is *within that function*.
        self._hotpath = False
        self._loop_depth = 0

    # -- SIM001 / SIM002 / SIM003 / SIM008 ----------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "hash":
            self.emit(
                "SIM001", node,
                "hash() result depends on PYTHONHASHSEED and differs "
                "across interpreter processes",
            )
        dotted = self._dotted_parts(func)
        if dotted is not None:
            self._check_random_call(node, dotted)
            self._check_wall_clock_call(node, dotted)
            self._check_telemetry_clock_call(node, dotted)
            self._check_faults_random_call(node, dotted)
        self.generic_visit(node)

    @staticmethod
    def _dotted_parts(func: ast.AST) -> Optional[Tuple[str, ...]]:
        """``a.b.c`` attribute chain as a tuple, or None."""
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return tuple(reversed(parts))
        return None

    def _check_random_call(self, node: ast.Call,
                           dotted: Tuple[str, ...]) -> None:
        if dotted[0] != "random" or len(dotted) != 2:
            return
        if dotted[1] in GLOBAL_RANDOM_FUNCTIONS:
            self.emit(
                "SIM002", node,
                f"random.{dotted[1]}() uses the shared module-global "
                "generator",
            )
        elif dotted[1] == "Random" and not node.args and not node.keywords:
            self.emit(
                "SIM002", node,
                "random.Random() without a seed argument is seeded from "
                "the OS entropy pool",
            )

    def _check_wall_clock_call(self, node: ast.Call,
                               dotted: Tuple[str, ...]) -> None:
        # Matches both ``time.time()`` and ``datetime.datetime.now()`` by
        # looking at the last two components of the dotted chain.
        if len(dotted) < 2:
            return
        if (dotted[-2], dotted[-1]) in WALL_CLOCK_CALLS:
            self.emit(
                "SIM003", node,
                f"{'.'.join(dotted)}() reads the host wall clock",
            )

    # -- SIM008 --------------------------------------------------------

    def _check_telemetry_clock_call(self, node: ast.Call,
                                    dotted: Tuple[str, ...]) -> None:
        if not self.in_telemetry or len(dotted) < 2:
            return
        if dotted[0] in TELEMETRY_BANNED_MODULES:
            self.emit(
                "SIM008", node,
                f"{'.'.join(dotted)}() inside repro.telemetry; trace "
                "timestamps must come from simulated time",
            )

    def visit_Import(self, node: ast.Import) -> None:
        if self.in_telemetry:
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in TELEMETRY_BANNED_MODULES:
                    self.emit(
                        "SIM008", node,
                        f"import of {alias.name!r} inside repro.telemetry",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.in_telemetry and node.module is not None:
            root = node.module.split(".")[0]
            if root in TELEMETRY_BANNED_MODULES:
                self.emit(
                    "SIM008", node,
                    f"import from {node.module!r} inside repro.telemetry",
                )
        if self.in_faults and node.module == "random":
            # 'from random import X' would let X() dodge the dotted-call
            # check below; 'import random' (annotations) stays legal.
            self.emit(
                "SIM010", node,
                "from-import of the random module inside repro.faults",
            )
        self.generic_visit(node)

    # -- SIM010 --------------------------------------------------------

    def _check_faults_random_call(self, node: ast.Call,
                                  dotted: Tuple[str, ...]) -> None:
        if not self.in_faults or dotted[0] != "random" or len(dotted) < 2:
            return
        self.emit(
            "SIM010", node,
            f"{'.'.join(dotted)}() inside repro.faults bypasses the "
            "injected seeded generator",
        )

    # -- SIM004 / SIM007 ----------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                if _is_time_like(left) or _is_time_like(right):
                    self.emit(
                        "SIM004", node,
                        "exact equality on a float simulated-time value",
                    )
            self._check_unit_mix(node, left, right)
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        # Add/Sub require same-unit operands; Mult/Div are conversions.
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_unit_mix(node, node.left, node.right)
        self.generic_visit(node)

    def _check_unit_mix(self, node: ast.AST, left: ast.AST,
                        right: ast.AST) -> None:
        left_unit = _unit_of_node(left)
        right_unit = _unit_of_node(right)
        if left_unit and right_unit and left_unit != right_unit:
            left_name = _identifier_text(left)
            right_name = _identifier_text(right)
            self.emit(
                "SIM007", node,
                f"mixes {left_name!r} ({left_unit}) with {right_name!r} "
                f"({right_unit})",
            )

    # -- SIM005 --------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._enter_function(node)

    def _check_mutable_defaults(self, node: ast.AST) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            if isinstance(default, _MUTABLE_LITERALS):
                self.emit(
                    "SIM005", default,
                    "mutable default argument is created once and shared "
                    "across calls",
                )
            elif (isinstance(default, ast.Call)
                  and isinstance(default.func, ast.Name)
                  and default.func.id in _MUTABLE_CONSTRUCTORS):
                self.emit(
                    "SIM005", default,
                    f"default argument {default.func.id}() is evaluated "
                    "once at definition time",
                )

    # -- SIM009 --------------------------------------------------------

    def _has_hotpath_marker(self, node: ast.AST) -> bool:
        """Whether the def header (any signature line) carries the marker."""
        body = getattr(node, "body", None)
        start = node.lineno
        stop = body[0].lineno if body else start + 1
        lines = self.source_lines
        for lineno in range(start, stop):
            if 1 <= lineno <= len(lines) and HOTPATH_MARKER in lines[lineno - 1]:
                return True
        return False

    def _enter_function(self, node: ast.AST) -> None:
        if self._hotpath and self._loop_depth:
            name = getattr(node, "name", "<function>")
            self.emit(
                "SIM009", node,
                f"nested function {name!r} is allocated on every "
                "iteration of a hotpath loop",
            )
        saved = (self._hotpath, self._loop_depth)
        self._hotpath = self._has_hotpath_marker(node)
        self._loop_depth = 0
        self.generic_visit(node)
        self._hotpath, self._loop_depth = saved

    def visit_Lambda(self, node: ast.Lambda) -> None:
        if self._hotpath and self._loop_depth:
            self.emit(
                "SIM009", node,
                "lambda is allocated on every iteration of a hotpath loop",
            )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._visit_for(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_for(node)

    def _visit_for(self, node: "ast.For | ast.AsyncFor") -> None:
        # The iterable expression is evaluated once, before the loop; a
        # lambda there (e.g. a sort key) is not a per-iteration cost.
        self.visit(node.iter)
        self.visit(node.target)
        self._loop_depth += 1
        for statement in node.body:
            self.visit(statement)
        self._loop_depth -= 1
        for statement in node.orelse:   # runs once, after the loop
            self.visit(statement)

    def visit_While(self, node: ast.While) -> None:
        # Unlike For's iterable, the test re-evaluates every iteration.
        self._loop_depth += 1
        self.visit(node.test)
        for statement in node.body:
            self.visit(statement)
        self._loop_depth -= 1
        for statement in node.orelse:
            self.visit(statement)

    def _visit_comprehension(
        self,
        node: "ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp",
    ) -> None:
        # The first generator's source is evaluated once; everything else
        # (element expression, conditions, nested generators) runs per
        # iteration.
        first = node.generators[0]
        self.visit(first.iter)
        self._loop_depth += 1
        self.visit(first.target)
        for condition in first.ifs:
            self.visit(condition)
        for generator in node.generators[1:]:
            self.visit(generator.target)
            self.visit(generator.iter)
            for condition in generator.ifs:
                self.visit(condition)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        self._loop_depth -= 1

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    # -- SIM006 --------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.emit("SIM006", node, "bare except clause")
        self.generic_visit(node)


def check_source(path: str, tree: ast.Module,
                 source_lines: List[str]) -> Iterator[Finding]:
    """Run every rule over a parsed module, yielding raw findings.

    Suppression filtering and rule selection happen in the engine; this
    layer only detects.
    """
    found: List[Finding] = []

    def emit(rule_id: str, node: ast.AST, message: str) -> None:
        info = RULES[rule_id]
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        snippet = ""
        if 1 <= line <= len(source_lines):
            snippet = source_lines[line - 1].strip()
        found.append(Finding(
            rule_id=rule_id, severity=info.severity, path=path,
            line=line, column=column, message=message, hint=info.hint,
            snippet=snippet,
        ))

    _RuleVisitor(path, emit, source_lines).visit(tree)
    return iter(found)
