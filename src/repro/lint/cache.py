"""Incremental analysis cache: per-file results keyed by content hash.

One JSON file (``<dir>/cache.json``) holds, per linted file, the
sha256 of its content plus the full per-file analysis payload (raw
findings for *all* rules, suppressions, and the module summary used by
the cross-file phase).  A warm run therefore re-analyses only edited
files; the project fixpoint is recomputed every run from the cached
summaries, which costs no parsing.

Invalidation is total on either a cache-format bump
(:data:`CACHE_FORMAT`) or a rule-semantics bump
(:data:`repro.lint.rules.RULESET_VERSION`): both are stored in the
header and any mismatch discards every entry.  Entries are keyed by
path and validated by digest, so options like ``--select`` never enter
the key - the cached payload is option-independent by construction
(filtering happens after the merge).

Writes are atomic (temp file + ``os.replace`` in the same directory)
and entries for files that no longer exist are pruned, so the cache
cannot grow without bound or be torn by a crashed run - while partial
runs (one subdirectory, a pre-commit hook's staged files) keep the
rest of the tree's warm entries intact.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

#: On-disk layout version of the cache file itself.
CACHE_FORMAT = 1


class AnalysisCache:
    """Load/store per-file analysis payloads under one directory."""

    def __init__(self, directory: Path, ruleset_version: str) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "cache.json"
        self.ruleset_version = ruleset_version
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(data, dict):
            return
        if data.get("format") != CACHE_FORMAT:
            return
        if data.get("ruleset") != self.ruleset_version:
            return
        entries = data.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def get(self, path: str, digest: str) -> Optional[Dict[str, Any]]:
        """Cached analysis for ``path`` at exactly this content digest."""
        entry = self._entries.get(path)
        if entry is not None and entry.get("digest") == digest:
            self.hits += 1
            analysis = entry.get("analysis")
            if isinstance(analysis, dict):
                return analysis
        self.misses += 1
        return None

    def put(self, path: str, digest: str, analysis: Dict[str, Any]) -> None:
        self._entries[path] = {"digest": digest, "analysis": analysis}
        self._dirty = True

    def save(self) -> None:
        """Persist atomically, dropping entries for deleted files.

        Pruning is by existence, not by this run's target set: linting
        one subdirectory (or a pre-commit hook linting two staged
        files) must not evict the rest of the tree's warm entries.
        """
        pruned = {p: e for p, e in self._entries.items()
                  if os.path.exists(p)}
        if pruned.keys() != self._entries.keys():
            self._entries = pruned
            self._dirty = True
        if not self._dirty:
            return
        payload = {
            "format": CACHE_FORMAT,
            "ruleset": self.ruleset_version,
            "entries": self._entries,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=str(self.directory), prefix=".cache-", suffix=".tmp",
            delete=False)
        try:
            with handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(handle.name, self.path)
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self._dirty = False
