"""simlint engine: discovery, caching, suppressions, rule selection.

The engine turns paths into findings in four phases:

1. **discover + hash** - expand ``*.py`` files and sha256 their content;
2. **per-file analysis** (cacheable, parallelisable with ``jobs``) -
   parse, run the syntactic rules (SIM001-SIM010), the per-file
   completeness rule (SIM012), extract the module summary
   (:mod:`repro.lint.graph`) and the suppression comments;
3. **project phase** - link every summary (cached or fresh) and run the
   cross-file rules SIM011/SIM013 (:mod:`repro.lint.taint`);
4. **finalize** - drop SIM001/SIM003 findings subsumed by a SIM011
   witness, apply suppressions and ``--select``/``--ignore``, and
   report unused suppressions as SIM100.

Suppression syntax (mirrors ``noqa``)::

    risky_line()  # simlint: ignore[SIM003] -- benchmarking wall-clock
    risky_line()  # simlint: ignore          (suppresses every rule)

Anything after the closing bracket is a free-form justification; writing
one is strongly encouraged and the repo's own suppressions all carry one.
Suppressions are parsed from real COMMENT tokens (via :mod:`tokenize`),
so the syntax appearing inside a string literal - like the example two
paragraphs up - is inert.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import time
import tokenize
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.cache import AnalysisCache
from repro.lint.findings import Finding, sort_findings
from repro.lint.graph import build_module_summary
from repro.lint.rules import RULES, RULESET_VERSION, check_source
from repro.lint.taint import check_cache_completeness, check_project

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9,\s]*)\])?"
)

#: Suppression entry meaning "every rule".
ALL_RULES = "*"

#: Rule ids a suppression can never target (synthetic/meta findings).
_UNSUPPRESSABLE = frozenset({"SIM000", "SIM100"})

#: Syntactic rules subsumed by an interprocedural SIM011 witness.
_SUBSUMED_BY_SIM011 = frozenset({"SIM001", "SIM003"})


@dataclass(frozen=True)
class LintOptions:
    """Rule filtering for one lint run."""

    select: Optional[Sequence[str]] = None   # only these rule ids
    ignore: Sequence[str] = ()               # minus these rule ids
    #: Emit SIM100 for ``simlint: ignore`` comments that matched no
    #: finding.  On by default: a stale suppression is a latent bug
    #: (the hazard it hid may have moved one line down).
    report_unused: bool = True

    def __post_init__(self) -> None:
        for rule_id in [*(self.select or ()), *self.ignore]:
            if rule_id not in RULES:
                known = ", ".join(sorted(RULES))
                raise ValueError(
                    f"unknown rule {rule_id!r} (known: {known})"
                )

    def enabled(self, rule_id: str) -> bool:
        if self.select is not None and rule_id not in self.select:
            return False
        return rule_id not in self.ignore


@dataclass
class LintReport:
    """Findings plus run statistics (cache effectiveness, timing)."""

    findings: List[Finding]
    files: int = 0
    analyzed: int = 0      # files parsed + visited this run
    cached: int = 0        # files served from the incremental cache
    elapsed_s: float = 0.0


# --------------------------------------------------------------------------
# Suppressions
# --------------------------------------------------------------------------

def extract_suppressions(source: str) -> Dict[int, Dict[str, Any]]:
    """Line -> ``{"rules": [...], "col": n}`` from real comment tokens.

    Only COMMENT tokens count: a suppression spelled inside a string
    literal or docstring does not suppress (and is not reported as
    unused).  Falls back to a line-regex scan if tokenization fails,
    which can only happen for files that also fail ``ast.parse``.
    """
    comments: List[Tuple[int, int, str]] = []
    try:
        reader = io.StringIO(source).readline
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                comments.append(
                    (token.start[0], token.start[1] + 1, token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            index = line.find("#")
            if index >= 0:
                comments.append((lineno, index + 1, line[index:]))
    suppressions: Dict[int, Dict[str, Any]] = {}
    for lineno, col, text in comments:
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules_text = match.group("rules")
        if rules_text is None:
            rules = [ALL_RULES]
        else:
            parsed = sorted({r.strip().upper()
                             for r in rules_text.split(",") if r.strip()})
            rules = parsed or [ALL_RULES]
        suppressions[lineno] = {"rules": rules, "col": col}
    return suppressions


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed rule ids (or ``{"*"}``)."""
    return {line: set(info["rules"])
            for line, info in extract_suppressions(source).items()}


def _matches(rule_id: str, rules: Sequence[str]) -> bool:
    return ALL_RULES in rules or rule_id in rules


# --------------------------------------------------------------------------
# Per-file analysis (phase 2; cacheable and process-parallel)
# --------------------------------------------------------------------------

def _analyze_source(path: str, source: str) -> Dict[str, Any]:
    """Raw per-file payload; raises SyntaxError on unparsable input."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    findings = list(check_source(path, tree, lines))
    summary = build_module_summary(path, tree, lines)
    findings.extend(check_cache_completeness(summary, lines))
    return {
        "findings": [asdict(finding) for finding in findings],
        "suppressions": {
            str(line): info
            for line, info in extract_suppressions(source).items()
        },
        "summary": summary,
    }


def _syntax_error_analysis(path: str, error: SyntaxError) -> Dict[str, Any]:
    finding = Finding(
        rule_id="SIM000", severity="error", path=path,
        line=error.lineno or 1, column=(error.offset or 0) + 1,
        message=f"syntax error: {error.msg}",
        hint="simlint only checks files that parse",
    )
    return {"findings": [asdict(finding)], "suppressions": {},
            "summary": None}


def _unreadable_analysis(path: str, error: Exception) -> Dict[str, Any]:
    finding = Finding(
        rule_id="SIM000", severity="error", path=path,
        line=1, column=1, message=f"unreadable file: {error}",
        hint="fix the file encoding or permissions",
    )
    return {"findings": [asdict(finding)], "suppressions": {},
            "summary": None}


def _pool_worker(item: Tuple[str, str]) -> Tuple[str, Dict[str, Any]]:
    """Top-level (picklable) per-file analysis for ``--jobs``."""
    path, source = item
    try:
        return path, _analyze_source(path, source)
    except SyntaxError as error:
        return path, _syntax_error_analysis(path, error)


# --------------------------------------------------------------------------
# Finalize (phase 4)
# --------------------------------------------------------------------------

def _finalize(per_file: Dict[str, Dict[str, Any]],
              project_findings: List[Finding],
              subsumed: Set[Tuple[str, int]],
              options: LintOptions,
              sources: Dict[str, Sequence[str]]) -> List[Finding]:
    raw: List[Finding] = list(project_findings)
    for analysis in per_file.values():
        raw.extend(Finding(**data) for data in analysis["findings"])

    # A suppression is "used" when ANY raw finding matches it - before
    # select/ignore filtering and before SIM011 subsumption, so the
    # unused-suppression verdict never depends on this run's options.
    used: Set[Tuple[str, int]] = set()
    for finding in raw:
        if finding.rule_id in _UNSUPPRESSABLE:
            continue
        info = per_file.get(finding.path, {}).get(
            "suppressions", {}).get(str(finding.line))
        if info is not None and _matches(finding.rule_id, info["rules"]):
            used.add((finding.path, finding.line))

    subsume = options.enabled("SIM011")
    kept: List[Finding] = []
    for finding in raw:
        if finding.rule_id != "SIM000":
            if not options.enabled(finding.rule_id):
                continue
            if (subsume and finding.rule_id in _SUBSUMED_BY_SIM011
                    and (finding.path, finding.line) in subsumed):
                continue
            info = per_file.get(finding.path, {}).get(
                "suppressions", {}).get(str(finding.line))
            if info is not None and _matches(finding.rule_id, info["rules"]):
                continue
        kept.append(finding)

    if options.report_unused and options.enabled("SIM100"):
        meta = RULES["SIM100"]
        for path in sorted(per_file):
            suppressions = per_file[path].get("suppressions", {})
            for line_text in sorted(suppressions, key=int):
                line = int(line_text)
                if (path, line) in used:
                    continue
                info = suppressions[line_text]
                listed = ", ".join(info["rules"])
                lines = sources.get(path)
                snippet = ""
                if lines is not None and 1 <= line <= len(lines):
                    snippet = str(lines[line - 1]).strip()
                kept.append(Finding(
                    rule_id="SIM100", severity=meta.severity, path=path,
                    line=line, column=int(info["col"]),
                    message=f"suppression ignore[{listed}] matches no "
                            "finding on this line",
                    hint=meta.hint, snippet=snippet,
                ))
    return sort_findings(kept)


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------

def lint_source(source: str, path: str = "<string>",
                options: Optional[LintOptions] = None) -> List[Finding]:
    """Lint one source string; raises SyntaxError on unparsable input."""
    options = options if options is not None else LintOptions()
    analysis = _analyze_source(path, source)
    per_file = {path: analysis}
    sources: Dict[str, Sequence[str]] = {path: source.splitlines()}
    summaries = [analysis["summary"]] if analysis["summary"] else []
    project_findings, subsumed = check_project(summaries, sources)
    return _finalize(per_file, project_findings, subsumed, options, sources)


def discover_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated ``*.py`` list."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            seen.update(path.rglob("*.py"))
        elif path.suffix == ".py" and path.exists():
            seen.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(seen)


def analyze_paths(paths: Iterable[Any],
                  options: Optional[LintOptions] = None, *,
                  jobs: int = 1,
                  cache_dir: Optional[Path] = None) -> LintReport:
    """Lint every Python file under ``paths`` with full statistics.

    ``cache_dir`` enables the incremental cache (per-file results keyed
    by content hash + :data:`RULESET_VERSION`); ``jobs > 1`` analyses
    cache misses on a process pool.  Unparsable/unreadable files surface
    as synthetic ``SIM000`` error findings rather than aborting the run,
    so one syntax error cannot hide every other finding in a tree.
    """
    options = options if options is not None else LintOptions()
    started = time.perf_counter()   # simlint: ignore[SIM003] -- lint-run wall time is host-side tooling statistics
    files = discover_files(Path(p) for p in paths)

    cache: Optional[AnalysisCache] = None
    if cache_dir is not None:
        cache = AnalysisCache(Path(cache_dir), RULESET_VERSION)

    per_file: Dict[str, Dict[str, Any]] = {}
    sources: Dict[str, Sequence[str]] = {}
    pending: List[Tuple[str, str, str]] = []   # (path, source, digest)
    cached_count = 0

    for file_path in files:
        path = str(file_path)
        try:
            source = file_path.read_text()
        except (OSError, UnicodeDecodeError) as error:
            per_file[path] = _unreadable_analysis(path, error)
            continue
        sources[path] = source.splitlines()
        digest = hashlib.sha256(source.encode()).hexdigest()
        entry = cache.get(path, digest) if cache is not None else None
        if entry is not None:
            per_file[path] = entry
            cached_count += 1
        else:
            pending.append((path, source, digest))

    if jobs > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            analysed = dict(pool.map(
                _pool_worker, [(p, s) for p, s, _ in pending]))
        for path, _source, digest in pending:
            per_file[path] = analysed[path]
            if cache is not None:
                cache.put(path, digest, analysed[path])
    else:
        for path, source, digest in pending:
            analysis = _pool_worker((path, source))[1]
            per_file[path] = analysis
            if cache is not None:
                cache.put(path, digest, analysis)

    if cache is not None:
        cache.save()

    summaries = [analysis["summary"] for _, analysis in sorted(per_file.items())
                 if analysis["summary"] is not None]
    project_findings, subsumed = check_project(summaries, sources)
    findings = _finalize(per_file, project_findings, subsumed, options,
                         sources)
    elapsed = time.perf_counter() - started   # simlint: ignore[SIM003] -- lint-run wall time is host-side tooling statistics
    return LintReport(
        findings=findings, files=len(files), analyzed=len(pending),
        cached=cached_count, elapsed_s=elapsed,
    )


def lint_paths(paths: Iterable[Any],
               options: Optional[LintOptions] = None) -> List[Finding]:
    """Back-compat wrapper over :func:`analyze_paths` (findings only)."""
    return analyze_paths(paths, options).findings
