"""simlint engine: file discovery, suppression comments, rule selection.

The engine turns paths into findings:

1. discover ``*.py`` files under each requested path;
2. parse each file and run the rule set (:mod:`repro.lint.rules`);
3. drop findings suppressed by a same-line ``# simlint: ignore[...]``
   comment;
4. apply ``--select`` / ``--ignore`` rule filtering;
5. return findings sorted by location.

Suppression syntax (mirrors ``noqa``)::

    risky_line()  # simlint: ignore[SIM003] -- benchmarking wall-clock
    risky_line()  # simlint: ignore          (suppresses every rule)

Anything after the closing bracket is a free-form justification; writing
one is strongly encouraged and the repo's own suppressions all carry one.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint.findings import Finding, sort_findings
from repro.lint.rules import RULES, check_source

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9,\s]*)\])?"
)

#: Suppression entry meaning "every rule".
ALL_RULES = "*"


@dataclass(frozen=True)
class LintOptions:
    """Rule filtering for one lint run."""

    select: Optional[Sequence[str]] = None   # only these rule ids
    ignore: Sequence[str] = ()               # minus these rule ids

    def __post_init__(self) -> None:
        for rule_id in [*(self.select or ()), *self.ignore]:
            if rule_id not in RULES:
                known = ", ".join(sorted(RULES))
                raise ValueError(
                    f"unknown rule {rule_id!r} (known: {known})"
                )

    def enabled(self, rule_id: str) -> bool:
        if self.select is not None and rule_id not in self.select:
            return False
        return rule_id not in self.ignore


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed rule ids (or ``{"*"}``)."""
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules_text = match.group("rules")
        if rules_text is None:
            suppressions[lineno] = {ALL_RULES}
            continue
        rules = {r.strip().upper() for r in rules_text.split(",") if r.strip()}
        suppressions[lineno] = rules or {ALL_RULES}
    return suppressions


def _suppressed(finding: Finding,
                suppressions: Dict[int, Set[str]]) -> bool:
    rules = suppressions.get(finding.line)
    if rules is None:
        return False
    return ALL_RULES in rules or finding.rule_id in rules


def lint_source(source: str, path: str = "<string>",
                options: Optional[LintOptions] = None) -> List[Finding]:
    """Lint one source string; raises SyntaxError on unparsable input."""
    options = options if options is not None else LintOptions()
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    suppressions = parse_suppressions(source)
    findings = [
        finding
        for finding in check_source(path, tree, lines)
        if options.enabled(finding.rule_id)
        and not _suppressed(finding, suppressions)
    ]
    return sort_findings(findings)


def discover_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated ``*.py`` list."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            seen.update(path.rglob("*.py"))
        elif path.suffix == ".py" and path.exists():
            seen.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(seen)


def lint_paths(paths: Iterable[Path],
               options: Optional[LintOptions] = None) -> List[Finding]:
    """Lint every Python file under ``paths``.

    Unparsable files surface as a synthetic ``SIM000`` error finding rather
    than aborting the run, so one syntax error cannot hide every other
    finding in a tree.
    """
    findings: List[Finding] = []
    for file_path in discover_files(Path(p) for p in paths):
        try:
            source = file_path.read_text()
        except (OSError, UnicodeDecodeError) as error:
            findings.append(Finding(
                rule_id="SIM000", severity="error", path=str(file_path),
                line=1, column=1, message=f"unreadable file: {error}",
                hint="fix the file encoding or permissions",
            ))
            continue
        try:
            findings.extend(lint_source(source, str(file_path), options))
        except SyntaxError as error:
            findings.append(Finding(
                rule_id="SIM000", severity="error", path=str(file_path),
                line=error.lineno or 1, column=(error.offset or 0) + 1,
                message=f"syntax error: {error.msg}",
                hint="simlint only checks files that parse",
            ))
    return sort_findings(findings)
