"""SARIF 2.1.0 output for simlint findings.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning ingests; ``repro lint
--format sarif`` emits one run with the full rule catalogue in
``tool.driver.rules`` and every finding as a ``result`` carrying its
rule index, level, message (including SIM011 witness paths), and
physical location.

:func:`validate_sarif` re-checks the structural requirements of the
2.1.0 schema that matter for ingestion (required properties, level
vocabulary, rule-id consistency, 1-based regions) without needing a
schema validator installed; the test suite runs it over generated
reports and CI uploads them via ``codeql-action/upload-sarif``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.lint.findings import Finding
from repro.lint.rules import RULES, RULESET_VERSION

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: simlint severity -> SARIF result level.
_LEVELS = {"error": "error", "warning": "warning"}

#: The SARIF 2.1.0 ``level`` vocabulary.
VALID_LEVELS = frozenset({"none", "note", "warning", "error"})


def _rule_entry(rule_id: str) -> Dict[str, Any]:
    info = RULES.get(rule_id)
    if info is None:
        # Synthetic rules (SIM000 parse/read errors) have no catalogue
        # entry; emit a minimal valid descriptor so every result's
        # ruleId resolves.
        return {
            "id": rule_id,
            "name": "file-error",
            "shortDescription": {"text": "file could not be analysed"},
            "defaultConfiguration": {"level": "error"},
        }
    return {
        "id": info.rule_id,
        "name": info.name,
        "shortDescription": {"text": info.summary},
        "fullDescription": {"text": info.summary},
        "help": {"text": info.hint},
        "defaultConfiguration": {"level": _LEVELS[info.severity]},
    }


def sarif_report(findings: Sequence[Finding]) -> Dict[str, Any]:
    """Findings -> a complete SARIF 2.1.0 document (as a dict)."""
    rule_ids = sorted({f.rule_id for f in findings} | set(RULES))
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results: List[Dict[str, Any]] = []
    for finding in findings:
        results.append({
            "ruleId": finding.rule_id,
            "ruleIndex": rule_index[finding.rule_id],
            "level": _LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": max(1, finding.column),
                    },
                },
            }],
        })
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simlint",
                    "informationUri":
                        "https://example.invalid/repro/docs/static-analysis",
                    "version": RULESET_VERSION,
                    "rules": [_rule_entry(rule_id) for rule_id in rule_ids],
                },
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def sarif_json(findings: Sequence[Finding]) -> str:
    return json.dumps(sarif_report(findings), indent=2, sort_keys=True)


def validate_sarif(document: Any) -> List[str]:
    """Structural 2.1.0 conformance errors (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("version") != SARIF_VERSION:
        errors.append(f"version must be {SARIF_VERSION!r}")
    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        return [*errors, "runs must be a non-empty array"]
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        if not isinstance(run, dict):
            errors.append(f"{where} is not an object")
            continue
        driver = run.get("tool", {}).get("driver") \
            if isinstance(run.get("tool"), dict) else None
        if not isinstance(driver, dict) or not isinstance(
                driver.get("name"), str):
            errors.append(f"{where}.tool.driver.name missing")
            continue
        rules = driver.get("rules", [])
        known_ids = set()
        for rule_index, rule in enumerate(rules):
            rwhere = f"{where}.tool.driver.rules[{rule_index}]"
            if not isinstance(rule, dict) or not isinstance(
                    rule.get("id"), str):
                errors.append(f"{rwhere}.id missing")
                continue
            known_ids.add(rule["id"])
            short = rule.get("shortDescription")
            if not (isinstance(short, dict)
                    and isinstance(short.get("text"), str)):
                errors.append(f"{rwhere}.shortDescription.text missing")
        for result_index, result in enumerate(run.get("results", [])):
            rwhere = f"{where}.results[{result_index}]"
            if not isinstance(result, dict):
                errors.append(f"{rwhere} is not an object")
                continue
            rule_id = result.get("ruleId")
            if not isinstance(rule_id, str):
                errors.append(f"{rwhere}.ruleId missing")
            elif known_ids and rule_id not in known_ids:
                errors.append(f"{rwhere}.ruleId {rule_id!r} not in rules")
            if result.get("level") not in VALID_LEVELS:
                errors.append(f"{rwhere}.level invalid")
            message = result.get("message")
            if not (isinstance(message, dict)
                    and isinstance(message.get("text"), str)):
                errors.append(f"{rwhere}.message.text missing")
            for loc_index, location in enumerate(result.get("locations", [])):
                lwhere = f"{rwhere}.locations[{loc_index}]"
                physical = location.get("physicalLocation") \
                    if isinstance(location, dict) else None
                if not isinstance(physical, dict):
                    errors.append(f"{lwhere}.physicalLocation missing")
                    continue
                artifact = physical.get("artifactLocation")
                if not (isinstance(artifact, dict)
                        and isinstance(artifact.get("uri"), str)):
                    errors.append(f"{lwhere}...artifactLocation.uri missing")
                region = physical.get("region")
                if isinstance(region, dict):
                    start = region.get("startLine")
                    if not isinstance(start, int) or start < 1:
                        errors.append(f"{lwhere}...region.startLine invalid")
    return errors
