"""``repro lint`` subcommand: run simlint, report, optionally benchmark.

Exit codes: 0 = clean, 1 = findings, 2 = usage error.  ``--bench`` instead
measures the runtime sanitizer's overhead on the smoke-sweep configs and
verifies sanitized results are bit-identical to unsanitized ones.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.lint.engine import LintOptions, lint_paths
from repro.lint.findings import findings_to_json, summarize
from repro.lint.rules import RULES

#: Default lint target when no paths are given.
DEFAULT_PATHS = ("src",)

#: Workload/policy grid for ``--bench`` (mirrors the CI smoke sweep).
BENCH_WORKLOADS = ("lbm", "stream")
BENCH_POLICIES = ("Norm", "BE-Mellow+SC")
BENCH_SCALE = 0.05


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--ignore", default=None,
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--bench", action="store_true",
                        help="measure sanitizer overhead on the smoke sweep "
                             "instead of linting")


def _split_rules(text: Optional[str]) -> Optional[List[str]]:
    if text is None:
        return None
    return [r.strip().upper() for r in text.split(",") if r.strip()]


def _print_rule_catalogue() -> None:
    for info in RULES.values():
        print(f"{info.rule_id} {info.name} [{info.severity}]")
        print(f"    {info.summary}")
        print(f"    fix: {info.hint}")


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        _print_rule_catalogue()
        return 0
    if args.bench:
        return run_bench()
    try:
        options = LintOptions(
            select=_split_rules(args.select),
            ignore=_split_rules(args.ignore) or (),
        )
        findings = lint_paths(args.paths, options)
    except (ValueError, FileNotFoundError) as error:
        print(error, file=sys.stderr)
        return 2
    if args.format == "json":
        print(findings_to_json(findings))
    else:
        for finding in findings:
            print(finding.format_text())
        counts = summarize(findings)
        if findings:
            print(
                f"\n{counts['total']} finding(s): "
                f"{counts['by_severity']['error']} error(s), "
                f"{counts['by_severity']['warning']} warning(s)"
            )
        else:
            print("simlint: no findings")
    return 1 if findings else 0


# --------------------------------------------------------------------------
# Sanitizer overhead benchmark
# --------------------------------------------------------------------------

def _bench_configs():
    from dataclasses import replace

    from repro.sim.config import SimConfig
    configs = [
        SimConfig(workload=workload, policy=policy).scaled(BENCH_SCALE)
        for workload in BENCH_WORKLOADS
        for policy in BENCH_POLICIES
    ]
    return configs, [replace(c, sanitize=True) for c in configs]


def _time_runs(configs) -> float:
    from repro.sim.system import run_simulation
    start = time.perf_counter()   # simlint: ignore[SIM003] -- measuring host runtime is the point of --bench
    for config in configs:
        run_simulation(config)
    return time.perf_counter() - start   # simlint: ignore[SIM003] -- measuring host runtime is the point of --bench


def run_bench() -> int:
    """Time the smoke sweep with and without the sanitizer armed.

    Also cross-checks that sanitize mode leaves every result bit-identical
    (the strong form of "the sanitizer is read-only"); a mismatch is a bug
    in a sanitizer hook and exits nonzero.
    """
    from repro.experiments.runner import result_to_dict
    from repro.sim.system import run_simulation

    plain_configs, sanitized_configs = _bench_configs()
    # Warm interpreter caches so the two timed passes are comparable.
    run_simulation(plain_configs[0])

    plain_s = _time_runs(plain_configs)
    sanitized_s = _time_runs(sanitized_configs)
    overhead = (sanitized_s / plain_s - 1.0) if plain_s > 0 else 0.0

    grid = ",".join(BENCH_WORKLOADS) + " x " + ",".join(BENCH_POLICIES)
    print(f"sanitizer bench ({grid} @ scale {BENCH_SCALE}):")
    print(f"  unsanitized: {plain_s:8.3f} s")
    print(f"  sanitized:   {sanitized_s:8.3f} s")
    print(f"  overhead:    {overhead:+8.1%}")

    for plain, sanitized in zip(plain_configs, sanitized_configs):
        left = result_to_dict(run_simulation(plain))
        right = result_to_dict(run_simulation(sanitized))
        if left != right:
            print(
                f"MISMATCH: sanitize mode changed results for "
                f"{plain.workload}/{plain.policy_name}",
                file=sys.stderr,
            )
            return 1
    print("  results:     bit-identical with sanitizer armed")
    return 0
