"""``repro lint`` and ``repro check`` subcommands.

``repro lint`` runs simlint with the incremental cache and can emit
text, JSON, or SARIF 2.1.0.  Exit codes: 0 = clean, 1 = findings,
2 = usage error.  ``--bench`` instead measures the runtime sanitizer's
overhead on the smoke-sweep configs and verifies sanitized results are
bit-identical to unsanitized ones.

``repro check`` is the umbrella verb: simlint over the whole tree plus
``ruff`` and ``mypy`` when those tools are installed.  Missing tools
are skipped with a note by default (the local environment need not
carry them); CI passes ``--require-tools`` to turn a missing tool into
a failure instead of a silent gap.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.lint.engine import LintOptions, LintReport, analyze_paths
from repro.lint.findings import findings_to_json, summarize
from repro.lint.rules import RULES
from repro.lint.sarif import sarif_json

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.sim.config import SimConfig

#: Default lint target when no paths are given.
DEFAULT_PATHS = ("src",)

#: Default incremental-cache location (relative to the CWD).
DEFAULT_CACHE_DIR = ".simlint_cache"

#: What ``repro check`` lints: the whole tree, not just src.
CHECK_PATHS = ("src", "tests", "benchmarks", "examples")

#: Workload/policy grid for ``--bench`` (mirrors the CI smoke sweep).
BENCH_WORKLOADS = ("lbm", "stream")
BENCH_POLICIES = ("Norm", "BE-Mellow+SC")
BENCH_SCALE = 0.05


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text",
                        help="report format (default: text)")
    parser.add_argument("--output", default=None,
                        help="write the report to this file instead of stdout")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--ignore", default=None,
                        help="comma-separated rule ids to skip")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel analysis processes (default 1)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="incremental cache directory "
                             f"(default {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental cache for this run")
    parser.add_argument("--stats", action="store_true",
                        help="print cache/timing statistics to stderr")
    parser.add_argument("--report-unused-suppressions",
                        dest="report_unused",
                        action=argparse.BooleanOptionalAction, default=True,
                        help="emit SIM100 for suppressions that matched "
                             "no finding (default: on)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--bench", action="store_true",
                        help="measure sanitizer overhead on the smoke sweep "
                             "instead of linting")


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", default=list(CHECK_PATHS),
                        help="directories to check "
                             f"(default: {' '.join(CHECK_PATHS)})")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel simlint processes (default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable simlint's incremental cache")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="simlint cache directory "
                             f"(default {DEFAULT_CACHE_DIR})")
    parser.add_argument("--require-tools", action="store_true",
                        help="fail when ruff or mypy is not installed "
                             "instead of skipping it (CI mode)")
    parser.add_argument("--sarif", default=None,
                        help="also write the simlint findings as SARIF "
                             "to this file")


def _split_rules(text: Optional[str]) -> Optional[List[str]]:
    if text is None:
        return None
    return [r.strip().upper() for r in text.split(",") if r.strip()]


def _print_rule_catalogue() -> None:
    for info in RULES.values():
        print(f"{info.rule_id} {info.name} [{info.severity}]")
        print(f"    {info.summary}")
        print(f"    fix: {info.hint}")


def _emit(text: str, output: Optional[str]) -> None:
    if output is None:
        print(text)
    else:
        Path(output).write_text(text + "\n")


def _run_lint(args: argparse.Namespace) -> Tuple[Optional[LintReport], int]:
    """Shared lint driver; returns (report, exit_code)."""
    try:
        options = LintOptions(
            select=_split_rules(args.select),
            ignore=_split_rules(args.ignore) or (),
            report_unused=args.report_unused,
        )
        cache_dir = None if args.no_cache else Path(args.cache_dir)
        report = analyze_paths(args.paths, options,
                               jobs=args.jobs, cache_dir=cache_dir)
    except (ValueError, FileNotFoundError) as error:
        print(error, file=sys.stderr)
        return None, 2
    return report, 1 if report.findings else 0


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        _print_rule_catalogue()
        return 0
    if args.bench:
        return run_bench()
    report, code = _run_lint(args)
    if report is None:
        return code
    findings = report.findings
    if args.format == "json":
        _emit(findings_to_json(findings), args.output)
    elif args.format == "sarif":
        _emit(sarif_json(findings), args.output)
    else:
        lines = [finding.format_text() for finding in findings]
        counts = summarize(findings)
        if findings:
            lines.append(
                f"\n{counts['total']} finding(s): "
                f"{counts['by_severity']['error']} error(s), "
                f"{counts['by_severity']['warning']} warning(s)"
            )
        else:
            lines.append("simlint: no findings")
        _emit("\n".join(lines), args.output)
    if args.stats:
        print(
            f"simlint: {report.files} file(s), {report.analyzed} analyzed, "
            f"{report.cached} from cache, {report.elapsed_s:.2f}s",
            file=sys.stderr,
        )
    return code


# --------------------------------------------------------------------------
# repro check: simlint + ruff + mypy under one verb
# --------------------------------------------------------------------------

def _run_tool(name: str, command: List[str],
              require: bool) -> Tuple[str, int]:
    """Run an external checker; returns (status_word, exit_code)."""
    if shutil.which(command[0]) is None:
        if require:
            print(f"check: {name}: NOT INSTALLED (--require-tools)",
                  file=sys.stderr)
            return "missing", 1
        return "skipped (not installed)", 0
    completed = subprocess.run(command, check=False)
    if completed.returncode != 0:
        return "FAILED", 1
    return "ok", 0


def cmd_check(args: argparse.Namespace) -> int:
    """Umbrella static checking: simlint, then ruff, then mypy."""
    failures = 0
    statuses: List[Tuple[str, str]] = []

    report, lint_code = _run_lint(argparse.Namespace(
        paths=args.paths, select=None, ignore=None,
        report_unused=True, jobs=args.jobs,
        no_cache=args.no_cache, cache_dir=args.cache_dir,
    ))
    if report is None:
        return 2
    for finding in report.findings:
        print(finding.format_text())
    if args.sarif is not None:
        Path(args.sarif).write_text(sarif_json(report.findings) + "\n")
    statuses.append((
        "simlint",
        "ok" if lint_code == 0 else f"{len(report.findings)} finding(s)",
    ))
    failures += lint_code
    print(
        f"check: simlint {report.files} file(s), "
        f"{report.analyzed} analyzed, {report.cached} from cache, "
        f"{report.elapsed_s:.2f}s",
        file=sys.stderr,
    )

    for name, command in (
        ("ruff", ["ruff", "check", *args.paths]),
        ("mypy", ["mypy"]),
    ):
        status, code = _run_tool(name, command, args.require_tools)
        statuses.append((name, status))
        failures += code

    width = max(len(name) for name, _ in statuses)
    for name, status in statuses:
        print(f"check: {name:<{width}}  {status}")
    return 1 if failures else 0


# --------------------------------------------------------------------------
# Sanitizer overhead benchmark
# --------------------------------------------------------------------------

def _bench_configs() -> Tuple[List["SimConfig"], List["SimConfig"]]:
    from dataclasses import replace

    from repro.sim.config import SimConfig
    configs = [
        SimConfig(workload=workload, policy=policy).scaled(BENCH_SCALE)
        for workload in BENCH_WORKLOADS
        for policy in BENCH_POLICIES
    ]
    return configs, [replace(c, sanitize=True) for c in configs]


def _time_runs(configs: Sequence["SimConfig"]) -> float:
    from repro.sim.system import run_simulation
    start = time.perf_counter()   # simlint: ignore[SIM003] -- measuring host runtime is the point of --bench
    for config in configs:
        run_simulation(config)
    return time.perf_counter() - start   # simlint: ignore[SIM003] -- measuring host runtime is the point of --bench


def run_bench() -> int:
    """Time the smoke sweep with and without the sanitizer armed.

    Also cross-checks that sanitize mode leaves every result bit-identical
    (the strong form of "the sanitizer is read-only"); a mismatch is a bug
    in a sanitizer hook and exits nonzero.
    """
    from repro.experiments.runner import result_to_dict
    from repro.sim.system import run_simulation

    plain_configs, sanitized_configs = _bench_configs()
    # Warm interpreter caches so the two timed passes are comparable.
    run_simulation(plain_configs[0])

    plain_s = _time_runs(plain_configs)
    sanitized_s = _time_runs(sanitized_configs)
    overhead = (sanitized_s / plain_s - 1.0) if plain_s > 0 else 0.0

    grid = ",".join(BENCH_WORKLOADS) + " x " + ",".join(BENCH_POLICIES)
    print(f"sanitizer bench ({grid} @ scale {BENCH_SCALE}):")
    print(f"  unsanitized: {plain_s:8.3f} s")
    print(f"  sanitized:   {sanitized_s:8.3f} s")
    print(f"  overhead:    {overhead:+8.1%}")

    for plain, sanitized in zip(plain_configs, sanitized_configs):
        left = result_to_dict(run_simulation(plain))
        right = result_to_dict(run_simulation(sanitized))
        if left != right:
            print(
                f"MISMATCH: sanitize mode changed results for "
                f"{plain.workload}/{plain.policy_name}",
                file=sys.stderr,
            )
            return 1
    print("  results:     bit-identical with sanitizer armed")
    return 0
