"""simlint: simulator-aware static analysis + runtime invariant sanitizer.

Two layers share this package:

* the **static analyzer** (:mod:`repro.lint.rules`, :mod:`repro.lint.engine`)
  runs AST checks tuned to this codebase's reproducibility hazards and
  backs the ``repro lint`` CLI;
* the **runtime sanitizer** (:mod:`repro.lint.sanitize`) arms invariant
  checks inside the simulator when ``REPRO_SANITIZE=1`` or
  ``SimConfig(sanitize=True)``.

See ``docs/static-analysis.md`` for the rule catalogue and invariant list.
"""

from repro.lint.engine import (LintOptions, LintReport, analyze_paths,
                               lint_paths, lint_source)
from repro.lint.findings import Finding, RuleInfo, summarize
from repro.lint.rules import RULES, RULESET_VERSION
from repro.lint.sanitize import InvariantViolation, env_enabled, resolve

__all__ = [
    "Finding",
    "InvariantViolation",
    "LintOptions",
    "LintReport",
    "RULES",
    "RULESET_VERSION",
    "RuleInfo",
    "analyze_paths",
    "env_enabled",
    "lint_paths",
    "lint_source",
    "resolve",
    "summarize",
]
