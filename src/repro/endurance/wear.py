"""Wear accounting and lifetime computation.

The simulator records wear in *normal-write equivalents* (see
:meth:`repro.endurance.model.EnduranceModel.damage_per_write`).  Lifetime is
then derived under the paper's assumptions:

* the observed execution window repeats cyclically forever;
* Start-Gap wear leveling spreads wear across a bank at efficiency
  ``leveling_efficiency`` (0.9, the paper's own Ratio_quota; the Start-Gap
  paper reports ~0.95 of ideal);
* the system dies when the first block of the most-worn bank reaches its
  endurance limit.

With per-bank damage D (normal-write equivalents) accumulated over a window
of T_sim nanoseconds, a bank of N_blk blocks with per-block endurance E lives

    lifetime = T_sim * eta * N_blk * E / D.

This is the same algebra the paper's Wear Quota bound uses
(WearBound_bank = BlkNum * Endur_blk * T_sample / T_lifetime * Ratio_quota).

For small memories (unit tests, detailed studies) a per-block mode tracks
exact damage per physical block through a live Start-Gap remapper.

With the sanitizer armed (``sanitize=True``, or ``REPRO_SANITIZE=1`` when
the argument is left at ``None``) every recorded write is checked for the
wear-accounting invariants: fractions and slow factors in their legal
ranges, and per-bank damage monotone nondecreasing.  The companion
conservation check - controller-issued writes equal the sum of per-bank
recorded writes - lives in
:meth:`repro.memory.controller.MemoryController._record_wear`, the other
side of that seam.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import params
from repro.endurance.model import EnduranceModel
from repro.endurance.startgap import StartGap
from repro.lint.sanitize import check, resolve


@dataclass
class BankWearRecord:
    """Per-bank tallies sufficient to recompute lifetime for any exponent."""

    normal_writes: float = 0.0
    slow_writes_by_factor: Dict[float, float] = field(default_factory=dict)

    def add(self, slow_factor: float, amount: float = 1.0) -> None:
        if slow_factor == 1.0:
            self.normal_writes += amount
        else:
            self.slow_writes_by_factor[slow_factor] = (
                self.slow_writes_by_factor.get(slow_factor, 0.0) + amount
            )

    def damage(self, model: EnduranceModel) -> float:
        """Total damage in normal-write equivalents under ``model``."""
        total = self.normal_writes * model.damage_per_write(1.0)
        for factor, count in self.slow_writes_by_factor.items():
            total += count * model.damage_per_write(factor)
        return total

    @property
    def total_writes(self) -> float:
        return self.normal_writes + sum(self.slow_writes_by_factor.values())

    def reset(self) -> None:
        """Zero the tallies in place (start of a measurement window)."""
        self.normal_writes = 0.0
        self.slow_writes_by_factor.clear()

    def copy(self) -> "BankWearRecord":
        """Independent snapshot of the tallies.

        The record is a float plus one flat dict, so a shallow dict copy is
        a full deep copy; ``RunResult`` collection uses this instead of
        ``copy.deepcopy``, which costs ~30x more per record.
        """
        return BankWearRecord(
            normal_writes=self.normal_writes,
            slow_writes_by_factor=dict(self.slow_writes_by_factor),
        )


class WearTracker:
    """Tracks wear per bank and converts it to a system lifetime."""

    def __init__(
        self,
        num_banks: int,
        blocks_per_bank: int,
        model: Optional[EnduranceModel] = None,
        leveling_efficiency: float = params.START_GAP_EFFICIENCY,
        detailed: bool = False,
        start_gap_psi: int = params.START_GAP_PSI,
        sanitize: Optional[bool] = None,
    ) -> None:
        if num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        if blocks_per_bank < 1:
            raise ValueError("blocks_per_bank must be >= 1")
        if not 0 < leveling_efficiency <= 1.0:
            raise ValueError("leveling_efficiency must be in (0, 1]")
        self.num_banks = num_banks
        self.blocks_per_bank = blocks_per_bank
        self.model = model if model is not None else EnduranceModel()
        self.leveling_efficiency = leveling_efficiency
        self.records: List[BankWearRecord] = [
            BankWearRecord() for _ in range(num_banks)
        ]
        self.detailed = detailed
        self._sanitize = resolve(sanitize)
        self._damage_watermarks: List[float] = [0.0] * num_banks
        self.remappers: List[StartGap]
        self.block_damage: List[List[float]]
        if detailed:
            self.remappers = [
                StartGap(blocks_per_bank, psi=start_gap_psi,
                         sanitize=self._sanitize)
                for _ in range(num_banks)
            ]
            self.block_damage = [
                [0.0] * (blocks_per_bank + 1) for _ in range(num_banks)
            ]
        else:
            self.remappers = []
            self.block_damage = []
        # Epoch-buffered fast path (see record_write_fast): whole writes
        # (fraction == 1.0) accumulate in flat per-bank buffers - a float
        # count of normal writes and an insertion-ordered {factor: count}
        # dict per bank - and are folded into the records by flush_pending.
        # Counts of whole writes are integers, which add exactly in any
        # order, so the flushed records are bit-identical to per-write
        # updates.  Fractional writes (cancellations, Flip-N-Write scaling)
        # take the reference path, which flushes first to preserve the
        # factor-dict insertion order the JSON exports depend on.
        self._buffering = not detailed and not self._sanitize
        self._pend_normal: List[float] = [0.0] * num_banks
        self._pend_slow: List[Dict[float, float]] = [
            {} for _ in range(num_banks)
        ]
        self._pend_dirty = False

    def record_write(
        self, bank: int, slow_factor: float, block: Optional[int] = None,
        fraction: float = 1.0,
    ) -> None:
        """Account ``fraction`` of one write at ``slow_factor`` to ``bank``.

        ``fraction`` < 1 models a cancelled write attempt that only partially
        stressed the cell.
        """
        if self._pend_dirty:
            self.flush_pending()
        if self._sanitize:
            check(
                0 <= bank < self.num_banks, "wear-conservation",
                "write recorded to a bank outside the tracked range",
                bank=bank, num_banks=self.num_banks,
            )
            check(
                fraction >= 0.0, "wear-monotonicity",
                "negative write fraction would erase recorded damage",
                bank=bank, fraction=fraction, slow_factor=slow_factor,
            )
            check(
                slow_factor >= 1.0, "wear-monotonicity",
                "slow factor below 1.0 has no defined damage",
                bank=bank, slow_factor=slow_factor,
            )
        self.records[bank].add(slow_factor, fraction)
        if self._sanitize:
            damage = self.records[bank].damage(self.model)
            check(
                damage >= self._damage_watermarks[bank], "wear-monotonicity",
                "per-bank damage decreased",
                bank=bank, damage=damage,
                watermark=self._damage_watermarks[bank],
            )
            self._damage_watermarks[bank] = damage
        if self.detailed and block is not None:
            remapper = self.remappers[bank]
            physical = remapper.remap(block % self.blocks_per_bank)
            damage_inc = self.model.damage_per_write(slow_factor) * fraction
            self.block_damage[bank][physical] += damage_inc
            remapper.record_write()

    def record_write_fast(self, bank: int, slow_factor: float, block: int,
                          fraction: float) -> None:   # simlint: hotpath
        """Hot-path :meth:`record_write` twin: epoch-buffered whole writes.

        A whole write (``fraction == 1.0``) is one integer bump in a flat
        per-bank buffer; anything fractional - and every write when the
        sanitizer or detailed per-block tracking is active - falls through
        to the reference path, which flushes the buffers first so the
        per-bank factor dicts keep their reference insertion order.
        """
        if fraction == 1.0 and self._buffering:
            if slow_factor == 1.0:
                self._pend_normal[bank] += 1.0
            else:
                pend = self._pend_slow[bank]
                pend[slow_factor] = pend.get(slow_factor, 0.0) + 1.0
            self._pend_dirty = True
            return
        self.record_write(bank, slow_factor, block=block, fraction=fraction)

    def flush_pending(self) -> None:
        """Fold the epoch buffers into the per-bank records.

        Runs once per telemetry epoch (the heatmap probe calls
        :meth:`bank_damages`) and at every read of the records; integer
        counts added in one shot equal the reference path's one-at-a-time
        adds exactly, and per-bank first-seen factor order is preserved
        because each pending dict is insertion-ordered.
        """
        if not self._pend_dirty:
            return
        pend_normal = self._pend_normal
        pend_slow = self._pend_slow
        for bank, record in enumerate(self.records):
            count = pend_normal[bank]
            if count:
                record.normal_writes += count
                pend_normal[bank] = 0.0
            pend = pend_slow[bank]
            if pend:
                by_factor = record.slow_writes_by_factor
                for factor, amount in pend.items():
                    by_factor[factor] = by_factor.get(factor, 0.0) + amount
                pend.clear()
        self._pend_dirty = False

    def reset_records(self) -> None:
        """Zero every bank tally (used when the warmup window ends)."""
        if self._pend_dirty:
            self.flush_pending()
        for record in self.records:
            record.reset()
        self._damage_watermarks = [0.0] * self.num_banks

    def bank_damage(self, bank: int,
                    model: Optional[EnduranceModel] = None) -> float:
        if self._pend_dirty:
            self.flush_pending()
        return self.records[bank].damage(model or self.model)

    def bank_damages(self, model: Optional[EnduranceModel] = None) -> List[float]:
        """All banks' cumulative damage, in bank order.

        This is the telemetry wear-heatmap probe: O(num_banks) per call,
        read-only (after folding in the epoch buffers), and sampled once
        per epoch.
        """
        if self._pend_dirty:
            self.flush_pending()
        chosen = model or self.model
        return [record.damage(chosen) for record in self.records]

    def bank_lifetime_ns(
        self, bank: int, window_ns: float,
        model: Optional[EnduranceModel] = None,
    ) -> float:
        """Lifetime of one bank assuming the window repeats cyclically."""
        damage = self.bank_damage(bank, model)
        if damage <= 0:
            return float("inf")
        capacity = (
            self.blocks_per_bank
            * (model or self.model).base_endurance
            * self.leveling_efficiency
        )
        return window_ns * capacity / damage

    def system_lifetime_ns(
        self, window_ns: float, model: Optional[EnduranceModel] = None,
    ) -> float:
        """System dies when its most-worn bank dies."""
        return min(
            self.bank_lifetime_ns(b, window_ns, model)
            for b in range(self.num_banks)
        )

    def system_lifetime_years(
        self, window_ns: float, model: Optional[EnduranceModel] = None,
    ) -> float:
        return self.system_lifetime_ns(window_ns, model) / params.NS_PER_YEAR

    def detailed_max_damage(self, bank: int) -> float:
        """Max per-block damage (detailed mode only)."""
        if not self.detailed:
            raise RuntimeError("detailed per-block tracking is disabled")
        return max(self.block_damage[bank])

    def total_writes(self) -> float:
        if self._pend_dirty:
            self.flush_pending()
        return sum(r.total_writes for r in self.records)
