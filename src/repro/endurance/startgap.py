"""Start-Gap wear leveling (Qureshi et al., MICRO 2009), bank granularity.

Start-Gap keeps one spare ("gap") line per region and two registers:

* ``gap``   - index of the line currently left empty;
* ``start`` - rotation offset applied to every logical address.

Every ``psi`` writes the gap moves down by one position (the line above it is
copied into the gap).  When the gap has travelled through the whole region,
``start`` advances by one, so over time every logical line visits every
physical slot, spreading wear nearly uniformly (the original paper reports
~95% of ideal leveling at psi = 100).

The mapping below is the published one: for a region of N logical lines and
N + 1 physical slots,

    physical = (logical + start) mod N
    if physical >= gap: physical += 1        # skip over the gap slot
"""

from __future__ import annotations

from typing import Optional, Set

from repro import params
from repro.lint.sanitize import check, resolve

#: Bijectivity verification cap: regions larger than this are spot-checked
#: on an evenly-strided sample instead of exhaustively, keeping the
#: sanitizer's per-gap-move cost bounded.
_BIJECTIVITY_SAMPLE_LIMIT = 4096


class StartGap:
    """Start-Gap remapper for one memory bank.

    Args:
        num_lines: number of *logical* lines in the region (the bank exposes
            this many addresses; one extra physical slot holds the gap).
        psi: number of writes between gap movements (100 in the paper).
        sanitize: arm the remap-bijectivity invariant check after every gap
            move (``None`` defers to ``REPRO_SANITIZE``).
    """

    def __init__(self, num_lines: int, psi: int = params.START_GAP_PSI,
                 sanitize: Optional[bool] = None) -> None:
        if num_lines < 1:
            raise ValueError("num_lines must be >= 1")
        if psi < 1:
            raise ValueError("psi must be >= 1")
        self.num_lines = num_lines
        self.num_slots = num_lines + 1
        self.psi = psi
        self.gap = num_lines            # gap starts at the last physical slot
        self.start = 0
        self._writes_since_move = 0
        self.total_writes = 0
        self.gap_moves = 0
        self._sanitize = resolve(sanitize)

    def remap(self, logical: int) -> int:
        """Translate a logical line index to its current physical slot."""
        if not 0 <= logical < self.num_lines:
            raise IndexError(f"logical index {logical} out of range")
        physical = (logical + self.start) % self.num_lines
        if physical >= self.gap:
            physical += 1
        return physical

    def record_write(self) -> None:
        """Account one write to the region; moves the gap every psi writes."""
        self.total_writes += 1
        self._writes_since_move += 1
        if self._writes_since_move >= self.psi:
            self._writes_since_move = 0
            self._move_gap()

    def _move_gap(self) -> None:
        self.gap_moves += 1
        if self.gap == 0:
            self.gap = self.num_lines
            self.start = (self.start + 1) % self.num_lines
        else:
            self.gap -= 1
        if self._sanitize:
            self._check_bijectivity()

    def _check_bijectivity(self) -> None:
        """Verify the remap stays an injection into the physical slots.

        The gap slot must stay unoccupied and the register state in range;
        regions beyond :data:`_BIJECTIVITY_SAMPLE_LIMIT` lines are checked
        on an evenly-strided sample (the mapping is affine-with-skip, so a
        register corruption shows up on any sample).
        """
        check(
            0 <= self.gap < self.num_slots, "startgap-bijectivity",
            "gap register out of the physical slot range",
            gap=self.gap, num_slots=self.num_slots,
        )
        check(
            0 <= self.start < self.num_lines, "startgap-bijectivity",
            "start register out of the logical line range",
            start=self.start, num_lines=self.num_lines,
        )
        stride = max(1, self.num_lines // _BIJECTIVITY_SAMPLE_LIMIT)
        seen: Set[int] = set()
        for logical in range(0, self.num_lines, stride):
            physical = self.remap(logical)
            check(
                0 <= physical < self.num_slots, "startgap-bijectivity",
                "remap produced an out-of-range physical slot",
                logical=logical, physical=physical, num_slots=self.num_slots,
            )
            check(
                physical != self.gap, "startgap-bijectivity",
                "remap mapped a logical line onto the gap slot",
                logical=logical, physical=physical, gap=self.gap,
            )
            check(
                physical not in seen, "startgap-bijectivity",
                "remap mapped two logical lines onto one physical slot",
                logical=logical, physical=physical,
            )
            seen.add(physical)

    @property
    def extra_write_overhead(self) -> float:
        """Fraction of additional writes caused by gap movement (~1/psi)."""
        if self.total_writes == 0:
            return 0.0
        return self.gap_moves / self.total_writes
