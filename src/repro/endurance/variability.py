"""Process variation in cell endurance + ECC spare capacity.

The paper (like most architecture work) models a single deterministic
endurance per cell and declares the system dead at the first block death.
Real resistive arrays show lognormal endurance variation across cells, and
real systems deploy error correction that tolerates the first k dead
cells per protected unit.  This module extends the lifetime calculation
with both effects, using order statistics rather than Monte Carlo:

* cell endurance ~ Lognormal(mu, sigma), parameterised by the *median*
  endurance (the paper's 5e6) and a sigma in log space;
* a bank of N blocks under near-uniform leveled wear fails when its
  (k+1)-th weakest block fails, where k is the number of block deaths the
  spare/ECC provisioning absorbs;
* the expected endurance of the (k+1)-th weakest of N lognormal samples is
  approximated through the normal quantile of rank probability
  p = (k + 0.625) / (N + 0.25) (Blom's formula), which is exact enough for
  N >= 1000 and avoids simulating millions of cells.

The result plugs into the same lifetime algebra as
:class:`repro.endurance.wear.WearTracker`: lifetime scales linearly in the
effective endurance, so ``lifetime_scale_factor`` multiplies any
deterministic lifetime the simulator reports.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from repro import params


def _normal_quantile(p: float) -> float:
    """Inverse standard normal CDF (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > p_high:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


@dataclass(frozen=True)
class EnduranceVariability:
    """Lognormal endurance variation with ECC/spare block tolerance.

    Attributes:
        median_endurance: median cell endurance (the paper's deterministic
            value sits here).
        sigma: lognormal shape in natural-log space; 0 recovers the
            deterministic model.  Published ReRAM arrays report
            sigma ~ 0.3-0.8.
        tolerated_failures: block deaths absorbed before the bank is dead
            (spare blocks / strong ECC provisioning); 0 = paper model.
    """

    median_endurance: float = params.BASE_ENDURANCE
    sigma: float = 0.0
    tolerated_failures: int = 0

    def __post_init__(self) -> None:
        if self.median_endurance <= 0:
            raise ValueError("median_endurance must be positive")
        if self.sigma < 0:
            raise ValueError("sigma cannot be negative")
        if self.tolerated_failures < 0:
            raise ValueError("tolerated_failures cannot be negative")

    def weakest_block_endurance(self, num_blocks: int) -> float:
        """Expected endurance of the (k+1)-th weakest of ``num_blocks``.

        With k = ``tolerated_failures`` deaths absorbed, this is the
        endurance at which the bank actually dies.
        """
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if self.sigma == 0.0:
            return self.median_endurance
        rank = min(self.tolerated_failures, num_blocks - 1)
        # Blom plotting position for the (rank+1)-th order statistic.
        p = (rank + 1 - 0.375) / (num_blocks + 0.25)
        z = _normal_quantile(p)
        return self.median_endurance * math.exp(self.sigma * z)

    def lifetime_scale_factor(self, num_blocks: int) -> float:
        """Multiplier on a deterministic-endurance lifetime.

        Deterministic lifetimes assume every block endures the median;
        under variation the bank dies when its weakest non-spared block
        dies, so the lifetime scales by weakest/median.
        """
        return self.weakest_block_endurance(num_blocks) / self.median_endurance

    def sample_cell_limits(self, rng: random.Random, count: int) -> List[float]:
        """Draw ``count`` per-cell endurance limits from the distribution.

        The order-statistics methods above answer expectation questions
        without sampling; the fault injector (:mod:`repro.faults`) needs
        actual per-cell limits, so it draws them here from its injected
        seeded generator.  ``sigma == 0`` degenerates to the
        deterministic model - every cell at the median - without
        consuming any randomness, keeping deterministic configs
        byte-stable however often they are sampled.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if self.sigma == 0.0:
            return [self.median_endurance] * count
        mu = math.log(self.median_endurance)
        return [rng.lognormvariate(mu, self.sigma) for _ in range(count)]

    def ecc_gain(self, num_blocks: int) -> float:
        """Lifetime multiplier from tolerating failures vs tolerating none."""
        if self.sigma == 0.0:
            return 1.0
        none = EnduranceVariability(self.median_endurance, self.sigma, 0)
        return (self.weakest_block_endurance(num_blocks)
                / none.weakest_block_endurance(num_blocks))
