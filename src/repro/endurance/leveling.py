"""Wear-leveling schemes and an empirical leveling-efficiency evaluator.

The paper uses Start-Gap [Qureshi et al., MICRO 2009] at bank granularity
and credits it ~0.9-0.95 of ideal leveling (its ``Ratio_quota`` = 0.9 exists
precisely to absorb the leveler's imperfection).  This module provides the
cited alternatives behind one interface so the choice can be ablated:

* :class:`StartGapLeveler`  - the paper's scheme (wraps
  :class:`repro.endurance.startgap.StartGap`);
* :class:`SecurityRefreshLeveler` - Seong et al., ISCA 2010: randomized
  address remapping (XOR with a key) re-keyed incrementally every refresh
  interval, which both levels wear and frustrates malicious hot-spotting;
* :class:`RotationLeveler` - Zhou et al., ISCA 2009 style: rotate lines
  within the region by one position every K writes;
* :class:`NoLeveler` - the identity baseline.

:func:`measure_efficiency` drives any leveler with a hot-spotted write
stream over a small region and reports the achieved fraction of ideal
lifetime (ideal = perfectly uniform wear), which is how the package's
default ``START_GAP_EFFICIENCY`` was validated.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Protocol

from repro.endurance.startgap import StartGap


class WearLeveler(Protocol):
    """Minimal interface: translate an address, account a write."""

    num_lines: int

    def remap(self, logical: int) -> int:
        ...

    def record_write(self) -> None:
        ...


class NoLeveler:
    """Identity mapping - the no-wear-leveling baseline."""

    def __init__(self, num_lines: int) -> None:
        if num_lines < 1:
            raise ValueError("num_lines must be >= 1")
        self.num_lines = num_lines

    def remap(self, logical: int) -> int:
        if not 0 <= logical < self.num_lines:
            raise IndexError(f"logical index {logical} out of range")
        return logical

    def record_write(self) -> None:
        pass


class StartGapLeveler:
    """The paper's Start-Gap scheme behind the common interface."""

    def __init__(self, num_lines: int, psi: int = 100) -> None:
        self._inner = StartGap(num_lines, psi=psi)
        self.num_lines = num_lines

    def remap(self, logical: int) -> int:
        return self._inner.remap(logical)

    def record_write(self) -> None:
        self._inner.record_write()


class RotationLeveler:
    """Rotate the whole region by one line every ``psi`` writes.

    The line-shift approach of Zhou et al. (ISCA 2009): cheap, predictable,
    but slower to disperse a persistent hotspot than Start-Gap because the
    *relative* layout of lines never changes.
    """

    def __init__(self, num_lines: int, psi: int = 100) -> None:
        if num_lines < 1:
            raise ValueError("num_lines must be >= 1")
        if psi < 1:
            raise ValueError("psi must be >= 1")
        self.num_lines = num_lines
        self.psi = psi
        self.rotation = 0
        self._writes_since_move = 0

    def remap(self, logical: int) -> int:
        if not 0 <= logical < self.num_lines:
            raise IndexError(f"logical index {logical} out of range")
        return (logical + self.rotation) % self.num_lines

    def record_write(self) -> None:
        self._writes_since_move += 1
        if self._writes_since_move >= self.psi:
            self._writes_since_move = 0
            self.rotation = (self.rotation + 1) % self.num_lines


class SecurityRefreshLeveler:
    """Security Refresh (Seong et al., ISCA 2010), single level.

    Addresses are remapped by XOR with a random key, and the key is
    re-drawn every full *refresh round*.  The transition is incremental:
    every ``refresh_interval`` writes, the line at the sweep pointer is
    migrated to its new-key location by *swapping* it with whatever
    occupies that slot - which keeps the logical->physical map a bijection
    at every instant (hardware derives the same mapping from the two keys
    and the pointer; the simulator tracks the swap permutation
    explicitly).

    Region size must be a power of two (XOR remapping requirement).
    """

    def __init__(self, num_lines: int, refresh_interval: int = 100,
                 rng: Optional[random.Random] = None) -> None:
        if num_lines < 1 or num_lines & (num_lines - 1):
            raise ValueError("num_lines must be a power of two")
        if refresh_interval < 1:
            raise ValueError("refresh_interval must be >= 1")
        self.num_lines = num_lines
        self.refresh_interval = refresh_interval
        self.rng = rng if rng is not None else random.Random(0)
        self.current_key = 0
        self.next_key = self.rng.randrange(num_lines)
        self.sweep_pointer = 0
        self._writes_since_refresh = 0
        self._perm = list(range(num_lines))       # logical -> physical
        self._inverse = list(range(num_lines))    # physical -> logical

    def remap(self, logical: int) -> int:
        if not 0 <= logical < self.num_lines:
            raise IndexError(f"logical index {logical} out of range")
        return self._perm[logical]

    def _swap_to(self, logical: int, target_physical: int) -> None:
        """Move ``logical`` to ``target_physical``, swapping occupants."""
        current_physical = self._perm[logical]
        if current_physical == target_physical:
            return
        displaced = self._inverse[target_physical]
        self._perm[logical] = target_physical
        self._perm[displaced] = current_physical
        self._inverse[target_physical] = logical
        self._inverse[current_physical] = displaced

    def record_write(self) -> None:
        self._writes_since_refresh += 1
        if self._writes_since_refresh < self.refresh_interval:
            return
        self._writes_since_refresh = 0
        self._swap_to(self.sweep_pointer, self.sweep_pointer ^ self.next_key)
        self.sweep_pointer += 1
        if self.sweep_pointer >= self.num_lines:
            self.current_key = self.next_key
            self.next_key = self.rng.randrange(self.num_lines)
            self.sweep_pointer = 0


def measure_efficiency(
    leveler: WearLeveler,
    writes: int = 200_000,
    hot_fraction: float = 0.9,
    hot_lines: int = 4,
    seed: int = 1,
) -> float:
    """Fraction of ideal lifetime the leveler achieves under a hotspot.

    Drives ``writes`` writes, ``hot_fraction`` of them to ``hot_lines``
    lines, the rest uniform.  Ideal uniform wear puts writes/num_lines on
    every line; the achieved lifetime is limited by the most-worn line, so

        efficiency = (writes / num_lines) / max_line_wear
    """
    if not 0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    if not 0 < hot_lines <= leveler.num_lines:
        raise ValueError("need 0 < hot_lines <= num_lines")
    rng = random.Random(seed)
    # Start-Gap owns one spare physical slot beyond num_lines, so index
    # wear by whatever the leveler returns.
    wear: Dict[int, int] = {}
    for _ in range(writes):
        if rng.random() < hot_fraction:
            logical = rng.randrange(hot_lines)
        else:
            logical = rng.randrange(leveler.num_lines)
        physical = leveler.remap(logical)
        wear[physical] = wear.get(physical, 0) + 1
        leveler.record_write()
    worst = max(wear.values())
    if worst == 0:
        return 1.0
    return (writes / leveler.num_lines) / worst
