"""Analytic write-latency/endurance trade-off model (Section II).

The paper adopts Strukov's model (Applied Physics A, 2016):

    Endurance ~ (t_WP / t0) ** Expo_Factor          (Eq. 2)

anchored so that the normal write pulse (150 ns) yields the baseline
endurance of 5e6 writes.  Slowing a write by a factor N therefore multiplies
endurance by N ** Expo_Factor; the paper's Table II default values
(1.125e7 / 2.0e7 / 4.5e7 writes at 1.5x/2.0x/3.0x with Expo_Factor = 2)
fall out of this formula exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro import params


@dataclass(frozen=True)
class EnduranceModel:
    """Endurance as a function of write-pulse time.

    Attributes:
        base_latency_ns: the normal write pulse width (t_WP at 1.0x).
        base_endurance: endurance (number of writes) at the normal pulse.
        expo_factor: the exponent relating slowdown to endurance gain.
    """

    base_latency_ns: float = params.T_WP_NORMAL_NS
    base_endurance: float = params.BASE_ENDURANCE
    expo_factor: float = params.EXPO_FACTOR_DEFAULT

    def __post_init__(self) -> None:
        if self.base_latency_ns <= 0:
            raise ValueError("base_latency_ns must be positive")
        if self.base_endurance <= 0:
            raise ValueError("base_endurance must be positive")
        if self.expo_factor < 0:
            raise ValueError("expo_factor must be non-negative")

    def endurance_at_factor(self, slow_factor: float) -> float:
        """Endurance (writes) for a write slowed by ``slow_factor`` (>= a cell
        written always at that speed can endure)."""
        if slow_factor <= 0:
            raise ValueError("slow_factor must be positive")
        return self.base_endurance * slow_factor ** self.expo_factor

    def endurance_at_latency(self, latency_ns: float) -> float:
        """Endurance for an absolute write-pulse width in nanoseconds."""
        return self.endurance_at_factor(latency_ns / self.base_latency_ns)

    def damage_per_write(self, slow_factor: float) -> float:
        """Wear of one write, in *normal-write equivalents*.

        A normal write deposits 1.0; a 3x slow write at Expo_Factor 2
        deposits 1/9.  Summing damage and comparing against
        ``base_endurance`` is equivalent to tracking per-speed write counts
        against per-speed endurance limits.
        """
        return self.base_endurance / self.endurance_at_factor(slow_factor)

    def latency_for_endurance(self, endurance: float) -> float:
        """Inverse model: pulse width (ns) needed for a target endurance."""
        if endurance <= 0:
            raise ValueError("endurance must be positive")
        if self.expo_factor == 0:
            raise ValueError("expo_factor 0 has no inverse")
        factor = (endurance / self.base_endurance) ** (1.0 / self.expo_factor)
        return factor * self.base_latency_ns

    def curve(
        self, slow_factors: Sequence[float],
    ) -> List[Tuple[float, float, float]]:
        """(factor, latency_ns, endurance) rows - the data behind Figure 1."""
        return [
            (f, f * self.base_latency_ns, self.endurance_at_factor(f))
            for f in slow_factors
        ]
