"""Flip-N-Write (Cho & Lee, MICRO 2009) bit-write reduction model.

Flip-N-Write partitions a line into words; per word it writes either the
new data or its complement (plus a flip flag), whichever differs from the
stored value in fewer bits, guaranteeing at most W/2 + 1 bit-writes per
W-bit word.  Cell wear tracks the number of programmed bits, so on random
data the per-line wear drops to roughly 45% of a full write.

The simulator carries no data values, so each write samples the Hamming
distance of a word from the Binomial(W, 1/2) it follows for uncorrelated
data (a Gaussian approximation - exact for our purposes and much faster),
then applies the flip rule.  This is a *wear-limiting baseline orthogonal
to Mellow Writes* (the paper classifies it under "physical techniques");
the ablation bench composes the two.
"""

from __future__ import annotations

import random
from typing import Optional


class FlipNWrite:
    def __init__(self, word_bits: int = 32, line_bits: int = 512,
                 rng: Optional[random.Random] = None) -> None:
        if word_bits < 2 or line_bits % word_bits:
            raise ValueError("line must split into words of >= 2 bits")
        self.word_bits = word_bits
        self.line_bits = line_bits
        self.words_per_line = line_bits // word_bits
        self.rng = rng if rng is not None else random.Random(0)
        self.lines_written = 0
        self.bits_written = 0.0

    @property
    def worst_case_fraction(self) -> float:
        """Flip-N-Write's guarantee: at most (W/2 + 1)/W bits per word."""
        return (self.word_bits / 2 + 1) / self.word_bits

    def sample_word_bits(self) -> float:
        """Bit-writes for one word of uncorrelated data.

        Hamming distance d ~ Binomial(W, 1/2), approximated by a clipped
        Gaussian (mean W/2, sigma sqrt(W)/2); Flip-N-Write programs
        min(d, W - d) + 1 bits (the +1 is the flip flag when anything
        changes at all).
        """
        w = self.word_bits
        d = self.rng.gauss(w / 2.0, (w ** 0.5) / 2.0)
        d = min(w, max(0.0, d))
        changed = min(d, w - d)
        return changed + (1.0 if changed > 0 else 0.0)

    def sample_line_fraction(self) -> float:
        """Fraction of the line's cells programmed for one write."""
        bits = sum(self.sample_word_bits() for _ in range(self.words_per_line))
        self.lines_written += 1
        self.bits_written += bits
        return bits / self.line_bits

    @property
    def mean_fraction(self) -> float:
        if self.lines_written == 0:
            return 0.0
        return self.bits_written / (self.lines_written * self.line_bits)
