"""Endurance modeling: the analytic latency/endurance trade-off,
wear tracking and lifetime, Start-Gap and other wear levelers,
Flip-N-Write, and process-variation/ECC order statistics."""
