"""Core-side substrate: trace records, the simplified OoO core model,
and trace file I/O."""
