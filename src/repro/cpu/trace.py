"""Trace records consumed by the simplified core.

A trace is an (infinite) iterator of :class:`TraceRecord`.  Records are at
*post-L2* granularity: each one is an access that reaches the LLC, preceded
by ``gap_insts`` instructions that hit in upper cache levels or touch no
memory at all.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, NamedTuple


class _TraceRecordBase(NamedTuple):
    gap_insts: int
    block: int
    is_write: bool
    dependent: bool = False


class TraceRecord(_TraceRecordBase):
    """One LLC access.

    Attributes:
        gap_insts: instructions executed since the previous LLC access.
        block: global cacheline block index.
        is_write: True for a store (the LLC line becomes dirty).
        dependent: True when program progress blocks on this load's value
            (pointer chases, address computations).  Stores are never
            dependent.

    A named tuple rather than a dataclass: traces run to hundreds of
    thousands of records per simulation, and tuple construction is several
    times cheaper than frozen-dataclass construction.  ``__new__`` keeps
    the field validation; the hot-path trace generator
    (:func:`repro.workloads.profiles._generate_fast`), whose records are
    valid by construction, bypasses it with ``tuple.__new__``.
    """

    __slots__ = ()

    def __new__(cls, gap_insts: int, block: int, is_write: bool,
                dependent: bool = False) -> "TraceRecord":
        if gap_insts < 0:
            raise ValueError("gap_insts cannot be negative")
        if block < 0:
            raise ValueError("block cannot be negative")
        if is_write and dependent:
            raise ValueError("stores cannot be dependent")
        return _TraceRecordBase.__new__(
            cls, gap_insts, block, is_write, dependent)


def replay(records: Iterable[TraceRecord], repeats: int = 1) -> Iterator[TraceRecord]:
    """Cycle a finite record list ``repeats`` times (testing helper)."""
    materialised: List[TraceRecord] = list(records)
    for _ in range(repeats):
        yield from materialised
