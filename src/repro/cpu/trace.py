"""Trace records consumed by the simplified core.

A trace is an (infinite) iterator of :class:`TraceRecord`.  Records are at
*post-L2* granularity: each one is an access that reaches the LLC, preceded
by ``gap_insts`` instructions that hit in upper cache levels or touch no
memory at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List


@dataclass(frozen=True)
class TraceRecord:
    """One LLC access.

    Attributes:
        gap_insts: instructions executed since the previous LLC access.
        block: global cacheline block index.
        is_write: True for a store (the LLC line becomes dirty).
        dependent: True when program progress blocks on this load's value
            (pointer chases, address computations).  Stores are never
            dependent.
    """

    gap_insts: int
    block: int
    is_write: bool
    dependent: bool = False

    def __post_init__(self) -> None:
        if self.gap_insts < 0:
            raise ValueError("gap_insts cannot be negative")
        if self.block < 0:
            raise ValueError("block cannot be negative")
        if self.is_write and self.dependent:
            raise ValueError("stores cannot be dependent")


def replay(records: Iterable[TraceRecord], repeats: int = 1) -> Iterator[TraceRecord]:
    """Cycle a finite record list ``repeats`` times (testing helper)."""
    materialised: List[TraceRecord] = list(records)
    for _ in range(repeats):
        yield from materialised
