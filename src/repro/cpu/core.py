"""Simplified out-of-order core model.

The core consumes a trace of LLC accesses.  Between accesses it retires
``gap_insts`` instructions at its base CPI.  Memory behaviour:

* LLC hits proceed without stalling (the OoO window hides the 35-cycle
  LLC latency).
* LLC load misses occupy one of ``mlp`` MSHR-bounded outstanding-read slots.
  When every slot is busy, the core stalls until one frees.
* *Dependent* load misses stall the core until that specific read returns -
  this is what makes read latency (and write drains that delay reads)
  visible in IPC, with per-workload sensitivity.
* Store misses allocate in the LLC (write-allocate) and issue a fill read,
  but do not block retirement beyond the MLP bound.
* Dirty LLC evictions become memory writebacks; a full write queue applies
  backpressure and stalls the core (as a stalled cache fill would).

IPC is reported in *core cycles*: instructions retired divided by elapsed
time over the measurement window.

Implementation style: the core is an event-queue actor.  ``_run`` drains as
much of the trace as possible; it returns early when a wait condition holds
(dependent read outstanding, MLP slots exhausted, or a queue-full
backpressure).  Completion callbacks clear their condition and re-enter
``_run``.  Stall time is accounted from the moment ``_run`` first blocks to
the moment it makes progress again.

Fast path (``fastpath=True``): instead of paying a heap round trip for the
instruction gap before every access, ``_run_inner`` asks the event queue
for an analytic clock advance (:meth:`EventQueue.advance_if_clear`) and
performs the access synchronously.  The advance succeeds only when no
other event is due at or before the access time, so stretches of
uninterrupted progress - consecutive LLC hits especially, but also misses
whose completions land later - cost zero heap operations and zero closure
allocations, while any intervening completion, epoch tick, or eager tick
boundary falls back to the exact scheduled path.  Results are bit-identical
either way; ``REPRO_NO_FASTPATH=1`` forces the scheduled path everywhere
(the A/B baseline for the bit-identity tests and the perf gate).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro import params
from repro.cache.llc import LastLevelCache
from repro.cache.lru import AccessResult
from repro.cpu.trace import TraceRecord
from repro.hotpath import fastpath_enabled
from repro.memory.controller import MemoryController
from repro.sim.events import EventQueue

__all__ = ["SimpleCore", "fastpath_enabled"]


class SimpleCore:
    def __init__(
        self,
        events: EventQueue,
        llc: LastLevelCache,
        controller: MemoryController,
        trace: Iterator[TraceRecord],
        base_cpi: float = 0.5,
        mlp: int = params.LLC_MSHRS,
        on_access: Optional[Callable[[int], None]] = None,
        writeback_sink: Optional[Callable[[int], bool]] = None,
        fastpath: bool = False,
    ) -> None:
        if base_cpi <= 0:
            raise ValueError("base_cpi must be positive")
        if mlp < 1:
            raise ValueError("mlp must be >= 1")
        self.events = events
        self.llc = llc
        self.controller = controller
        self.trace = trace
        self.base_cpi = base_cpi
        self.mlp = mlp
        self.on_access = on_access
        # Writebacks normally go straight to the controller's write queue;
        # a DRAM write buffer (repro.memory.drambuffer) interposes here.
        self.writeback_sink = (
            writeback_sink if writeback_sink is not None
            else controller.submit_write
        )
        self._fastpath = fastpath
        # Cooperative stop: the driver (System) sets this when the
        # measurement window closes so the fast path stops advancing
        # analytically and yields control back to the event loop at the
        # next gap boundary - exactly where the scheduled path would have
        # returned to the loop and been stopped.
        self.stop_requested = False

        self.instructions_retired = 0
        self.accesses_processed = 0
        self.outstanding_reads = 0
        self.stall_time_ns = 0.0

        self._next_read_id = 0
        self._wait_read_id: Optional[int] = None    # dependent-load wait
        self._waiting_mlp = False
        self._waiting_write_space = False
        self._waiting_read_space = False
        self._wait_since: Optional[float] = None
        self._pending_writeback: Optional[int] = None
        self._pending_fill: Optional[TraceRecord] = None
        self._finished = False
        self._in_run = False
        # The analytic clock advance is only sound while the core owns the
        # outermost event frame - its own gap/start event, where nothing in
        # any enclosing frame runs after the callback returns.  When _run is
        # re-entered from a *controller* frame (a read-completion or
        # queue-space callback), the caller still has work to do at the
        # current time (e.g. _complete_read issues the bank's next request
        # after the callback), so moving the clock under it would reorder
        # the simulation.  There the fast loop falls back to scheduling a
        # gap event - exactly what the slow path does at that point anyway.
        self._owns_clock = False
        # Scheduled-path gap event: one bound method reused for every gap
        # (at most one gap event is ever outstanding), with the record
        # carried in an attribute instead of a fresh closure per record.
        self._gap_record: Optional[TraceRecord] = None
        self._gap_callback = self._gap_fired

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Schedule the first instruction batch."""
        self.events.schedule(self.events.now, self._start_event)

    def _start_event(self) -> None:
        self._owns_clock = True
        try:
            self._run()
        finally:
            self._owns_clock = False

    def mark_counters_reset(self) -> None:
        """Zero retirement counters (end of warmup)."""
        self.instructions_retired = 0
        self.accesses_processed = 0
        self.stall_time_ns = 0.0
        if self._wait_since is not None:
            self._wait_since = self.events.now

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def fastpath_active(self) -> bool:
        """Whether this core was built with the hot-path layer engaged.

        The driver loop keys off this (not a fresh environment lookup) so
        the core's gap deferrals and the loop's deferral-aware drain are
        always either both on or both off.
        """
        return self._fastpath

    def ipc(self, window_ns: float) -> float:
        """Instructions per core cycle over ``window_ns``."""
        if window_ns <= 0:
            return 0.0
        cycles = window_ns / params.CPU_CLK_NS
        return self.instructions_retired / cycles

    # ------------------------------------------------------------------
    # Wait-condition bookkeeping
    # ------------------------------------------------------------------

    def _blocked(self) -> bool:
        return (
            self._wait_read_id is not None
            or self._waiting_mlp
            or self._waiting_write_space
            or self._waiting_read_space
        )

    def _note_blocked(self) -> None:
        if self._wait_since is None:
            self._wait_since = self.events.now

    def _note_progress(self) -> None:
        if self._wait_since is not None:
            self.stall_time_ns += self.events.now - self._wait_since
            self._wait_since = None

    # ------------------------------------------------------------------
    # Main driver
    # ------------------------------------------------------------------

    def _run(self) -> None:
        if self._in_run:
            return
        self._in_run = True
        try:
            self._run_inner()
        finally:
            self._in_run = False

    def _run_inner(self) -> None:   # simlint: hotpath
        # The per-record loop; every attribute consulted on each iteration
        # is hoisted into a local.  Bookkeeping helpers (_blocked,
        # _retire_backlog, _note_progress) are inlined as guarded slow
        # calls so the common all-clear record costs no function calls
        # beyond the trace pull, the clock advance and the LLC access.
        events = self.events
        advance_if_clear = events.advance_if_clear
        trace = self.trace
        # The profile fast trace exposes its generator's bound __next__;
        # calling it directly skips two iterator-protocol frames per
        # record.  Any other trace goes through plain next().
        trace_next = getattr(trace, "fast_next", None)
        llc_access = self.llc.access
        on_access = self.on_access
        base_cpi = self.base_cpi
        clk_ns = params.CPU_CLK_NS
        fastpath = self._fastpath and self._owns_clock
        # Resumed inside a controller frame (fast mode): the analytic
        # advance is off the table - the enclosing frame still has work at
        # the current time - but the gap event can be *deferred*: its heap
        # slot is reserved now (sequence order preserved) and the driver
        # loop resolves it once every enclosing frame has unwound, running
        # it inline when the window up to the gap target is quiescent.
        defer_gap = self._fastpath and not self._owns_clock
        while not self._finished:
            if (self._wait_read_id is not None
                    or self._waiting_mlp
                    or self._waiting_write_space
                    or self._waiting_read_space):
                self._note_blocked()
                return
            if (self._pending_writeback is not None
                    or self._pending_fill is not None):
                if not self._retire_backlog():
                    self._note_blocked()
                    return
            if self._wait_since is not None:
                self._note_progress()
            if trace_next is not None:
                try:
                    record = trace_next()
                except StopIteration:
                    record = None
            else:
                record = next(trace, None)
            if record is None:
                self._finished = True
                return
            # One C-level tuple unpack instead of a property descriptor
            # per field (TraceRecord is a NamedTuple).
            gap_insts, block, is_write, _dependent = record
            if gap_insts > 0:
                self.instructions_retired += gap_insts
                gap_ns = gap_insts * base_cpi * clk_ns
                if (fastpath and not self.stop_requested
                        and advance_if_clear(events.now + gap_ns)):
                    # The clock already sits at the access time; run the
                    # access body the gap event would have run.
                    pass
                elif defer_gap and not self.stop_requested:
                    self._gap_record = record
                    events.defer(events.now + gap_ns, self._gap_callback)
                    return
                else:
                    self._gap_record = record
                    events.schedule_in(gap_ns, self._gap_callback)
                    return
            result = llc_access(block, is_write)
            self.accesses_processed = count = self.accesses_processed + 1
            if on_access is not None:
                on_access(count)
            if not result.hit:
                self._handle_miss(record, result)

    def _gap_fired(self) -> None:
        record = self._gap_record
        assert record is not None, "gap event fired without a pending record"
        self._gap_record = None
        if not self._blocked() and self._retire_backlog():
            self._do_access(record)
            self._owns_clock = True
            try:
                self._run()
            finally:
                self._owns_clock = False
            return
        # Extremely rare: became blocked between scheduling and firing
        # (e.g. a cancellation filled the write queue).  Replay the access
        # once unblocked.
        self._pending_fill = record
        self._note_blocked()

    def _retire_backlog(self) -> bool:
        """Flush deferred work (writebacks, replayed fills); False = wait."""
        if self._pending_writeback is not None:
            if not self.writeback_sink(self._pending_writeback):
                self._waiting_write_space = True
                self.controller.wait_for_write_space(self._write_space_ready)
                return False
            self._pending_writeback = None
        if self._pending_fill is not None:
            record = self._pending_fill
            self._pending_fill = None
            self._do_access(record)
            if self._blocked():
                return False
        return True

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def _do_access(self, record: TraceRecord) -> None:
        result = self.llc.access(record.block, record.is_write)
        self.accesses_processed += 1
        if self.on_access is not None:
            self.on_access(self.accesses_processed)
        if not result.hit:
            self._handle_miss(record, result)

    def _handle_miss(self, record: TraceRecord, result: AccessResult) -> None:
        # Dirty victim -> writeback (separate queue; may backpressure).
        if result.victim is not None and result.victim.dirty:
            victim_block = self.llc.cache.block_of(
                self.llc.cache.set_index(record.block), result.victim.tag,
            )
            if not self.writeback_sink(victim_block):
                self._pending_writeback = victim_block
                self._waiting_write_space = True
                self.controller.wait_for_write_space(self._write_space_ready)

        # Fill read for the miss (loads and stores alike - write-allocate).
        read_id = self._next_read_id
        self._next_read_id += 1
        dependent_load = record.dependent and not record.is_write
        if self._fastpath and not dependent_load:
            # A non-dependent read's id can never match _wait_read_id
            # (only dependent loads set it, each to its own id), so its
            # completion logic is read-id-free and one shared bound
            # method replaces the per-read closure.
            callback: Callable[[float], None] = self._read_done_plain
        else:
            callback = self._make_read_callback(read_id)
        if not self.controller.submit_read(record.block, callback):
            # Read queue full: the line is already allocated; replay the
            # read (gap 0, same block - an LLC hit plus a fresh fill) once
            # space frees.
            self._pending_fill = TraceRecord(
                0, record.block, record.is_write, record.dependent,
            )
            self._waiting_read_space = True
            self.controller.wait_for_read_space(self._read_space_ready)
            return
        self.outstanding_reads += 1

        if dependent_load:
            self._wait_read_id = read_id
        elif self.outstanding_reads >= self.mlp:
            self._waiting_mlp = True

    # ------------------------------------------------------------------
    # Resume callbacks
    # ------------------------------------------------------------------

    def _read_done_plain(self, _completion_ns: float) -> None:
        """Completion for non-dependent reads (fast mode).

        Semantically :meth:`_make_read_callback`'s closure with the
        read-id compare constant-folded away; see the comment at the
        call site in :meth:`_handle_miss`.
        """
        self.outstanding_reads -= 1
        if self._waiting_mlp and self.outstanding_reads < self.mlp:
            self._waiting_mlp = False
            self._run()

    def _make_read_callback(self, read_id: int) -> Callable[[float], None]:
        def on_done(_completion_ns: float) -> None:
            self.outstanding_reads -= 1
            changed = False
            if self._wait_read_id == read_id:
                self._wait_read_id = None
                changed = True
            if self._waiting_mlp and self.outstanding_reads < self.mlp:
                self._waiting_mlp = False
                changed = True
            if changed:
                self._run()
        return on_done

    def _write_space_ready(self) -> None:
        self._waiting_write_space = False
        self._run()

    def _read_space_ready(self) -> None:
        self._waiting_read_space = False
        self._run()
