"""Trace file I/O: persist and replay LLC access traces.

Format: plain text (optionally gzip'd when the path ends in ``.gz``), one
record per line::

    <gap_insts> <block> <R|W> [D]

``D`` marks a dependent load.  A ``#`` prefix starts a comment; blank
lines are ignored.  The format is deliberately trivial so traces from
external tools (gem5 dumps, pin traces post-processed to L2-miss streams)
can be fed into the simulator with a few lines of shell.
"""

from __future__ import annotations

import gzip
import itertools
from pathlib import Path
from typing import IO, Iterable, Iterator, Optional, Union, cast

from repro.cpu.trace import TraceRecord

PathLike = Union[str, Path]


def _open(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return cast("IO[str]", gzip.open(path, mode + "t"))
    return open(path, mode)


def save_trace(records: Iterable[TraceRecord], path: PathLike,
               limit: Optional[int] = None) -> int:
    """Write records to ``path``; returns the number written.

    ``limit`` bounds how many records are consumed - mandatory in spirit
    for the package's infinite synthetic traces.
    """
    path = Path(path)
    count = 0
    if limit is not None:
        records = itertools.islice(records, limit)
    with _open(path, "w") as handle:
        handle.write("# repro trace v1: gap_insts block R|W [D]\n")
        for record in records:
            kind = "W" if record.is_write else "R"
            dep = " D" if record.dependent else ""
            handle.write(f"{record.gap_insts} {record.block} {kind}{dep}\n")
            count += 1
    return count


def load_trace(path: PathLike) -> Iterator[TraceRecord]:
    """Stream records back from a trace file (lazily, line by line)."""
    path = Path(path)
    with _open(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (3, 4):
                raise ValueError(
                    f"{path}:{line_number}: expected 3-4 fields, got {line!r}"
                )
            gap, block, kind = parts[0], parts[1], parts[2].upper()
            if kind not in ("R", "W"):
                raise ValueError(
                    f"{path}:{line_number}: access kind must be R or W"
                )
            dependent = len(parts) == 4
            if dependent and parts[3].upper() != "D":
                raise ValueError(
                    f"{path}:{line_number}: trailing field must be D"
                )
            yield TraceRecord(
                gap_insts=int(gap),
                block=int(block),
                is_write=kind == "W",
                dependent=dependent,
            )


def record_workload(workload_name: str, path: PathLike, count: int,
                    seed: int = 1) -> int:
    """Capture ``count`` records of a built-in synthetic workload."""
    from repro.workloads.profiles import get_profile

    trace = get_profile(workload_name).trace(seed)
    return save_trace(trace, path, limit=count)
