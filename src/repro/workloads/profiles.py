"""Synthetic stand-ins for the paper's workloads (Table IV).

Each profile composes the patterns of :mod:`repro.workloads.patterns` so
that the traffic reaching the LLC matches the published character of the
benchmark: miss rate (MPKI with a 2 MB LLC, Table IV), write intensity,
row/bank locality, reuse of dirty lines, and latency dependence.  Absolute
fidelity to SPEC binaries is impossible offline; what the Mellow Writes
mechanisms react to is exactly the parameter set modeled here.

The profile fields:

* ``apki``        - LLC *accesses* per kilo-instruction (misses emerge from
  footprint/locality; tests check the resulting MPKI against Table IV).
* ``base_cpi``    - non-memory CPI of the core, setting the IPC ceiling.
* ``build_patterns`` - weighted stateful pattern mix, built fresh per trace.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from math import log
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from repro.cpu.trace import TraceRecord
from repro.hotpath import fastpath_enabled
from repro.workloads.patterns import (
    HotSet,
    Pattern,
    PointerChase,
    RandomAccess,
    ReadModifyWrite,
    SequentialStream,
)

WeightedPatterns = List[Tuple[float, Pattern]]

# Region sizing constants, in 64 B blocks.
MB = 1024 * 1024 // 64          # blocks per MiB
_REGION_GAP = 512 * MB          # keep component regions well apart


@dataclass(frozen=True)
class WorkloadProfile:
    """One synthetic workload."""

    name: str
    mpki_paper: float
    apki: float
    base_cpi: float
    build_patterns: Callable[[], WeightedPatterns]

    def trace(self, seed: int = 1) -> Iterator[TraceRecord]:
        """An infinite, deterministic trace of LLC accesses."""
        # crc32, not hash(): str hashing is randomized per interpreter, so
        # seeding from it would make results differ across processes - the
        # parallel sweep engine requires a trace fully determined by
        # (workload, seed).
        name_seed = zlib.crc32(self.name.encode())
        rng = random.Random((name_seed ^ seed) & 0x7FFFFFFF)
        patterns = self.build_patterns()
        weights = [w for w, _ in patterns]
        total = sum(weights)
        if total <= 0:
            raise ValueError(f"{self.name}: pattern weights must be positive")
        cumulative = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        mean_gap = 1000.0 / self.apki

        if fastpath_enabled():
            return _FastTrace(rng, patterns, cumulative, mean_gap)
        return _ReferenceTrace(rng, patterns, cumulative, mean_gap)


class _ReferenceTrace:
    """The readable reference trace, as a class instead of a generator.

    One draw sequence per record - pattern selection via ``rng.random()``
    against the cumulative weights, the pattern's own draws, then the
    ``rng.expovariate(1.0 / mean_gap)`` gap - exactly as the hot-path
    twin below replays it, so the two are bit-identical.

    A class (rather than the closure generator this used to be) because
    generator frames cannot be checkpointed: all mutable draw state
    lives in ``rng`` and on the pattern objects, both exposed as
    attributes for :mod:`repro.checkpoint` to capture and restore.
    Deliberately has *no* ``fast_next``/``raw``/``raw_parts``
    attributes, so the core and the functional-warmup loop take their
    plain-iterator branches just as they did with the generator.
    """

    def __init__(self, rng: random.Random, patterns: WeightedPatterns,
                 cumulative: List[float], mean_gap: float) -> None:
        self.rng = rng
        self.patterns = [pattern for _, pattern in patterns]
        self._weighted = patterns
        self._cumulative = cumulative
        self._mean_gap = mean_gap

    def __iter__(self) -> "Iterator[TraceRecord]":
        return self

    def __next__(self) -> TraceRecord:
        rng = self.rng
        r = rng.random()
        for cum, (_, pattern) in zip(self._cumulative, self._weighted):
            if r <= cum:
                chosen = pattern
                break
        else:
            chosen = self._weighted[-1][1]
        block, is_write, dependent = chosen.next(rng)
        gap = int(rng.expovariate(1.0 / self._mean_gap))
        return TraceRecord(gap, block, is_write, dependent)


class _FastTrace:
    """Hot-path twin of the reference generator in ``trace``.

    Identical RNG call sequence, so the records are bit-identical; the wins
    are the compiled pattern closures (see :mod:`repro.workloads.patterns`),
    ``expovariate`` inlined to CPython's own expression
    ``-log(1.0 - random()) / lambd`` with ``lambd = 1.0 / mean_gap`` - the
    same division in the same order, hence the same floats - and records
    built with ``tuple.__new__``, skipping :class:`TraceRecord`'s field
    validation (every record here satisfies it by construction: gaps are
    non-negative ints, blocks are region bases plus non-negative offsets,
    and no pattern emits a dependent store).

    Besides the normal record iterator this exposes ``raw``, a second
    generator over the *same* RNG and compiled closures that yields bare
    ``(block, is_write)`` pairs.  Functional warmup only looks at those
    two fields, so skipping the gap arithmetic and the record allocation
    there is free - and switching between the two generators at any point
    is sound because every draw goes through the shared ``rng`` and every
    cursor lives on the pattern objects, never in a generator frame.  The
    gap draw still happens in ``raw`` (its value is discarded) to keep
    the stream aligned with the reference path.

    ``raw_parts`` goes one step further for the warmup loop: it hands out
    the bound ``rng.random`` and the compiled closures themselves so
    :meth:`repro.cache.llc.LastLevelCache.warm_chunk` can inline the draw
    sequence into its own frame - no generator resume and no pair tuple
    per record.  The draw order is identical to ``raw``'s, so consuming
    via either (or switching between them) yields the same stream.

    ``fast_next`` is the record generator's bound ``__next__``: the core's
    hot loop calls it directly, skipping the ``builtins.next`` and
    ``__next__`` wrapper frames the iterator protocol would add per
    record.

    ``rng`` and ``patterns`` exist purely for :mod:`repro.checkpoint`:
    every draw goes through the shared ``rng`` and every cursor lives on
    the pattern objects (the compiled closures read and write them by
    attribute), so restoring those two restores the whole trace - the
    generator frames themselves hold no state between yields.
    """

    __slots__ = ("raw", "raw_parts", "fast_next", "rng", "patterns",
                 "_records", "_next")

    def __init__(self, rng: random.Random, patterns: WeightedPatterns,
                 cumulative: List[float], mean_gap: float) -> None:
        compiled = [
            (cum, pattern.compile_fast(rng))
            for cum, (_, pattern) in zip(cumulative, patterns)
        ]
        fallback = compiled[-1][1]
        rnd = rng.random
        lambd = 1.0 / mean_gap
        self.rng = rng
        self.patterns = [pattern for _, pattern in patterns]
        self.raw = self._raw_gen(rnd, compiled, fallback)
        self.raw_parts = (rnd, compiled, fallback)
        self._records = self._record_gen(rnd, compiled, fallback, lambd)
        self._next = self._records.__next__
        self.fast_next = self._next

    def __iter__(self) -> "Iterator[TraceRecord]":
        return self

    def __next__(self) -> TraceRecord:
        return self._next()

    @staticmethod
    def _record_gen(rnd, compiled, fallback,
                    lambd) -> Iterator[TraceRecord]:   # simlint: hotpath
        new = tuple.__new__
        record_cls = TraceRecord
        while True:
            r = rnd()
            for cum, fast_next in compiled:
                if r <= cum:
                    chosen = fast_next
                    break
            else:
                chosen = fallback
            block, is_write, dependent = chosen()
            yield new(record_cls, (int(-log(1.0 - rnd()) / lambd),
                                   block, is_write, dependent))

    @staticmethod
    def _raw_gen(rnd, compiled,
                 fallback) -> "Iterator[Tuple[int, bool]]":   # simlint: hotpath
        while True:
            r = rnd()
            for cum, fast_next in compiled:
                if r <= cum:
                    chosen = fast_next
                    break
            else:
                chosen = fallback
            block, is_write, _ = chosen()
            rnd()   # the gap draw; value unused during warmup
            yield block, is_write


def _region(index: int) -> int:
    """Base block address of the index-th component region."""
    return index * _REGION_GAP


# ---------------------------------------------------------------------------
# Profile definitions
# ---------------------------------------------------------------------------

def _leslie3d() -> WeightedPatterns:
    # Finite-volume fluid solver: several array sweeps, heavy result writes,
    # modest miss rate but a high write *rate* per second (short lifetime
    # at fast writes in Figure 2).
    return [
        (0.35, SequentialStream(_region(0), 48 * MB, write_ratio=0.05)),
        (0.30, SequentialStream(_region(1), 48 * MB, write_ratio=0.85)),
        (0.25, HotSet(_region(2), 16 * MB, hot_blocks=12 * MB // 16,
                      hot_fraction=0.92, write_ratio=0.30)),
        (0.10, RandomAccess(_region(3), 32 * MB, write_ratio=0.20,
                            dependent=True)),
    ]


def _gemsfdtd() -> WeightedPatterns:
    # FDTD field updates: wide streaming sweeps, read-mostly with a strong
    # write stream for the updated fields.
    return [
        (0.45, SequentialStream(_region(0), 96 * MB, write_ratio=0.10)),
        (0.30, SequentialStream(_region(1), 96 * MB, write_ratio=0.65)),
        (0.15, HotSet(_region(2), 8 * MB, hot_blocks=8 * MB // 24,
                      hot_fraction=0.90, write_ratio=0.20)),
        (0.10, RandomAccess(_region(3), 64 * MB, write_ratio=0.10,
                            dependent=True)),
    ]


def _libquantum() -> WeightedPatterns:
    # Quantum register simulation: one huge sequential sweep, mostly loads
    # with in-place updates of the amplitude array.
    return [
        (0.80, SequentialStream(_region(0), 128 * MB, write_ratio=0.25)),
        (0.15, HotSet(_region(1), 4 * MB, hot_blocks=4 * MB // 32,
                      hot_fraction=0.95, write_ratio=0.10)),
        (0.05, RandomAccess(_region(2), 32 * MB, write_ratio=0.10)),
    ]


def _hmmer() -> WeightedPatterns:
    # Profile HMM search: very cache friendly - a dominant hot working set
    # with bursty writes; few LLC misses (MPKI 1.34).
    return [
        (0.94, HotSet(_region(0), 24 * MB, hot_blocks=24 * 1024 // 64 * 24,
                      hot_fraction=0.978, write_ratio=0.45)),
        (0.06, SequentialStream(_region(1), 24 * MB, write_ratio=0.40)),
    ]


def _zeusmp() -> WeightedPatterns:
    # Astrophysical CFD: blocked sweeps with decent reuse.
    return [
        (0.40, SequentialStream(_region(0), 64 * MB, write_ratio=0.20)),
        (0.25, SequentialStream(_region(1), 64 * MB, write_ratio=0.55)),
        (0.25, HotSet(_region(2), 16 * MB, hot_blocks=14 * MB // 16,
                      hot_fraction=0.93, write_ratio=0.25)),
        (0.10, RandomAccess(_region(3), 32 * MB, write_ratio=0.15,
                            dependent=True)),
    ]


def _bwaves() -> WeightedPatterns:
    # Blast-wave solver: read-dominant streaming with strided matrix walks.
    return [
        (0.50, SequentialStream(_region(0), 96 * MB, write_ratio=0.10)),
        (0.20, SequentialStream(_region(1), 96 * MB, write_ratio=0.45,
                                stride=3)),
        (0.20, HotSet(_region(2), 16 * MB, hot_blocks=12 * MB // 16,
                      hot_fraction=0.92, write_ratio=0.15)),
        (0.10, RandomAccess(_region(3), 48 * MB, write_ratio=0.10,
                            dependent=True)),
    ]


def _milc() -> WeightedPatterns:
    # Lattice QCD: scattered site updates plus streaming gauge fields.
    return [
        (0.40, RandomAccess(_region(0), 96 * MB, write_ratio=0.30,
                            dependent=True)),
        (0.35, SequentialStream(_region(1), 96 * MB, write_ratio=0.35)),
        (0.20, HotSet(_region(2), 8 * MB, hot_blocks=8 * MB // 24,
                      hot_fraction=0.88, write_ratio=0.25)),
        (0.05, SequentialStream(_region(3), 64 * MB, write_ratio=0.10)),
    ]


def _mcf() -> WeightedPatterns:
    # Network simplex: pointer chasing over a huge graph; read-dominated,
    # nearly every load gates progress (lowest IPC in the suite).
    return [
        (0.70, PointerChase(_region(0), 192 * MB, write_ratio=0.18)),
        (0.20, RandomAccess(_region(1), 128 * MB, write_ratio=0.25)),
        (0.10, HotSet(_region(2), 8 * MB, hot_blocks=8 * MB // 32,
                      hot_fraction=0.90, write_ratio=0.20)),
    ]


def _lbm() -> WeightedPatterns:
    # Lattice-Boltzmann: the suite's write monster - paired read/write
    # sweeps over the whole lattice every timestep.
    return [
        (0.45, SequentialStream(_region(0), 128 * MB, write_ratio=0.08)),
        (0.45, SequentialStream(_region(1), 128 * MB, write_ratio=0.88)),
        (0.10, HotSet(_region(2), 4 * MB, hot_blocks=4 * MB // 32,
                      hot_fraction=0.90, write_ratio=0.30)),
    ]


def _stream() -> WeightedPatterns:
    # STREAM triad: a[i] = b[i] + s*c[i] - two read streams, one write
    # stream, no reuse, maximum bandwidth pressure.
    return [
        (0.33, SequentialStream(_region(0), 64 * MB, write_ratio=0.0)),
        (0.33, SequentialStream(_region(1), 64 * MB, write_ratio=0.0)),
        (0.34, SequentialStream(_region(2), 64 * MB, write_ratio=1.0)),
    ]


def _gups() -> WeightedPatterns:
    # GUPS: random read-modify-write updates over a huge table.
    return [
        (0.85, ReadModifyWrite(_region(0), 512 * MB,
                               dependent_reads=False)),
        (0.15, HotSet(_region(1), 4 * MB, hot_blocks=4 * MB // 32,
                      hot_fraction=0.90, write_ratio=0.30)),
    ]


PROFILES: Dict[str, WorkloadProfile] = {
    p.name: p
    for p in [
        WorkloadProfile("leslie3d", 5.95, apki=6.7, base_cpi=0.45,
                        build_patterns=_leslie3d),
        WorkloadProfile("GemsFDTD", 15.34, apki=16.5, base_cpi=0.50,
                        build_patterns=_gemsfdtd),
        WorkloadProfile("libquantum", 30.12, apki=34.0, base_cpi=0.40,
                        build_patterns=_libquantum),
        WorkloadProfile("hmmer", 1.34, apki=14.0, base_cpi=0.40,
                        build_patterns=_hmmer),
        WorkloadProfile("zeusmp", 4.53, apki=5.0, base_cpi=0.50,
                        build_patterns=_zeusmp),
        WorkloadProfile("bwaves", 5.58, apki=6.0, base_cpi=0.50,
                        build_patterns=_bwaves),
        WorkloadProfile("milc", 19.49, apki=22.0, base_cpi=0.50,
                        build_patterns=_milc),
        WorkloadProfile("mcf", 56.34, apki=58.0, base_cpi=0.80,
                        build_patterns=_mcf),
        WorkloadProfile("lbm", 31.72, apki=33.5, base_cpi=0.45,
                        build_patterns=_lbm),
        WorkloadProfile("stream", 12.28, apki=12.3, base_cpi=0.35,
                        build_patterns=_stream),
        WorkloadProfile("gups", 8.91, apki=19.0, base_cpi=0.50,
                        build_patterns=_gups),
    ]
}

WORKLOAD_NAMES: Sequence[str] = tuple(PROFILES)


def get_profile(name: str) -> WorkloadProfile:
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(PROFILES)
        raise KeyError(f"unknown workload {name!r} (known: {known})") from None
