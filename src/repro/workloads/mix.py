"""Multiprogrammed workload mixes.

Interleaves the traces of several profiles in proportion to their
instruction progress, the standard way multiprogrammed SPEC mixes are
driven through a shared LLC: at every step the component whose virtual
instruction clock is furthest behind contributes its next access.  Each
component's blocks are relocated to a private address range so mixes
conflict only in the shared cache and memory system, not in the address
space.

This models the paper's single-core system running a *composite* memory
load; it is the natural stress test for Wear Quota (two write-heavy
phases landing on the same banks).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.cpu.trace import TraceRecord
from repro.workloads.profiles import PROFILES, WorkloadProfile, get_profile

# Relocation stride between component address spaces, in blocks (1 TiB).
_COMPONENT_STRIDE = 1 << 34


def mix_traces(traces: Sequence[Iterator[TraceRecord]],
               relocate: bool = True) -> Iterator[TraceRecord]:
    """Interleave traces by instruction progress (lazy, infinite-safe)."""
    if not traces:
        raise ValueError("need at least one component trace")
    heap: List = []
    for index, trace in enumerate(traces):
        record = next(trace, None)
        if record is None:
            continue
        heap.append((record.gap_insts, index, record, trace))
    heapq.heapify(heap)
    while heap:
        clock, index, record, trace = heapq.heappop(heap)
        block = record.block
        if relocate:
            block += index * _COMPONENT_STRIDE
        yield TraceRecord(record.gap_insts, block, record.is_write,
                          record.dependent)
        nxt = next(trace, None)
        if nxt is not None:
            heapq.heappush(heap, (clock + nxt.gap_insts, index, nxt, trace))


@dataclass(frozen=True)
class WorkloadMix:
    """A named combination of built-in profiles."""

    name: str
    components: Sequence[str]

    def __post_init__(self) -> None:
        if len(self.components) < 2:
            raise ValueError("a mix needs at least two components")
        for component in self.components:
            if component not in PROFILES:
                raise KeyError(f"unknown component workload {component!r}")

    @property
    def profiles(self) -> List[WorkloadProfile]:
        return [get_profile(name) for name in self.components]

    @property
    def base_cpi(self) -> float:
        """Harmonically weighted base CPI of the components."""
        cpis = [p.base_cpi for p in self.profiles]
        return sum(cpis) / len(cpis)

    def trace(self, seed: int = 1) -> Iterator[TraceRecord]:
        return mix_traces([
            profile.trace(seed + 1000 * i)
            for i, profile in enumerate(self.profiles)
        ])


# A few representative mixes: write-heavy pair, latency+bandwidth pair,
# and a cache-friendly/cache-hostile pair.
MIXES = {
    mix.name: mix
    for mix in [
        WorkloadMix("mix_write_heavy", ("lbm", "leslie3d")),
        WorkloadMix("mix_lat_bw", ("mcf", "stream")),
        WorkloadMix("mix_light_heavy", ("hmmer", "libquantum")),
    ]
}


def get_mix(name: str) -> WorkloadMix:
    try:
        return MIXES[name]
    except KeyError:
        known = ", ".join(MIXES)
        raise KeyError(f"unknown mix {name!r} (known: {known})") from None
