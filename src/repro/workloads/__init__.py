"""Synthetic workloads: pattern building blocks, the 11 Table IV
profiles, and multiprogrammed mixes."""
