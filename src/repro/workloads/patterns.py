"""Access-pattern building blocks for synthetic workloads.

Each pattern is a small stateful object with a ``next(rng)`` method
returning ``(block, is_write, dependent)``.  Workload profiles
(:mod:`repro.workloads.profiles`) compose several patterns with weights.

Blocks are *global cacheline indices*; patterns operate inside a region
``[base, base + size_blocks)`` so different components of one workload touch
disjoint data structures.

Every pattern also offers ``compile_fast(rng)``, which returns a zero-arg
closure equivalent to ``next(rng)`` with the per-call overhead stripped:
parameters prebound as locals, ``rng.random``/``rng.getrandbits`` looked up
once, and ``randrange`` replaced by an inline of CPython's
``Random._randbelow_with_getrandbits`` rejection loop::

    k = n.bit_length()
    r = getrandbits(k)
    while r >= n:
        r = getrandbits(k)

That loop is the exact algorithm ``randrange(n)`` has used on every CPython
this project supports (3.10-3.12), so the compiled closures draw the same
values from the same generator state - the trace is bit-identical, which
``tests/test_fastpath.py`` checks end to end.  The base-class default simply
wraps ``next``, so custom patterns stay correct without a compiled form.
"""

from __future__ import annotations

import random
from typing import Callable, Tuple

Access = Tuple[int, bool, bool]
FastNext = Callable[[], Access]


class Pattern:
    """Base class so profiles can hold heterogeneous pattern lists."""

    def next(self, rng: random.Random) -> Access:
        raise NotImplementedError

    def compile_fast(self, rng: random.Random) -> FastNext:
        """A zero-arg closure equivalent to ``next(rng)`` (see module doc).

        Subclasses override this with slimmed closures; this default keeps
        any pattern without one correct (if no faster).
        """
        return lambda: self.next(rng)


class SequentialStream(Pattern):
    """Sweeps a region linearly, wrapping around (STREAM-style arrays).

    ``write_ratio`` of the accesses are stores (e.g. the c[] array of
    triad).  Streams have no short-term reuse, so almost every access misses
    the LLC, and written lines are never touched again before eviction -
    prime Eager Mellow Writes material.
    """

    def __init__(self, base: int, size_blocks: int, write_ratio: float = 0.0,
                 stride: int = 1) -> None:
        if size_blocks < 1:
            raise ValueError("size_blocks must be >= 1")
        if not 0.0 <= write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.base = base
        self.size_blocks = size_blocks
        self.write_ratio = write_ratio
        self.stride = stride
        self._cursor = 0

    def next(self, rng: random.Random) -> Access:
        block = self.base + self._cursor
        self._cursor = (self._cursor + self.stride) % self.size_blocks
        is_write = rng.random() < self.write_ratio
        return block, is_write, False

    def compile_fast(self, rng: random.Random) -> FastNext:
        base = self.base
        size = self.size_blocks
        stride = self.stride
        write_ratio = self.write_ratio
        rnd = rng.random

        def fast_next() -> Access:   # simlint: hotpath
            cursor = self._cursor
            self._cursor = (cursor + stride) % size
            return base + cursor, rnd() < write_ratio, False
        return fast_next


class RandomAccess(Pattern):
    """Uniform random accesses over a region (GUPS-like when writing)."""

    def __init__(self, base: int, size_blocks: int, write_ratio: float = 0.0,
                 dependent: bool = False) -> None:
        if size_blocks < 1:
            raise ValueError("size_blocks must be >= 1")
        self.base = base
        self.size_blocks = size_blocks
        self.write_ratio = write_ratio
        self.dependent = dependent

    def next(self, rng: random.Random) -> Access:
        block = self.base + rng.randrange(self.size_blocks)
        is_write = rng.random() < self.write_ratio
        dependent = self.dependent and not is_write
        return block, is_write, dependent

    def compile_fast(self, rng: random.Random) -> FastNext:
        base = self.base
        n = self.size_blocks
        k = n.bit_length()
        write_ratio = self.write_ratio
        dependent = self.dependent
        rnd = rng.random
        getrandbits = rng.getrandbits

        def fast_next() -> Access:   # simlint: hotpath
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            is_write = rnd() < write_ratio
            return base + r, is_write, dependent and not is_write
        return fast_next


class HotSet(Pattern):
    """Skewed reuse: most accesses go to a small hot subset of the region.

    Provides the LLC hits that populate low LRU stack positions, so the
    Eager profiler sees a realistic hit-position histogram.
    """

    def __init__(self, base: int, size_blocks: int, hot_blocks: int,
                 hot_fraction: float = 0.9, write_ratio: float = 0.0) -> None:
        if not 0 < hot_blocks <= size_blocks:
            raise ValueError("need 0 < hot_blocks <= size_blocks")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        self.base = base
        self.size_blocks = size_blocks
        self.hot_blocks = hot_blocks
        self.hot_fraction = hot_fraction
        self.write_ratio = write_ratio

    def next(self, rng: random.Random) -> Access:
        if rng.random() < self.hot_fraction:
            block = self.base + rng.randrange(self.hot_blocks)
        else:
            block = self.base + rng.randrange(self.size_blocks)
        is_write = rng.random() < self.write_ratio
        return block, is_write, False

    def compile_fast(self, rng: random.Random) -> FastNext:
        base = self.base
        size = self.size_blocks
        size_k = size.bit_length()
        hot = self.hot_blocks
        hot_k = hot.bit_length()
        hot_fraction = self.hot_fraction
        write_ratio = self.write_ratio
        rnd = rng.random
        getrandbits = rng.getrandbits

        def fast_next() -> Access:   # simlint: hotpath
            if rnd() < hot_fraction:
                r = getrandbits(hot_k)
                while r >= hot:
                    r = getrandbits(hot_k)
            else:
                r = getrandbits(size_k)
                while r >= size:
                    r = getrandbits(size_k)
            return base + r, rnd() < write_ratio, False
        return fast_next


class PointerChase(Pattern):
    """Dependent random reads (mcf-style): every load gates progress."""

    def __init__(self, base: int, size_blocks: int,
                 write_ratio: float = 0.0) -> None:
        if size_blocks < 1:
            raise ValueError("size_blocks must be >= 1")
        self.base = base
        self.size_blocks = size_blocks
        self.write_ratio = write_ratio

    def next(self, rng: random.Random) -> Access:
        block = self.base + rng.randrange(self.size_blocks)
        is_write = rng.random() < self.write_ratio
        return block, is_write, not is_write

    def compile_fast(self, rng: random.Random) -> FastNext:
        base = self.base
        n = self.size_blocks
        k = n.bit_length()
        write_ratio = self.write_ratio
        rnd = rng.random
        getrandbits = rng.getrandbits

        def fast_next() -> Access:   # simlint: hotpath
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            is_write = rnd() < write_ratio
            return base + r, is_write, not is_write
        return fast_next


class ReadModifyWrite(Pattern):
    """Random read-then-write pairs to the same block (GUPS updates)."""

    def __init__(self, base: int, size_blocks: int,
                 dependent_reads: bool = True) -> None:
        if size_blocks < 1:
            raise ValueError("size_blocks must be >= 1")
        self.base = base
        self.size_blocks = size_blocks
        self.dependent_reads = dependent_reads
        self._pending_write: int = -1

    def next(self, rng: random.Random) -> Access:
        if self._pending_write >= 0:
            block = self._pending_write
            self._pending_write = -1
            return block, True, False
        block = self.base + rng.randrange(self.size_blocks)
        self._pending_write = block
        return block, False, self.dependent_reads

    def compile_fast(self, rng: random.Random) -> FastNext:
        base = self.base
        n = self.size_blocks
        k = n.bit_length()
        dependent_reads = self.dependent_reads
        getrandbits = rng.getrandbits

        def fast_next() -> Access:   # simlint: hotpath
            pending = self._pending_write
            if pending >= 0:
                self._pending_write = -1
                return pending, True, False
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            block = base + r
            self._pending_write = block
            return block, False, dependent_reads
        return fast_next


class PhasedPattern(Pattern):
    """Alternates between two sub-patterns in long phases.

    Many applications run in phases (compute-heavy then write-back-heavy);
    Wear Quota's period accounting reacts very differently to phased and
    steady traffic, so this wrapper exists to stress it.  The pattern
    serves ``phase_length`` accesses from one sub-pattern, then switches.
    """

    def __init__(self, first: Pattern, second: Pattern,
                 phase_length: int = 10_000) -> None:
        if phase_length < 1:
            raise ValueError("phase_length must be >= 1")
        self.first = first
        self.second = second
        self.phase_length = phase_length
        self._served = 0
        self._in_second = False

    def next(self, rng: random.Random) -> Access:
        active = self.second if self._in_second else self.first
        self._served += 1
        if self._served >= self.phase_length:
            self._served = 0
            self._in_second = not self._in_second
        return active.next(rng)

    def compile_fast(self, rng: random.Random) -> FastNext:
        first = self.first.compile_fast(rng)
        second = self.second.compile_fast(rng)
        phase_length = self.phase_length

        def fast_next() -> Access:
            active = second if self._in_second else first
            self._served += 1
            if self._served >= phase_length:
                self._served = 0
                self._in_second = not self._in_second
            return active()
        return fast_next
