"""Access-pattern building blocks for synthetic workloads.

Each pattern is a small stateful object with a ``next(rng)`` method
returning ``(block, is_write, dependent)``.  Workload profiles
(:mod:`repro.workloads.profiles`) compose several patterns with weights.

Blocks are *global cacheline indices*; patterns operate inside a region
``[base, base + size_blocks)`` so different components of one workload touch
disjoint data structures.
"""

from __future__ import annotations

import random
from typing import Tuple

Access = Tuple[int, bool, bool]


class Pattern:
    """Base class so profiles can hold heterogeneous pattern lists."""

    def next(self, rng: random.Random) -> Access:
        raise NotImplementedError


class SequentialStream(Pattern):
    """Sweeps a region linearly, wrapping around (STREAM-style arrays).

    ``write_ratio`` of the accesses are stores (e.g. the c[] array of
    triad).  Streams have no short-term reuse, so almost every access misses
    the LLC, and written lines are never touched again before eviction -
    prime Eager Mellow Writes material.
    """

    def __init__(self, base: int, size_blocks: int, write_ratio: float = 0.0,
                 stride: int = 1) -> None:
        if size_blocks < 1:
            raise ValueError("size_blocks must be >= 1")
        if not 0.0 <= write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.base = base
        self.size_blocks = size_blocks
        self.write_ratio = write_ratio
        self.stride = stride
        self._cursor = 0

    def next(self, rng: random.Random) -> Access:
        block = self.base + self._cursor
        self._cursor = (self._cursor + self.stride) % self.size_blocks
        is_write = rng.random() < self.write_ratio
        return block, is_write, False


class RandomAccess(Pattern):
    """Uniform random accesses over a region (GUPS-like when writing)."""

    def __init__(self, base: int, size_blocks: int, write_ratio: float = 0.0,
                 dependent: bool = False) -> None:
        if size_blocks < 1:
            raise ValueError("size_blocks must be >= 1")
        self.base = base
        self.size_blocks = size_blocks
        self.write_ratio = write_ratio
        self.dependent = dependent

    def next(self, rng: random.Random) -> Access:
        block = self.base + rng.randrange(self.size_blocks)
        is_write = rng.random() < self.write_ratio
        dependent = self.dependent and not is_write
        return block, is_write, dependent


class HotSet(Pattern):
    """Skewed reuse: most accesses go to a small hot subset of the region.

    Provides the LLC hits that populate low LRU stack positions, so the
    Eager profiler sees a realistic hit-position histogram.
    """

    def __init__(self, base: int, size_blocks: int, hot_blocks: int,
                 hot_fraction: float = 0.9, write_ratio: float = 0.0) -> None:
        if not 0 < hot_blocks <= size_blocks:
            raise ValueError("need 0 < hot_blocks <= size_blocks")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        self.base = base
        self.size_blocks = size_blocks
        self.hot_blocks = hot_blocks
        self.hot_fraction = hot_fraction
        self.write_ratio = write_ratio

    def next(self, rng: random.Random) -> Access:
        if rng.random() < self.hot_fraction:
            block = self.base + rng.randrange(self.hot_blocks)
        else:
            block = self.base + rng.randrange(self.size_blocks)
        is_write = rng.random() < self.write_ratio
        return block, is_write, False


class PointerChase(Pattern):
    """Dependent random reads (mcf-style): every load gates progress."""

    def __init__(self, base: int, size_blocks: int,
                 write_ratio: float = 0.0) -> None:
        if size_blocks < 1:
            raise ValueError("size_blocks must be >= 1")
        self.base = base
        self.size_blocks = size_blocks
        self.write_ratio = write_ratio

    def next(self, rng: random.Random) -> Access:
        block = self.base + rng.randrange(self.size_blocks)
        is_write = rng.random() < self.write_ratio
        return block, is_write, not is_write


class ReadModifyWrite(Pattern):
    """Random read-then-write pairs to the same block (GUPS updates)."""

    def __init__(self, base: int, size_blocks: int,
                 dependent_reads: bool = True) -> None:
        if size_blocks < 1:
            raise ValueError("size_blocks must be >= 1")
        self.base = base
        self.size_blocks = size_blocks
        self.dependent_reads = dependent_reads
        self._pending_write: int = -1

    def next(self, rng: random.Random) -> Access:
        if self._pending_write >= 0:
            block = self._pending_write
            self._pending_write = -1
            return block, True, False
        block = self.base + rng.randrange(self.size_blocks)
        self._pending_write = block
        return block, False, self.dependent_reads


class PhasedPattern(Pattern):
    """Alternates between two sub-patterns in long phases.

    Many applications run in phases (compute-heavy then write-back-heavy);
    Wear Quota's period accounting reacts very differently to phased and
    steady traffic, so this wrapper exists to stress it.  The pattern
    serves ``phase_length`` accesses from one sub-pattern, then switches.
    """

    def __init__(self, first: Pattern, second: Pattern,
                 phase_length: int = 10_000) -> None:
        if phase_length < 1:
            raise ValueError("phase_length must be >= 1")
        self.first = first
        self.second = second
        self.phase_length = phase_length
        self._served = 0
        self._in_second = False

    def next(self, rng: random.Random) -> Access:
        active = self.second if self._in_second else self.first
        self._served += 1
        if self._served >= self.phase_length:
            self._served = 0
            self._in_second = not self._in_second
        return active.next(rng)
