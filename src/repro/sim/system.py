"""Top-level simulated system: core + LLC + memory controller + wear.

``System(config).run()`` executes one measurement window and returns a
:class:`~repro.sim.stats.RunResult`.  The flow is the paper's: warm the LLC
(the stand-in for the 6B-instruction warmup), reset every statistic, then
simulate the measurement window in detail and derive IPC, lifetime,
utilization, drain time, request breakdowns and energy.
"""

from __future__ import annotations

import json
import random
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Union

from repro.cache.llc import LastLevelCache
from repro.core.wear_quota import WearQuota
from repro.cpu.core import SimpleCore, fastpath_enabled
from repro.endurance.model import EnduranceModel
from repro.endurance.flipnwrite import FlipNWrite
from repro.endurance.wear import WearTracker
from repro.energy.nvsim import LineEnergyModel
from repro.faults.injector import FaultInjector
from repro.lint.sanitize import env_enabled
from repro.memory.address import AddressMap
from repro.memory.controller import MemoryController
from repro.memory.drambuffer import DramWriteBuffer
from repro.memory.timing import MemoryTiming
from repro.sim.config import SimConfig
from repro.sim.events import EventQueue
from repro.sim.stats import RunResult
from repro.telemetry import (EV_PHASE, NULL_TELEMETRY, Telemetry,
                             bank_metric_name)
from repro.workloads.profiles import WorkloadProfile, get_profile

if TYPE_CHECKING:
    from repro.workloads.mix import WorkloadMix


class DeadlockError(RuntimeError):
    """The event queue drained while the core still had work to do."""


def _resolve_workload(name: str) -> Union[WorkloadProfile, "WorkloadMix"]:
    """A workload is either a Table IV profile or a multiprogrammed mix."""
    try:
        return get_profile(name)
    except KeyError:
        from repro.workloads.mix import get_mix
        return get_mix(name)


class System:
    def __init__(self, config: SimConfig) -> None:
        self.config = config
        policy = config.write_policy
        self.policy = policy
        profile = _resolve_workload(config.workload)
        self.profile = profile

        # The runtime sanitizer is armed per-run by SimConfig.sanitize or
        # process-wide by REPRO_SANITIZE=1; either source arms every
        # component of this system.
        self.sanitize = config.sanitize or env_enabled()
        # Telemetry is constructed before the event queue; its clock is a
        # lazy closure over self.events so the order does not matter at
        # sample time.  Like the sanitizer it is observe-only: it never
        # draws randomness or schedules events, so traced runs are
        # bit-identical to untraced ones.
        self.telemetry: Telemetry = (
            Telemetry(
                num_banks=config.num_banks,
                clock=lambda: self.events.now,
                trace_capacity=config.telemetry_trace_capacity,
            )
            if config.telemetry else NULL_TELEMETRY
        )
        self.events = EventQueue(sanitize=self.sanitize,
                                 telemetry=self.telemetry)
        self.amap = AddressMap(
            num_banks=config.num_banks,
            num_ranks=config.num_ranks,
            capacity_bytes=config.capacity_bytes,
        )
        self.timing = MemoryTiming(slow_factor=config.slow_factor)
        self.endurance = EnduranceModel(expo_factor=config.expo_factor)
        self.wear = WearTracker(
            num_banks=config.num_banks,
            blocks_per_bank=self.amap.blocks_per_bank,
            model=self.endurance,
            leveling_efficiency=config.leveling_efficiency,
            sanitize=self.sanitize,
        )
        self.quota: Optional[WearQuota] = None
        if policy.wear_quota:
            self.quota = WearQuota(
                num_banks=config.num_banks,
                blocks_per_bank=self.amap.blocks_per_bank,
                target_lifetime_years=config.target_lifetime_years,
                period_ns=config.sample_period_ns,
                ratio_quota=config.ratio_quota,
                telemetry=self.telemetry,
            )
        self.llc = LastLevelCache(
            size_bytes=config.llc_size_bytes,
            assoc=config.llc_assoc,
            threshold_ratio=config.useless_threshold,
            sample_period_ns=config.sample_period_ns,
            rng=random.Random(config.seed * 7919 + 13),
            eager_selector=config.eager_selector,
            telemetry=self.telemetry,
            fastpath=fastpath_enabled(),
        )
        self.flip_n_write: Optional[FlipNWrite] = None
        if config.flip_n_write:
            self.flip_n_write = FlipNWrite(
                rng=random.Random(config.seed * 104729 + 7),
            )
        self.faults: Optional[FaultInjector] = None
        if config.faults is not None:
            # Derive the fault stream's seed from the run seed plus the
            # fault parameters, the same crc32-of-canonical-JSON idiom the
            # workload generators use: stable across processes (SIM001)
            # and decoupled from the LLC/Flip-N-Write streams.
            material = json.dumps(
                ["faults", config.seed, list(config.faults.key())])
            self.faults = FaultInjector(
                config=config.faults,
                num_banks=config.num_banks,
                model=self.endurance,
                rng=random.Random(zlib.crc32(material.encode())),
                clock=lambda: self.events.now,
            )
        self.controller = MemoryController(
            events=self.events,
            policy=policy,
            address_map=self.amap,
            timing=self.timing,
            wear=self.wear,
            quota=self.quota,
            wear_scaler=(
                self.flip_n_write.sample_line_fraction
                if self.flip_n_write is not None else None
            ),
            cancel_threshold=config.cancel_threshold,
            page_policy=config.page_policy,
            read_scheduler=config.read_scheduler,
            sanitize=self.sanitize,
            telemetry=self.telemetry,
            faults=self.faults,
            on_fatal=self._on_fault_fatal if self.faults is not None else None,
            fastpath=fastpath_enabled(),
        )
        self.dram_buffer: Optional[DramWriteBuffer] = None
        if config.dram_buffer_entries > 0:
            self.dram_buffer = DramWriteBuffer(config.dram_buffer_entries)
        self._trace = profile.trace(config.seed)
        self.core = SimpleCore(
            events=self.events,
            llc=self.llc,
            controller=self.controller,
            trace=self._trace,
            base_cpi=profile.base_cpi,
            on_access=self._on_access,
            writeback_sink=(
                self._buffered_writeback if self.dram_buffer is not None
                else None
            ),
            fastpath=fastpath_enabled(),
        )
        self._measure_start_ns: Optional[float] = None
        self._measure_end_ns: Optional[float] = None
        self._accesses_at_last_scan = 0
        self._done = False
        self._paused = False
        # Next accesses_processed threshold to pause at for checkpointing
        # (None = never pause); advanced by checkpoint_every per pause.
        self._pause_at: Optional[int] = config.checkpoint_every
        if self.telemetry.enabled:
            self._register_probes()

    def _register_probes(self) -> None:
        """Attach the epoch-sampled probes that read existing state.

        Probes run only when a sample is taken (once per 500 us epoch), so
        none of this adds work to the simulation hot paths.  Registration
        itself is O(banks) per System *construction* - one probe object and
        one (cached) :func:`bank_metric_name` lookup per bank, never
        per-event and never per-sample beyond the probe call itself.
        """
        tel = self.telemetry
        metrics = tel.metrics
        ctrl = self.controller
        metrics.probe("queue.read.depth", lambda: float(len(ctrl.read_q)))
        metrics.probe("queue.write.depth", lambda: float(len(ctrl.write_q)))
        metrics.probe("queue.eager.depth", lambda: float(len(ctrl.eager_q)))
        metrics.probe("queue.read.peak",
                      lambda: float(ctrl.read_q.epoch_peak_depth()))
        metrics.probe("queue.write.peak",
                      lambda: float(ctrl.write_q.epoch_peak_depth()))
        metrics.probe("queue.eager.peak",
                      lambda: float(ctrl.eager_q.epoch_peak_depth()))
        metrics.probe("wear.total_writes",
                      lambda: float(self.wear.total_writes()))
        for bank in ctrl.banks:
            metrics.probe(bank_metric_name(bank.index, "ops_begun"),
                          lambda b=bank: float(b.ops_begun))
            metrics.probe(bank_metric_name(bank.index, "ops_cancelled"),
                          lambda b=bank: float(b.ops_cancelled))
        tel.set_wear_probe(self.wear.bank_damages)
        injector = self.faults
        if injector is not None:
            stats = injector.stats
            metrics.probe("faults.cells_failed",
                          lambda: float(stats.cells_failed))
            metrics.probe("faults.write_retries",
                          lambda: float(stats.write_retries))
            metrics.probe("faults.corrected_writes",
                          lambda: float(stats.corrected_writes))
            metrics.probe("faults.lines_retired",
                          lambda: float(stats.lines_retired))
            metrics.probe("faults.spare_lines_left",
                          lambda: float(injector.total_spares_left()))
            for bank in ctrl.banks:
                metrics.probe(bank_metric_name(bank.index, "lines_retired"),
                              lambda b=bank: float(b.lines_retired))
            tel.set_retired_probe(
                lambda: [float(b.lines_retired) for b in ctrl.banks])

    # ------------------------------------------------------------------
    # DRAM write buffer
    # ------------------------------------------------------------------

    def _buffered_writeback(self, block: int) -> bool:
        """Route an LLC writeback through the DRAM coalescing buffer.

        Hits and non-full inserts absorb instantly (DRAM latency is
        negligible next to resistive write pulses); a full buffer drains
        its LRU entry into the controller, which applies normal write-queue
        backpressure.
        """
        buffer = self.dram_buffer
        assert buffer is not None, "writeback sink wired without a buffer"
        if buffer.contains(block) or not buffer.full:
            buffer.insert(block)
            return True
        if self.controller.write_q.full:
            return False
        drained = buffer.insert(block)
        self.controller.submit_write(drained)
        return True

    # ------------------------------------------------------------------
    # Periodic machinery
    # ------------------------------------------------------------------

    def _sample_tick(self) -> None:
        if self._done:
            return
        # Telemetry closes its epoch BEFORE the profiler counters reset,
        # so the sampled llc.stack_hits.* probes capture this epoch's own
        # hit counts.  The quota gauge set by the *previous* start_period
        # is likewise sampled here, describing the epoch it governed.
        if self.telemetry.enabled:
            self.telemetry.sample_epoch(self.events.now)
        self.llc.end_sample_period()
        if self.quota is not None:
            self.quota.start_period()
        self.events.schedule_in(self.config.sample_period_ns, self._sample_tick)

    def _eager_tick(self) -> None:
        if self._done:
            return
        # Section IV-B1: candidates are chosen on *idle* LLC cycles.  Gate
        # the scan on recent LLC activity: a cache fielding a demand access
        # nearly every cycle (e.g. hmmer's hot loop) has no idle slots to
        # volunteer eager writebacks from.
        delta = self.core.accesses_processed - self._accesses_at_last_scan
        self._accesses_at_last_scan = self.core.accesses_processed
        busy = delta > self.config.eager_idle_max_accesses
        if not busy and self.controller.eager_queue_has_space:
            block = self.llc.pick_eager_candidate()
            if block is not None:
                self.controller.submit_eager(block)
        self.events.schedule_in(
            self.config.eager_scan_interval_ns, self._eager_tick,
        )

    def _on_access(self, count: int) -> None:
        if count == self.config.warmup_accesses and self._measure_start_ns is None:
            self._end_warmup()
        elif (self._measure_start_ns is not None
              and count >= self.config.measure_accesses):
            self._measure_end_ns = self.events.now
            self._done = True
            # Stop the core's analytic fast path too: from here on it must
            # schedule (never inline) gap events, so the run ends with the
            # same pending-event state as a forced-off run.
            self.core.stop_requested = True
            self.events.stop = True
        elif self._pause_at is not None and count >= self._pause_at:
            # Checkpoint boundary: reuse the end-of-run stop machinery so
            # the core schedules (never inlines or defers) its next gap
            # event and the drain stops at a clean event boundary.  The
            # scheduled gap consumes one extra sequence number relative
            # to an unpaused run - a uniform offset on all later events
            # that cannot reorder same-time ties, so sliced runs stay
            # bit-identical to straight-through ones.
            self._paused = True
            self.core.stop_requested = True
            self.events.stop = True

    def _on_fault_fatal(self, now: float) -> None:
        """An uncorrectable error: end the run gracefully at ``now``.

        The measurement window is closed where the failure happened, so
        :meth:`_collect` still produces a full RunResult - with
        ``uncorrectable`` set and the terminal time recorded - instead
        of the run crashing.  A failure during timed warmup anchors the
        window at time zero so the window stays non-empty.
        """
        if self._done:
            return
        if self._measure_start_ns is None:
            self._measure_start_ns = 0.0
        self._measure_end_ns = now
        self._done = True
        self.core.stop_requested = True
        self.events.stop = True

    def _end_warmup(self) -> None:
        self._measure_start_ns = self.events.now
        if self.telemetry.enabled:
            self.telemetry.tracer.record(
                self.events.now, EV_PHASE, detail="measure_start")
        self.llc.reset_statistics()
        # Zero the wear tallies before the controller reset so the
        # controller re-anchors its wear-conservation cross-check against
        # the already-cleared records.
        self.wear.reset_records()
        self.controller.reset_statistics()
        self.core.mark_counters_reset()
        if self.quota is not None:
            self.quota.reset_statistics()
        if self.dram_buffer is not None:
            self.dram_buffer.stats = type(self.dram_buffer.stats)()

    # ------------------------------------------------------------------

    def _functional_warmup(self) -> int:
        """Pre-fill the LLC by replaying the trace without timing.

        Low-MPKI workloads (hmmer) would need hundreds of thousands of
        *timed* accesses before the LLC fills and writebacks start flowing;
        replaying the head of the trace functionally (cache state only, no
        memory events) gets every workload to a steady-state cache at a
        fraction of the cost - the same trick gem5 users play with
        functional warming.  Returns the number of accesses consumed.
        """
        if fastpath_enabled():
            return self._functional_warmup_fast()
        config = self.config
        capacity = self.llc.cache.num_sets * self.llc.cache.assoc
        target = int(capacity * config.functional_warmup_occupancy)
        consumed = 0
        while consumed < config.functional_warmup_max:
            if consumed % 8192 == 0 and self.llc.cache.occupancy() >= target:
                # The DRAM write buffer (when present) must also reach its
                # steady state - full - or a short measurement window would
                # see an artificially drain-free buffer.
                if self.dram_buffer is None or self.dram_buffer.full:
                    break
            record = next(self._trace, None)
            if record is None:
                break
            result = self.llc.access(record.block, record.is_write)
            # Keep the DRAM write buffer warm too: at steady state it is
            # full, so a short measurement window must not start from an
            # empty (drain-free) buffer.
            if (self.dram_buffer is not None and result.victim is not None
                    and result.victim.dirty):
                victim_block = self.llc.cache.block_of(
                    self.llc.cache.set_index(record.block),
                    result.victim.tag,
                )
                self.dram_buffer.insert(victim_block)
            consumed += 1
        self.llc.reset_statistics()
        if self.dram_buffer is not None:
            self.dram_buffer.stats = type(self.dram_buffer.stats)()
        return consumed

    def _functional_warmup_fast(self) -> int:
        """Hot-path twin of the reference loop in ``_functional_warmup``.

        Consumes exactly the same records with the same cache effects.  The
        every-8192-records occupancy check of the reference loop (which
        re-tests ``consumed % 8192`` on every record) becomes the boundary
        between chunks handed to :meth:`LastLevelCache.warm_chunk`, where
        the per-record work runs with everything hoisted into locals.
        """
        config = self.config
        llc = self.llc
        cache = llc.cache
        capacity = cache.num_sets * cache.assoc
        target = int(capacity * config.functional_warmup_occupancy)
        maximum = config.functional_warmup_max
        trace = self._trace
        buffer = self.dram_buffer
        on_dirty_victim = buffer.insert if buffer is not None else None
        consumed = 0
        exhausted = False
        while consumed < maximum and not exhausted:
            # Chunk boundaries land exactly on the reference loop's
            # consumed % 8192 == 0 checkpoints (0, 8192, ...).
            if cache.occupancy() >= target and (
                    buffer is None or buffer.full):
                break
            chunk = maximum - consumed
            if chunk > 8192:
                chunk = 8192
            done, exhausted = llc.warm_chunk(trace, chunk, on_dirty_victim)
            consumed += done
        llc.reset_statistics()
        if buffer is not None:
            buffer.stats = type(buffer.stats)()
        return consumed

    def run(self, max_events: int = 200_000_000) -> RunResult:
        """Simulate warmup + measurement and return the results."""
        self.start_run()
        return self.finish_run(max_events)

    def start_run(self) -> None:
        """Warm up and arm the event loop (first phase of :meth:`run`).

        Split out so checkpointing callers can alternate
        :meth:`continue_run` with snapshot captures; plain callers just
        use :meth:`run`.
        """
        self._functional_warmup()
        self.core.start()
        if self.telemetry.enabled:
            self.telemetry.tracer.record(
                self.events.now, EV_PHASE, detail="run_start")
        self.events.schedule_in(self.config.sample_period_ns, self._sample_tick)
        if self.policy.eager:
            self.events.schedule_in(
                self.config.eager_scan_interval_ns, self._eager_tick,
            )
        if self.config.warmup_accesses == 0:
            self._end_warmup()

    def continue_run(self, max_events: int = 200_000_000
                     ) -> Optional[RunResult]:
        """Drain events until completion or the next checkpoint pause.

        Returns ``None`` when the run paused at a ``checkpoint_every``
        boundary (capture a snapshot, then call again - or restore the
        snapshot elsewhere and call there); returns the collected
        :class:`RunResult` once the run completes.  A restored system
        resumes here directly: :meth:`start_run` must not be called
        again, its work is part of the captured state.
        """
        self._paused = False
        self.core.stop_requested = False
        if self.core.fastpath_active:
            self._drain_events_fast(max_events)
        else:
            executed = 0
            while not (self._done or self._paused):
                if not self.events.pop_and_run():
                    raise DeadlockError(
                        f"event queue drained at {self.events.now} ns with "
                        f"{self.core.accesses_processed} accesses processed"
                    )
                executed += 1
                if executed > max_events:
                    raise DeadlockError(
                        "event budget exhausted; likely livelock")
        if self._paused and not self._done:
            every = self.config.checkpoint_every
            if self._pause_at is not None and every is not None:
                # Keep the cadence anchored even if consecutive zero-gap
                # accesses carried the count past the threshold.
                while self._pause_at <= self.core.accesses_processed:
                    self._pause_at += every
            return None
        result = self._collect()
        if self.telemetry.enabled:
            # Close the final (possibly partial) epoch so the wear time
            # series covers the whole measurement window, then write the
            # bundle if a destination was configured.
            self.telemetry.tracer.record(
                self.events.now, EV_PHASE, detail="measure_end")
            self.telemetry.sample_epoch(self.events.now)
            if self.config.telemetry_dir is not None:
                self.telemetry.write(Path(self.config.telemetry_dir))
        return result

    def finish_run(self, max_events: int = 200_000_000) -> RunResult:
        """Drain to completion, snapshotting at every checkpoint pause.

        Snapshots are written to ``config.checkpoint_dir`` when set;
        with ``checkpoint_every`` set but no directory the run still
        pauses (so callers holding the system can capture it themselves)
        and immediately continues.
        """
        while True:
            result = self.continue_run(max_events)
            if result is not None:
                return result
            if self.config.checkpoint_dir is not None:
                # Local import: repro.checkpoint imports this module.
                from repro.checkpoint.snapshot import (default_snapshot_path,
                                                       save_snapshot)
                save_snapshot(
                    self, default_snapshot_path(self,
                                                self.config.checkpoint_dir))

    def rearm_after_restore(self) -> None:
        """Recompute pause bookkeeping after a snapshot restore.

        Called by :func:`repro.checkpoint.snapshot.restore_system`: the
        restoring config's ``checkpoint_every`` (which may differ from
        the capturing run's - both sit outside the cache key) decides
        where the *next* pause lands, counted from the restored access
        count.
        """
        every = self.config.checkpoint_every
        if every is not None:
            self._pause_at = self.core.accesses_processed + every
        else:
            self._pause_at = None
        self._paused = False

    def _drain_events_fast(self, max_events: int) -> None:
        """Hot-path twin of the reference drain loop in :meth:`continue_run`.

        Hands the whole budget to :meth:`EventQueue.run_fast`, which pops
        (and resolves deferrals) with every per-event load hoisted out of
        the loop; ``_on_access`` / ``_on_fault_fatal`` raise the queue's
        cooperative ``stop`` flag to end the drain exactly where the
        reference loop's ``self._done`` / ``self._paused`` check would.
        The budget check mirrors the reference ordering: the event that
        exhausts the budget raises even when it also completed the run.
        """
        events = self.events
        events.stop = False
        executed = events.run_fast(max_events + 1)
        if executed > max_events:
            raise DeadlockError("event budget exhausted; likely livelock")
        if not (self._done or self._paused):
            raise DeadlockError(
                f"event queue drained at {events.now} ns with "
                f"{self.core.accesses_processed} accesses processed"
            )
        if events.deferred_time is not None:
            # A deferral can survive the drain only when a fatal fault in
            # another event's callback stopped the run first (never at a
            # checkpoint pause, which the core only raises from a frame
            # with no deferral outstanding); flush it so the queue ends
            # in the same pending state as a reference run.
            events.flush_deferred()

    # ------------------------------------------------------------------

    def _collect(self) -> RunResult:
        config = self.config
        # Fast-path sync points: fold any epoch-buffered wear into the
        # records and write the controller's flat bank-state mirrors back
        # to the Bank objects, so collection below reads exactly what a
        # reference run would have left behind.  Both are no-ops on the
        # reference path.
        self.wear.flush_pending()
        self.controller.sync_bank_state()
        measure_start = self._measure_start_ns
        measure_end = self._measure_end_ns
        assert measure_start is not None and measure_end is not None, (
            "statistics collected before the measurement window closed"
        )
        window = measure_end - measure_start
        if window <= 0:
            raise RuntimeError("empty measurement window")

        # Trim bank busy time that extends past the end of the window.
        bank_utilizations: List[float] = []
        for bank in self.controller.banks:
            busy = bank.busy_time_ns
            if bank.busy_until > measure_end:
                busy -= bank.busy_until - measure_end
            bank_utilizations.append(max(0.0, busy) / window)
        utilization = sum(bank_utilizations) / len(bank_utilizations)

        cstats = self.controller.stats
        lstats = self.llc.stats
        instructions = self.core.instructions_retired
        mpki = (lstats.misses * 1000.0 / instructions) if instructions else 0.0

        energy_model = LineEnergyModel.for_cell(config.energy_cell)
        read_energy = (
            cstats.read_row_hits * energy_model.read_energy_pj(True)
            + cstats.read_row_misses * energy_model.read_energy_pj(False)
        )
        write_energy = 0.0
        for record in self.wear.records:
            write_energy += record.normal_writes * energy_model.write_energy_pj(False)
            for factor, count in record.slow_writes_by_factor.items():
                write_energy += count * energy_model.write_energy_pj_for(factor)

        result = RunResult(
            workload=config.workload,
            policy=config.policy_name,
            slow_factor=config.slow_factor,
            num_banks=config.num_banks,
            expo_factor=config.expo_factor,
            window_ns=window,
            instructions=instructions,
            accesses=self.core.accesses_processed,
            ipc=self.core.ipc(window),
            lifetime_years=self.wear.system_lifetime_years(window),
            bank_utilization=utilization,
            drain_fraction=self.controller.drain_fraction(window),
            avg_read_latency_ns=cstats.avg_read_latency_ns,
            bank_utilizations=bank_utilizations,
            avg_read_queue_depth=self.controller.read_q.average_depth(window),
            avg_write_queue_depth=self.controller.write_q.average_depth(window),
            llc_misses=lstats.misses,
            llc_hits=lstats.hits,
            mpki=mpki,
            writebacks=lstats.writebacks,
            eager_writebacks=lstats.eager_writebacks,
            wasted_eager=lstats.wasted_eager,
            reads_issued=cstats.reads_issued,
            read_row_hits=cstats.read_row_hits,
            read_row_misses=cstats.read_row_misses,
            writes_issued_normal=cstats.writes_issued_normal,
            writes_issued_slow=cstats.writes_issued_slow,
            eager_issued=cstats.eager_issued,
            cancellations=cstats.cancellations,
            pauses=cstats.pauses,
            drain_events=cstats.drain_events,
            read_energy_pj=read_energy,
            write_energy_pj=write_energy,
            wear_records=[record.copy() for record in self.wear.records],
            blocks_per_bank=self.amap.blocks_per_bank,
            leveling_efficiency=config.leveling_efficiency,
        )
        injector = self.faults
        if injector is not None:
            # Times are absolute simulated ns since the start of the timed
            # run (survival times, spanning warmup by design); -1.0 marks
            # an event that never happened, a JSON-exact sentinel.
            fstats = injector.stats
            result.faults_enabled = True
            result.uncorrectable = fstats.uncorrectable
            if fstats.first_failure_ns is not None:
                result.time_to_first_failure_ns = fstats.first_failure_ns
            if fstats.uncorrectable_ns is not None:
                result.time_to_uncorrectable_ns = fstats.uncorrectable_ns
            result.cells_failed = fstats.cells_failed
            result.lines_retired = fstats.lines_retired
            result.fault_write_retries = fstats.write_retries
            result.ecc_corrected_writes = fstats.corrected_writes
        return result


def run_simulation(config: SimConfig) -> RunResult:
    """Convenience wrapper: build a :class:`System` and run it."""
    return System(config).run()
