"""Simulation assembly: deterministic event queue, configuration,
result records, and the top-level System."""
