"""System configuration: one object describing a complete simulation run."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Optional, Tuple, Union

from repro import params
from repro.core.policies import WritePolicy, parse_policy
from repro.faults.config import FaultConfig


#: SIM012 registry: SimConfig fields deliberately OUTSIDE cache_key().
#: Every entry must state why the field cannot affect results; simlint
#: errors if a field is neither keyed nor listed here, and also if an
#: entry goes stale (no such field) or contradicts the key (listed AND
#: read by cache_key()).  Observe-only knobs live here so traced,
#: sanitized and plain runs share cache entries bit-for-bit.
CACHE_KEY_EXCLUDED = {
    "sanitize": "runtime sanitizer is read-only; sanitized runs are "
                "bit-identical to plain runs and share cache entries",
    "telemetry": "telemetry is observe-only; traced runs are "
                 "bit-identical to untraced ones",
    "telemetry_dir": "output location of the telemetry bundle, not an "
                     "input to the simulation",
    "telemetry_trace_capacity": "ring-buffer size only bounds how much "
                                "trace is kept, never what is simulated",
    "checkpoint_every": "slicing a run into checkpointed segments is "
                        "bit-identical to running straight through "
                        "(tests/test_checkpoint.py), so sliced and "
                        "unsliced runs share cache entries",
    "checkpoint_dir": "output location for snapshot files, not an "
                      "input to the simulation",
}


def digest_for_key(key: Any) -> str:
    """Stable hex digest of a cache key.

    The key is serialised as canonical JSON (tuples and lists hash alike),
    so the digest is identical across processes and Python versions -
    unlike ``repr``-based hashing, which would couple cache identity to
    object formatting.  Parallel sweep workers rely on this to agree with
    the parent process on cache file names.
    """
    payload = json.dumps(key, default=str).encode()
    return hashlib.sha256(payload).hexdigest()[:24]


@dataclass(frozen=True)
class SimConfig:
    """Everything needed to reproduce one simulation run.

    Attributes mirror Tables I-III; the window lengths control how many LLC
    accesses are warmed up and measured (the stand-in for the paper's
    6B-warmup / 2B-detail instruction windows).
    """

    workload: str
    policy: Union[str, WritePolicy] = "Norm"
    slow_factor: float = params.SLOW_FACTOR_DEFAULT
    num_banks: int = params.DEFAULT_BANKS
    num_ranks: int = params.DEFAULT_RANKS
    expo_factor: float = params.EXPO_FACTOR_DEFAULT
    capacity_bytes: int = params.MEMORY_CAPACITY_BYTES
    warmup_accesses: int = 30_000
    measure_accesses: int = 120_000
    functional_warmup_max: int = 600_000   # untimed LLC pre-fill cap
    functional_warmup_occupancy: float = 0.95
    seed: int = 1
    eager_scan_interval_ns: float = 60.0
    sample_period_ns: float = params.PROFILE_PERIOD_NS
    target_lifetime_years: float = params.TARGET_LIFETIME_YEARS
    ratio_quota: float = params.RATIO_QUOTA
    energy_cell: str = params.DEFAULT_ENERGY_CELL
    llc_size_bytes: int = params.LLC_SIZE_BYTES
    llc_assoc: int = params.LLC_ASSOC
    useless_threshold: float = params.USELESS_THRESHOLD_RATIO
    leveling_efficiency: float = params.START_GAP_EFFICIENCY
    eager_selector: str = "stack"          # or "deadblock" (extension)
    flip_n_write: bool = False             # Flip-N-Write wear limiting
    cancel_threshold: float = 0.5          # no cancel beyond this progress
    eager_idle_max_accesses: int = 2       # LLC-busy gate for eager scans
    dram_buffer_entries: int = 0           # DRAM write-coalescing buffer
    page_policy: str = "open"              # or "closed" (sensitivity knob)
    read_scheduler: str = "fcfs"           # or "frfcfs" (row hits first)
    # Arm the runtime invariant sanitizer (repro.lint.sanitize) for this
    # run.  Deliberately NOT part of cache_key(): the sanitizer is
    # read-only, so sanitized and unsanitized runs produce bit-identical
    # results and share cache entries.
    sanitize: bool = False
    # Telemetry (repro.telemetry): observe-only like the sanitizer, so
    # all three fields are excluded from cache_key() and traced runs
    # share cache entries with untraced ones.  ``telemetry_dir`` is where
    # the bundle is written at end of run (None = caller handles output,
    # e.g. the Runner picks <cache_dir>/<digest>.telemetry).
    telemetry: bool = False
    telemetry_dir: Optional[str] = None
    telemetry_trace_capacity: int = 65536
    # Checkpoint/resume (repro.checkpoint).  ``checkpoint_every`` pauses
    # the run at an event boundary every N processed LLC accesses;
    # ``checkpoint_dir`` is where the paused run drops snapshot files
    # (None = pause without persisting, which callers like the sharded
    # survival study use to hand snapshots around themselves).  Sliced
    # runs are bit-identical to straight-through ones, so neither knob
    # enters cache_key().
    checkpoint_every: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    # Fault injection (repro.faults).  None (the default) disables the
    # subsystem entirely; disabled runs are bit-identical to a build
    # without it, and cache_key() only grows the fault term when this is
    # set, so pre-existing cache digests never change.
    faults: Optional[FaultConfig] = None

    def __post_init__(self) -> None:
        if self.warmup_accesses < 0 or self.measure_accesses < 1:
            raise ValueError("need warmup >= 0 and measure >= 1 accesses")
        if self.num_banks % self.num_ranks:
            raise ValueError("banks must divide evenly across ranks")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 when set")

    @property
    def write_policy(self) -> WritePolicy:
        if isinstance(self.policy, WritePolicy):
            if self.policy.slow_factor != self.slow_factor:
                return self.policy.with_slow_factor(self.slow_factor)
            return self.policy
        return parse_policy(self.policy, self.slow_factor)

    @property
    def policy_name(self) -> str:
        if isinstance(self.policy, WritePolicy):
            return self.policy.name
        return self.policy

    def scaled(self, fraction: float) -> "SimConfig":
        """A cheaper copy with window lengths scaled by ``fraction``."""
        if fraction <= 0:
            raise ValueError("fraction must be positive")
        return replace(
            self,
            warmup_accesses=max(1000, int(self.warmup_accesses * fraction)),
            measure_accesses=max(2000, int(self.measure_accesses * fraction)),
        )

    def cache_key(self) -> Tuple[Any, ...]:
        """Hashable identity for result caching."""
        key: Tuple[Any, ...] = (
            self.workload, self.policy_name, self.slow_factor,
            self.num_banks, self.num_ranks, self.expo_factor,
            self.capacity_bytes, self.warmup_accesses,
            self.measure_accesses, self.seed, self.eager_scan_interval_ns,
            self.sample_period_ns, self.target_lifetime_years,
            self.ratio_quota, self.energy_cell, self.llc_size_bytes,
            self.llc_assoc, self.useless_threshold,
            self.leveling_efficiency, self.eager_selector,
            self.flip_n_write, self.cancel_threshold,
            self.eager_idle_max_accesses, self.functional_warmup_max,
            self.functional_warmup_occupancy, self.dram_buffer_entries,
            self.page_policy, self.read_scheduler,
        )
        if self.faults is not None:
            # Appended only when enabled: the default key (and therefore
            # every pre-fault cache digest) stays byte-identical.
            key = key + (self.faults.key(),)
        return key

    def cache_digest(self) -> str:
        """Filename-safe digest of :meth:`cache_key` (see digest_for_key)."""
        return digest_for_key(self.cache_key())
