"""Run results: every number a paper figure needs, from one simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro import params
from repro.endurance.model import EnduranceModel
from repro.endurance.wear import BankWearRecord


@dataclass
class RunResult:
    """Measured outcomes of one simulation window.

    The per-bank wear records carry enough information to recompute the
    lifetime under *any* Expo_Factor without re-simulating (timing does not
    depend on the endurance exponent) - this is how Figure 17 is produced.
    """

    workload: str
    policy: str
    slow_factor: float
    num_banks: int
    expo_factor: float

    window_ns: float = 0.0
    instructions: int = 0
    accesses: int = 0
    ipc: float = 0.0

    lifetime_years: float = 0.0
    bank_utilization: float = 0.0
    drain_fraction: float = 0.0
    avg_read_latency_ns: float = 0.0

    llc_misses: int = 0
    llc_hits: int = 0
    mpki: float = 0.0
    writebacks: int = 0
    eager_writebacks: int = 0
    wasted_eager: int = 0

    reads_issued: int = 0
    read_row_hits: int = 0
    read_row_misses: int = 0
    writes_issued_normal: int = 0
    writes_issued_slow: int = 0
    eager_issued: int = 0
    cancellations: int = 0
    pauses: int = 0
    drain_events: int = 0

    read_energy_pj: float = 0.0
    write_energy_pj: float = 0.0

    bank_utilizations: List[float] = field(default_factory=list)
    avg_read_queue_depth: float = 0.0
    avg_write_queue_depth: float = 0.0

    wear_records: List[BankWearRecord] = field(default_factory=list)
    blocks_per_bank: int = 0
    leveling_efficiency: float = params.START_GAP_EFFICIENCY

    # Fault injection (repro.faults).  All zeros/sentinels when the
    # subsystem is disabled (faults=None), keeping old serialisations
    # semantically unchanged.  The *_ns times are absolute simulated
    # times from the start of the timed run (-1.0 = never happened; a
    # finite sentinel, not inf, so the JSON round trip stays exact).
    faults_enabled: bool = False
    uncorrectable: bool = False
    time_to_first_failure_ns: float = -1.0
    time_to_uncorrectable_ns: float = -1.0
    cells_failed: int = 0
    lines_retired: int = 0
    fault_write_retries: int = 0
    ecc_corrected_writes: int = 0

    @property
    def total_energy_pj(self) -> float:
        return self.read_energy_pj + self.write_energy_pj

    @property
    def writes_issued_total(self) -> int:
        return self.writes_issued_normal + self.writes_issued_slow

    @property
    def requests_issued_total(self) -> int:
        return self.reads_issued + self.writes_issued_total

    @property
    def llc_accesses(self) -> int:
        return self.llc_hits + self.llc_misses

    def lifetime_for_expo(self, expo_factor: float,
                          base_endurance: float = params.BASE_ENDURANCE,
                          ) -> float:
        """Lifetime in years re-evaluated under a different Expo_Factor.

        Exact (not an approximation): write timing never depends on the
        endurance exponent, only the damage bookkeeping does.
        """
        if not self.wear_records:
            return float("inf")
        model = EnduranceModel(
            base_endurance=base_endurance, expo_factor=expo_factor,
        )
        capacity = (
            self.blocks_per_bank * base_endurance * self.leveling_efficiency
        )
        worst = float("inf")
        for record in self.wear_records:
            damage = record.damage(model)
            if damage <= 0:
                continue
            worst = min(worst, self.window_ns * capacity / damage)
        return worst / params.NS_PER_YEAR if worst != float("inf") else worst
