"""Deterministic event queue used by the whole simulator.

Events are (time_ns, sequence, callback) triples ordered first by time and
then by insertion order, which makes simulation results independent of
callback identity and fully reproducible.

The queue also exposes the core's fast-path seam,
:meth:`EventQueue.advance_if_clear`: when no pending event is due at or
before a target time, the clock can jump there directly with the exact
observable side effects of scheduling-then-popping an event at that time
(monotonicity check, clock update, executed-event count) minus the heap
round trip and callback allocation.  The schedule/pop pair and the
analytic advance are interchangeable by construction, which is what keeps
fast-path runs bit-identical to forced-off runs.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple

from repro.lint.sanitize import check, resolve
from repro.telemetry import NULL_TELEMETRY, Telemetry

Callback = Callable[[], None]


class EventQueue:
    """A min-heap of timestamped callbacks with stable FIFO tie-breaking.

    With the sanitizer armed (``sanitize=True``, or ``REPRO_SANITIZE=1``
    when the argument is left at ``None``) every pop verifies the simulated
    clock is monotone nondecreasing and raises
    :class:`~repro.lint.sanitize.InvariantViolation` otherwise.

    With telemetry enabled the queue keeps an executed-event counter; the
    counter object is resolved once here so the per-pop cost is a single
    ``is not None`` check.  Analytic advances count too: one advance stands
    in for exactly one popped event, so the ``events.executed`` series is
    identical whether or not the fast path is engaged.
    """

    __slots__ = ("_heap", "_seq", "now", "_sanitize", "_executed")

    def __init__(self, sanitize: Optional[bool] = None,
                 telemetry: Telemetry = NULL_TELEMETRY) -> None:
        self._heap: List[Tuple[float, int, Callback]] = []
        self._seq = 0
        self.now: float = 0.0
        self._sanitize = resolve(sanitize)
        self._executed = (telemetry.metrics.counter("events.executed")
                          if telemetry.enabled else None)

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time_ns: float, callback: Callback) -> None:
        """Schedule ``callback`` to run at absolute ``time_ns``."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule event at {time_ns} ns before now ({self.now} ns)"
            )
        heappush(self._heap, (time_ns, self._seq, callback))
        self._seq += 1

    def schedule_in(self, delay_ns: float, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay_ns`` after the current time."""
        if delay_ns < 0:
            raise ValueError(f"negative delay: {delay_ns}")
        self.schedule(self.now + delay_ns, callback)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def advance_if_clear(self, time_ns: float) -> bool:   # simlint: hotpath
        """Jump the clock to ``time_ns`` unless an event is due first.

        Returns False (and changes nothing) when any pending event is
        scheduled at or before ``time_ns`` - including the exact-tie case,
        which must go through the heap so FIFO sequence ordering decides.
        On success the clock moves and one executed event is accounted,
        exactly as if an event at ``time_ns`` had been scheduled and
        popped; the caller then runs its callback body inline.
        """
        heap = self._heap
        if heap and heap[0][0] <= time_ns:
            return False
        if self._sanitize:
            check(
                time_ns >= self.now, "event-time-monotonicity",
                "fast path advanced the clock backwards",
                event_time_ns=time_ns, now_ns=self.now,
            )
        self.now = time_ns
        executed = self._executed
        if executed is not None:
            executed.value += 1.0
        return True

    def pop_and_run(self) -> bool:   # simlint: hotpath
        """Run the earliest event.  Returns False when the queue is empty."""
        heap = self._heap
        if not heap:
            return False
        time_ns, seq, callback = heappop(heap)
        if self._sanitize:
            check(
                time_ns >= self.now, "event-time-monotonicity",
                "event queue popped an event from the past",
                event_time_ns=time_ns, now_ns=self.now, sequence=seq,
            )
        self.now = time_ns
        executed = self._executed
        if executed is not None:
            executed.value += 1.0
        callback()
        return True

    def run_until(self, time_ns: float) -> None:
        """Run every event scheduled at or before ``time_ns``."""
        while self._heap and self._heap[0][0] <= time_ns:
            self.pop_and_run()
        if self.now < time_ns:
            self.now = time_ns

    def run_all(self, max_events: Optional[int] = None) -> int:
        """Drain the queue; returns the number of events executed."""
        count = 0
        while self._heap:
            if max_events is not None and count >= max_events:
                break
            self.pop_and_run()
            count += 1
        return count
