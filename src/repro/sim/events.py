"""Deterministic event queue used by the whole simulator.

Events are (time_ns, sequence, callback) triples ordered first by time and
then by insertion order, which makes simulation results independent of
callback identity and fully reproducible.

The queue also exposes the core's fast-path seam,
:meth:`EventQueue.advance_if_clear`: when no pending event is due at or
before a target time, the clock can jump there directly with the exact
observable side effects of scheduling-then-popping an event at that time
(monotonicity check, clock update, executed-event count) minus the heap
round trip and callback allocation.  The schedule/pop pair and the
analytic advance are interchangeable by construction, which is what keeps
fast-path runs bit-identical to forced-off runs.

The miss path has its own seam, the *deferred event*
(:meth:`EventQueue.defer`): a single event that reserves its sequence
number immediately - so FIFO tie-breaking against everything scheduled
after it is preserved - but stays out of the heap until the drain loop
(:meth:`run_fast`) decides its fate.  If the simulation window up to the
deferred time is quiescent (no pending event due at or before it), the
loop jumps the clock and runs the callback inline, skipping the heap
round trip; otherwise the event is flushed into the heap with its
reserved sequence number and ordinary (time, seq) ordering takes over.
Both resolutions are observably identical to having scheduled the event
eagerly, which is what keeps batched miss-path runs bit-identical to
reference runs.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple

from repro.lint.sanitize import check, resolve
from repro.telemetry import NULL_TELEMETRY, Telemetry

Callback = Callable[[], None]


class EventQueue:
    """A min-heap of timestamped callbacks with stable FIFO tie-breaking.

    With the sanitizer armed (``sanitize=True``, or ``REPRO_SANITIZE=1``
    when the argument is left at ``None``) every pop verifies the simulated
    clock is monotone nondecreasing and raises
    :class:`~repro.lint.sanitize.InvariantViolation` otherwise.

    With telemetry enabled the queue keeps an executed-event counter; the
    counter object is resolved once here so the per-pop cost is a single
    ``is not None`` check.  Analytic advances count too: one advance stands
    in for exactly one popped event, so the ``events.executed`` series is
    identical whether or not the fast path is engaged.
    """

    __slots__ = ("_heap", "_seq", "now", "_sanitize", "_executed",
                 "_deferred", "stop")

    def __init__(self, sanitize: Optional[bool] = None,
                 telemetry: Telemetry = NULL_TELEMETRY) -> None:
        self._heap: List[Tuple[float, int, Callback]] = []
        self._seq = 0
        self.now: float = 0.0
        self._sanitize = resolve(sanitize)
        self._executed = (telemetry.metrics.counter("events.executed")
                          if telemetry.enabled else None)
        # The single deferred-event slot (fast path only; see module doc).
        self._deferred: Optional[Tuple[float, int, Callback]] = None
        # Cooperative stop flag for run_fast: the driver sets it when its
        # termination condition holds, ending the batched drain.
        self.stop = False

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time_ns: float, callback: Callback) -> None:
        """Schedule ``callback`` to run at absolute ``time_ns``."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule event at {time_ns} ns before now ({self.now} ns)"
            )
        heappush(self._heap, (time_ns, self._seq, callback))
        self._seq += 1

    def schedule_in(self, delay_ns: float, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay_ns`` after the current time."""
        if delay_ns < 0:
            raise ValueError(f"negative delay: {delay_ns}")
        self.schedule(self.now + delay_ns, callback)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def advance_if_clear(self, time_ns: float) -> bool:   # simlint: hotpath
        """Jump the clock to ``time_ns`` unless an event is due first.

        Returns False (and changes nothing) when any pending event is
        scheduled at or before ``time_ns`` - including the exact-tie case,
        which must go through the heap so FIFO sequence ordering decides.
        On success the clock moves and one executed event is accounted,
        exactly as if an event at ``time_ns`` had been scheduled and
        popped; the caller then runs its callback body inline.
        """
        heap = self._heap
        if heap and heap[0][0] <= time_ns:
            return False
        deferred = self._deferred
        if deferred is not None and deferred[0] <= time_ns:
            # A deferred event counts as pending even though it is not in
            # the heap yet.  The core never advances with one outstanding
            # (it owns the clock only from loop-level frames, where the
            # slot is empty), but the contract must hold for any caller.
            return False
        if self._sanitize:
            check(
                time_ns >= self.now, "event-time-monotonicity",
                "fast path advanced the clock backwards",
                event_time_ns=time_ns, now_ns=self.now,
            )
        self.now = time_ns
        executed = self._executed
        if executed is not None:
            executed.value += 1.0
        return True

    def pop_and_run(self) -> bool:   # simlint: hotpath
        """Run the earliest event.  Returns False when the queue is empty."""
        heap = self._heap
        if not heap:
            return False
        time_ns, seq, callback = heappop(heap)
        if self._sanitize:
            check(
                time_ns >= self.now, "event-time-monotonicity",
                "event queue popped an event from the past",
                event_time_ns=time_ns, now_ns=self.now, sequence=seq,
            )
        self.now = time_ns
        executed = self._executed
        if executed is not None:
            executed.value += 1.0
        callback()
        return True

    # ------------------------------------------------------------------
    # Deferred event: the miss-path batch-advance seam (fast path only)
    # ------------------------------------------------------------------

    def defer(self, time_ns: float, callback: Callback) -> None:
        """Register ``callback`` at ``time_ns`` without entering the heap.

        Exactly one deferral may be outstanding; its sequence number is
        reserved *now*, so any event scheduled afterwards sorts behind it
        on time ties - precisely as if :meth:`schedule` had been called.
        The drain loop resolves the slot before running anything else:
        inline when the window up to ``time_ns`` is quiescent, flushed
        into the heap (reserved seq intact) when an event intervenes.
        """
        if time_ns < self.now:
            raise ValueError(
                f"cannot defer event at {time_ns} ns before now ({self.now} ns)"
            )
        if self._deferred is not None:
            raise RuntimeError("a deferred event is already outstanding")
        self._deferred = (time_ns, self._seq, callback)
        self._seq += 1

    @property
    def deferred_time(self) -> Optional[float]:
        """Time of the outstanding deferred event, or None."""
        deferred = self._deferred
        return deferred[0] if deferred is not None else None

    def flush_deferred(self) -> None:
        """Push the outstanding deferral into the heap (reserved seq)."""
        deferred = self._deferred
        if deferred is None:
            raise RuntimeError("no deferred event to flush")
        heappush(self._heap, deferred)
        self._deferred = None

    def run_fast(self, budget: int) -> int:   # simlint: hotpath
        """Batched drain: run up to ``budget`` events, deferral-aware.

        The hot-path twin of the reference driver loop (``pop_and_run``
        per event): every per-event attribute load is hoisted out of the
        loop and the deferred-event slot is resolved at the top of each
        iteration - run inline when no pending event is due at or before
        its time (the analytic jump across a quiescent window), flushed
        into the heap otherwise, including the exact-tie case so FIFO
        sequence ordering decides.  Returns the number of events executed;
        the drain ends when :attr:`stop` is set, the budget is spent, or
        no event (heap or deferred) remains.  Each inline run has the
        exact observable side effects of flushing then popping: the
        monotonicity check, the clock update and one executed event.
        """
        heap = self._heap
        sanitize = self._sanitize
        executed = self._executed
        pop = heappop
        count = 0
        while not self.stop and count < budget:
            deferred = self._deferred
            if deferred is not None:
                if heap and heap[0][0] <= deferred[0]:
                    heappush(heap, deferred)
                    self._deferred = None
                else:
                    self._deferred = None
                    if sanitize:
                        check(
                            deferred[0] >= self.now,
                            "event-time-monotonicity",
                            "deferred event would run in the past",
                            event_time_ns=deferred[0], now_ns=self.now,
                            sequence=deferred[1],
                        )
                    self.now = deferred[0]
                    if executed is not None:
                        executed.value += 1.0
                    deferred[2]()
                    count += 1
                    continue
            if not heap:
                break
            time_ns, seq, callback = pop(heap)
            if sanitize:
                check(
                    time_ns >= self.now, "event-time-monotonicity",
                    "event queue popped an event from the past",
                    event_time_ns=time_ns, now_ns=self.now, sequence=seq,
                )
            self.now = time_ns
            if executed is not None:
                executed.value += 1.0
            callback()
            count += 1
        return count

    def run_until(self, time_ns: float) -> None:
        """Run every event scheduled (or deferred) at or before ``time_ns``."""
        while True:
            deferred = self._deferred
            if deferred is not None and deferred[0] <= time_ns:
                self.flush_deferred()
            if not (self._heap and self._heap[0][0] <= time_ns):
                break
            self.pop_and_run()
        if self.now < time_ns:
            self.now = time_ns

    def run_all(self, max_events: Optional[int] = None) -> int:
        """Drain the queue; returns the number of events executed."""
        count = 0
        while self._heap or self._deferred is not None:
            if self._deferred is not None:
                self.flush_deferred()
            if max_events is not None and count >= max_events:
                break
            self.pop_and_run()
            count += 1
        return count
