"""Deterministic event queue used by the whole simulator.

Events are (time_ns, sequence, callback) triples ordered first by time and
then by insertion order, which makes simulation results independent of
callback identity and fully reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.lint.sanitize import check, resolve
from repro.telemetry import NULL_TELEMETRY, Telemetry

Callback = Callable[[], None]


class EventQueue:
    """A min-heap of timestamped callbacks with stable FIFO tie-breaking.

    With the sanitizer armed (``sanitize=True``, or ``REPRO_SANITIZE=1``
    when the argument is left at ``None``) every pop verifies the simulated
    clock is monotone nondecreasing and raises
    :class:`~repro.lint.sanitize.InvariantViolation` otherwise.

    With telemetry enabled the queue keeps an executed-event counter; the
    counter object is resolved once here so the per-pop cost is a single
    ``is not None`` check.
    """

    def __init__(self, sanitize: Optional[bool] = None,
                 telemetry: Telemetry = NULL_TELEMETRY) -> None:
        self._heap: List[Tuple[float, int, Callback]] = []
        self._seq = 0
        self.now: float = 0.0
        self._sanitize = resolve(sanitize)
        self._executed = (telemetry.metrics.counter("events.executed")
                          if telemetry.enabled else None)

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time_ns: float, callback: Callback) -> None:
        """Schedule ``callback`` to run at absolute ``time_ns``."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule event at {time_ns} ns before now ({self.now} ns)"
            )
        heapq.heappush(self._heap, (time_ns, self._seq, callback))
        self._seq += 1

    def schedule_in(self, delay_ns: float, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay_ns`` after the current time."""
        if delay_ns < 0:
            raise ValueError(f"negative delay: {delay_ns}")
        self.schedule(self.now + delay_ns, callback)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def pop_and_run(self) -> bool:
        """Run the earliest event.  Returns False when the queue is empty."""
        if not self._heap:
            return False
        time_ns, seq, callback = heapq.heappop(self._heap)
        if self._sanitize:
            check(
                time_ns >= self.now, "event-time-monotonicity",
                "event queue popped an event from the past",
                event_time_ns=time_ns, now_ns=self.now, sequence=seq,
            )
        self.now = time_ns
        if self._executed is not None:
            self._executed.value += 1.0
        callback()
        return True

    def run_until(self, time_ns: float) -> None:
        """Run every event scheduled at or before ``time_ns``."""
        while self._heap and self._heap[0][0] <= time_ns:
            self.pop_and_run()
        if self.now < time_ns:
            self.now = time_ns

    def run_all(self, max_events: Optional[int] = None) -> int:
        """Drain the queue; returns the number of events executed."""
        count = 0
        while self._heap:
            if max_events is not None and count >= max_events:
                break
            self.pop_and_run()
            count += 1
        return count
