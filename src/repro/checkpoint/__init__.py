"""Deterministic checkpoint/resume for the Mellow Writes simulator.

Snapshots capture the *complete* simulator state at an event boundary -
event queue (with its reserved sequence numbers and the deferred-event
seam), controller/bank/queue state with object identity preserved, LLC
and LRU tags, Start-Gap leveling positions, wear accounting (flushed
before capture), fault-injector per-line endurance state, every RNG
stream, telemetry epoch alignment, and the core clock - so that
snapshot -> restore -> continue is bit-identical to running straight
through.  See ``docs/checkpointing.md`` for the schema and the resume
semantics, and ``tests/test_checkpoint.py`` for the differential
equivalence matrix that pins the contract.
"""

from .codec import STATE_SCHEMA_VERSION, capture_state, restore_state
from .errors import (CheckpointCorruptionError, CheckpointError,
                     CheckpointUnsupportedError)
from .snapshot import (SNAPSHOT_SCHEMA_VERSION, config_from_dict,
                       config_to_dict, default_snapshot_path, load_snapshot,
                       restore_system, save_snapshot, snapshot_bytes)

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "STATE_SCHEMA_VERSION",
    "CheckpointCorruptionError",
    "CheckpointError",
    "CheckpointUnsupportedError",
    "capture_state",
    "config_from_dict",
    "config_to_dict",
    "default_snapshot_path",
    "load_snapshot",
    "restore_state",
    "restore_system",
    "save_snapshot",
    "snapshot_bytes",
]
