"""Checkpoint error taxonomy.

Two failure families matter to callers:

* :class:`CheckpointCorruptionError` - the snapshot *file* is damaged
  (truncated, bit-flipped, digest mismatch, wrong schema).  The run it
  came from is fine; re-simulating from scratch reproduces it exactly,
  so the Runner path treats this as "warn and resimulate", never as a
  silent partial resume.
* :class:`CheckpointUnsupportedError` - the *live system* holds state
  the codec has no descriptor for (an unknown event callback, a
  generator-backed workload mix trace).  This is a programming/usage
  error: capturing would produce a snapshot that resumes wrong, so the
  capture refuses up front.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union


class CheckpointError(RuntimeError):
    """Base class for every checkpoint failure."""


class CheckpointCorruptionError(CheckpointError):
    """A snapshot file failed validation and must not be resumed.

    Carries the offending ``path`` and a one-line machine-checkable
    ``reason`` so callers can log structured warnings and fall back to
    re-simulation.
    """

    def __init__(self, path: Union[str, Path], reason: str) -> None:
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"corrupt checkpoint {self.path}: {reason}")


class CheckpointUnsupportedError(CheckpointError):
    """The live simulator holds state the snapshot codec cannot encode."""
